//! Persistence round-trips: trees, partitions and datasets survive
//! serialization and re-evaluate identically.

use fsi::{Method, Pipeline};
use fsi_core::{build_kd_tree, BuildConfig, CellStats, FairSplit, KdTree};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use fsi_fairness::{ence, SpatialGroups};
use fsi_geo::Partition;
use std::io::BufReader;

fn dataset() -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 250,
        grid_side: 16,
        seed: 31,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

#[test]
fn kd_tree_json_round_trip_preserves_locate() {
    let d = dataset();
    let labels = d.threshold_labels("avg_act", 22.0).unwrap();
    let scores = vec![0.5; d.len()];
    let stats = CellStats::new(
        d.grid(),
        &d.cell_populations(),
        &d.cell_sums(&scores).unwrap(),
        &d.cell_label_sums(&labels).unwrap(),
    )
    .unwrap();
    let tree = build_kd_tree(&stats, &FairSplit, &BuildConfig::with_height(4)).unwrap();
    let json = serde_json::to_string(&tree).unwrap();
    let back: KdTree = serde_json::from_str(&json).unwrap();
    assert_eq!(tree, back);
    for row in 0..16 {
        for col in 0..16 {
            assert_eq!(
                tree.locate(row, col).unwrap(),
                back.locate(row, col).unwrap()
            );
        }
    }
}

#[test]
fn partition_json_round_trip_reevaluates_identically() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(4)
        .run()
        .unwrap();
    let json = serde_json::to_string(&run.partition).unwrap();
    let back: Partition = serde_json::from_str(&json).unwrap();
    assert_eq!(run.partition, back);
    let groups = SpatialGroups::from_partition(d.cells(), &back).unwrap();
    let e = ence(&run.scores, &run.labels, &groups).unwrap();
    assert_eq!(e, run.eval.full.ence);
}

#[test]
fn dataset_csv_round_trip_reproduces_runs() {
    let d = dataset();
    let mut buf = Vec::new();
    fsi_data::csv::write_csv(&d, &mut buf).unwrap();
    let back = fsi_data::csv::read_csv(BufReader::new(buf.as_slice()), d.grid().clone()).unwrap();

    let a = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(3)
        .run()
        .unwrap();
    let b = Pipeline::on(&back)
        .method(Method::FairKd)
        .height(3)
        .run()
        .unwrap();
    assert_eq!(a.scores, b.scores);
    assert_eq!(a.partition, b.partition);
    assert_eq!(a.eval.full.ence, b.eval.full.ence);
}

#[test]
fn eval_report_serializes() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(3)
        .run()
        .unwrap();
    let json = serde_json::to_string(&run.eval).unwrap();
    let back: fsi::EvalReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.full.n, run.eval.full.n);
    assert_eq!(back.per_group.len(), run.eval.per_group.len());
}

#[test]
fn spec_configs_round_trip_as_identity() {
    use fsi::{ModelKind, MultiObjectiveSpec, PipelineSpec, RunConfig, TaskSpec, TieBreak};

    // The experiment-cell persistence format: spec → JSON → spec must be
    // the identity for every field, including non-default ones.
    let config = RunConfig {
        model: ModelKind::NaiveBayes,
        encoding: fsi::LocationEncoding::OneHot,
        seed: 424242,
        test_fraction: 0.125,
        zip_seeds: 17,
        tie_break: TieBreak::FirstIndex,
    };
    let json = serde_json::to_string(&config).unwrap();
    let back: RunConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);

    let task = TaskSpec {
        outcome: "family_employment_pct".into(),
        threshold: 12.5,
    };
    let json = serde_json::to_string(&task).unwrap();
    let back: TaskSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(task, back);

    let spec = PipelineSpec {
        task,
        method: Method::GridReweight,
        height: 9,
        reweight_blocks: Some((32, 16)),
        config: config.clone(),
    };
    let json = serde_json::to_string_pretty(&spec).unwrap();
    let back: PipelineSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);

    let multi = MultiObjectiveSpec {
        tasks: vec![TaskSpec::act(), TaskSpec::employment()],
        alphas: vec![0.125, 0.875],
        method: Method::MedianKd,
        height: 4,
        config,
    };
    let json = serde_json::to_string(&multi).unwrap();
    let back: MultiObjectiveSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(multi, back);
}

#[test]
fn saved_run_report_restores_spec_and_partition() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(3)
        .seed(77)
        .run()
        .unwrap();
    // Unique per process so concurrent test runs sharing one TMPDIR
    // cannot race on the report file.
    let dir = std::env::temp_dir().join(format!("fsi_persistence_test_{}", std::process::id()));
    let path = dir.join("report.json");
    run.save_report(&path).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    let report: fsi::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(&report.spec, run.spec());
    assert_eq!(&report.partition, run.partition());
    assert_eq!(report.eval.num_regions, run.eval.num_regions);
    // Replaying the restored spec reproduces the run bit-identically.
    let replay = fsi::Pipeline::from_spec(&d, report.spec).run().unwrap();
    assert_eq!(replay.scores, run.scores);
    assert_eq!(replay.partition, run.partition);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quadtree_json_round_trip() {
    use fsi_core::{FairQuadtree, QuadConfig};
    let d = dataset();
    let labels = d.threshold_labels("avg_act", 22.0).unwrap();
    let scores = vec![0.4; d.len()];
    let stats = CellStats::new(
        d.grid(),
        &d.cell_populations(),
        &d.cell_sums(&scores).unwrap(),
        &d.cell_label_sums(&labels).unwrap(),
    )
    .unwrap();
    let quad = FairQuadtree::build(&stats, &QuadConfig::default()).unwrap();
    let json = serde_json::to_string(&quad).unwrap();
    let back: FairQuadtree = serde_json::from_str(&json).unwrap();
    assert_eq!(quad, back);
    assert_eq!(
        quad.partition(d.grid()).unwrap(),
        back.partition(d.grid()).unwrap()
    );
}
