//! Persistence round-trips: trees, partitions and datasets survive
//! serialization and re-evaluate identically.

use fsi_core::{build_kd_tree, BuildConfig, CellStats, FairSplit, KdTree};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use fsi_fairness::{ence, SpatialGroups};
use fsi_geo::Partition;
use fsi_pipeline::{run_method, Method, RunConfig, TaskSpec};
use std::io::BufReader;

fn dataset() -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 250,
        grid_side: 16,
        seed: 31,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

#[test]
fn kd_tree_json_round_trip_preserves_locate() {
    let d = dataset();
    let labels = d.threshold_labels("avg_act", 22.0).unwrap();
    let scores = vec![0.5; d.len()];
    let stats = CellStats::new(
        d.grid(),
        &d.cell_populations(),
        &d.cell_sums(&scores).unwrap(),
        &d.cell_label_sums(&labels).unwrap(),
    )
    .unwrap();
    let tree = build_kd_tree(&stats, &FairSplit, &BuildConfig::with_height(4)).unwrap();
    let json = serde_json::to_string(&tree).unwrap();
    let back: KdTree = serde_json::from_str(&json).unwrap();
    assert_eq!(tree, back);
    for row in 0..16 {
        for col in 0..16 {
            assert_eq!(
                tree.locate(row, col).unwrap(),
                back.locate(row, col).unwrap()
            );
        }
    }
}

#[test]
fn partition_json_round_trip_reevaluates_identically() {
    let d = dataset();
    let run = run_method(
        &d,
        &TaskSpec::act(),
        Method::FairKd,
        4,
        &RunConfig::default(),
    )
    .unwrap();
    let json = serde_json::to_string(&run.partition).unwrap();
    let back: Partition = serde_json::from_str(&json).unwrap();
    assert_eq!(run.partition, back);
    let groups = SpatialGroups::from_partition(d.cells(), &back).unwrap();
    let e = ence(&run.scores, &run.labels, &groups).unwrap();
    assert_eq!(e, run.eval.full.ence);
}

#[test]
fn dataset_csv_round_trip_reproduces_runs() {
    let d = dataset();
    let mut buf = Vec::new();
    fsi_data::csv::write_csv(&d, &mut buf).unwrap();
    let back = fsi_data::csv::read_csv(BufReader::new(buf.as_slice()), d.grid().clone()).unwrap();

    let a = run_method(
        &d,
        &TaskSpec::act(),
        Method::FairKd,
        3,
        &RunConfig::default(),
    )
    .unwrap();
    let b = run_method(
        &back,
        &TaskSpec::act(),
        Method::FairKd,
        3,
        &RunConfig::default(),
    )
    .unwrap();
    assert_eq!(a.scores, b.scores);
    assert_eq!(a.partition, b.partition);
    assert_eq!(a.eval.full.ence, b.eval.full.ence);
}

#[test]
fn eval_report_serializes() {
    let d = dataset();
    let run = run_method(
        &d,
        &TaskSpec::act(),
        Method::MedianKd,
        3,
        &RunConfig::default(),
    )
    .unwrap();
    let json = serde_json::to_string(&run.eval).unwrap();
    let back: fsi_pipeline::EvalReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.full.n, run.eval.full.n);
    assert_eq!(back.per_group.len(), run.eval.per_group.len());
}

#[test]
fn quadtree_json_round_trip() {
    use fsi_core::{FairQuadtree, QuadConfig};
    let d = dataset();
    let labels = d.threshold_labels("avg_act", 22.0).unwrap();
    let scores = vec![0.4; d.len()];
    let stats = CellStats::new(
        d.grid(),
        &d.cell_populations(),
        &d.cell_sums(&scores).unwrap(),
        &d.cell_label_sums(&labels).unwrap(),
    )
    .unwrap();
    let quad = FairQuadtree::build(&stats, &QuadConfig::default()).unwrap();
    let json = serde_json::to_string(&quad).unwrap();
    let back: FairQuadtree = serde_json::from_str(&json).unwrap();
    assert_eq!(quad, back);
    assert_eq!(
        quad.partition(d.grid()).unwrap(),
        back.partition(d.grid()).unwrap()
    );
}
