//! Observability acceptance tests: `GET /metrics` must answer a
//! well-formed Prometheus text exposition over a real socket covering
//! request counts, latency quantiles, cache, per-shard and rebuild
//! metrics; concurrent scrapes during a rebuild storm must never see
//! torn snapshots (more latency samples than requests, or counters
//! going backwards); and the slow-query log must stream structured
//! records through the HTTP serving path.

use fsi::{
    scrape_metrics, BackendSpec, CacheSpec, Method, Pipeline, Request, Response, SlowQueryRecord,
    TaskSpec, TopologySpec, WirePoint, WireRect,
};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn dataset() -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 300,
        grid_side: 16,
        seed: 41,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

/// Parses a Prometheus text exposition into `series name (with labels)
/// → value`, asserting well-formedness along the way: every non-comment
/// line is `name[{labels}] value`, every sample's family has a `# TYPE`
/// header, and no series repeats.
fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut typed: HashSet<&str> = HashSet::new();
    let mut samples = HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap();
            typed.insert(name);
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("malformed sample line: {line:?}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample value: {line:?}"));
        let base = series.split('{').next().unwrap();
        let family = base
            .strip_suffix("_sum")
            .or_else(|| base.strip_suffix("_count"))
            .unwrap_or(base);
        assert!(
            typed.contains(family),
            "sample {series} has no preceding # TYPE {family} header"
        );
        let clash = samples.insert(series.to_string(), value);
        assert!(clash.is_none(), "duplicate series {series}");
    }
    samples
}

/// The tentpole end-to-end property: a coordinator over one local and
/// one real HTTP shard, with a decision cache, serves `GET /metrics`
/// over a real socket; the exposition is well-formed and every metric
/// family the issue promises is present with the exact counts the
/// driven traffic implies.
#[test]
fn metrics_endpoint_covers_every_family_over_a_real_socket() {
    let d = dataset();
    let serving = Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::MedianKd)
        .height(3)
        .run()
        .unwrap()
        .serve()
        .unwrap();

    let local_spec = TopologySpec::local(1, 2);
    let shard1 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 1).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let spec = TopologySpec {
        rows: 1,
        cols: 2,
        shards: vec![
            BackendSpec::Local,
            BackendSpec::Http(shard1.addr().to_string()),
        ],
    };
    let coordinator = serving
        .service_over(&spec)
        .unwrap()
        .with_cache(CacheSpec::shared(256))
        .unwrap()
        .with_lookup_sampling(1);
    let server = fsi::HttpServer::bind(coordinator, "127.0.0.1:0").unwrap();

    let mut client = fsi::HttpClient::connect(server.addr()).unwrap();
    // Three distinct local-half cells twice each (cache misses, then
    // hits — remote-routed lookups bypass the coordinator's cache), one
    // remote-routed lookup, one out of bounds, one batch, one range
    // query, one stats, one rebuild.
    for &(x, y) in &[
        (0.1, 0.5),
        (0.2, 0.2),
        (0.3, 0.8),
        (0.1, 0.5),
        (0.2, 0.2),
        (0.3, 0.8),
        (0.9, 0.5),
    ] {
        client.call(&Request::Lookup { x, y }).unwrap();
    }
    match client.call(&Request::Lookup { x: 50.0, y: 50.0 }).unwrap() {
        Response::Error { error } => assert_eq!(error.code, fsi::ErrorCode::OutOfBounds),
        other => panic!("expected error, got {other:?}"),
    }
    client
        .call(&Request::LookupBatch {
            points: vec![WirePoint::new(0.2, 0.2), WirePoint::new(0.8, 0.8)],
        })
        .unwrap();
    client
        .call(&Request::RangeQuery {
            rect: WireRect::new(0.1, 0.1, 0.9, 0.9),
        })
        .unwrap();
    client.call(&Request::Stats).unwrap();
    let rebuild = fsi::PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 4);
    match client.call(&Request::Rebuild { spec: rebuild }).unwrap() {
        Response::Rebuilt { report } => assert_eq!(report.generation, 2),
        other => panic!("expected rebuild report, got {other:?}"),
    }

    let text = scrape_metrics(server.addr()).unwrap();
    let samples = parse_exposition(&text);
    let get = |series: &str| {
        *samples
            .get(series)
            .unwrap_or_else(|| panic!("missing series {series} in:\n{text}"))
    };

    // Request counts and latency quantiles per kind.
    assert_eq!(get("fsi_requests_total{kind=\"lookup\"}"), 8.0);
    assert_eq!(get("fsi_requests_total{kind=\"lookup_batch\"}"), 1.0);
    assert_eq!(get("fsi_requests_total{kind=\"range_query\"}"), 1.0);
    assert_eq!(get("fsi_requests_total{kind=\"stats\"}"), 1.0);
    assert_eq!(get("fsi_requests_total{kind=\"rebuild\"}"), 1.0);
    assert_eq!(
        get("fsi_request_latency_seconds_count{kind=\"lookup\"}"),
        8.0
    );
    assert!(get("fsi_request_latency_seconds{kind=\"rebuild\",quantile=\"0.5\"}") > 0.0);
    // Errors by code.
    assert_eq!(get("fsi_errors_total{code=\"out_of_bounds\"}"), 1.0);
    // Cache: 3 distinct local cells miss once each, the repeats hit
    // (the batch may add more of either — assert the floor, not the
    // exact split).
    assert!(get("fsi_cache_hits_total") >= 3.0);
    assert!(get("fsi_cache_misses_total") >= 3.0);
    assert_eq!(get("fsi_cache_capacity"), 256.0);
    // Per-shard transport health, labeled by backend kind.
    assert!(get("fsi_shard_requests_total{shard=\"1\",backend=\"http\"}") >= 1.0);
    assert_eq!(
        get("fsi_shard_failures_total{shard=\"1\",backend=\"http\"}"),
        0.0
    );
    assert!(get("fsi_shard_round_trip_seconds_count{shard=\"1\",backend=\"http\"}") >= 1.0);
    // Rebuild phases: one prepare and one commit per shard (the local
    // stage and the remote fan-out), no aborts.
    assert_eq!(
        get("fsi_rebuild_phase_seconds_count{phase=\"prepare\"}"),
        2.0
    );
    assert_eq!(
        get("fsi_rebuild_phase_seconds_count{phase=\"commit\"}"),
        2.0
    );
    assert_eq!(get("fsi_rebuild_phase_seconds_count{phase=\"abort\"}"), 0.0);
    assert_eq!(get("fsi_generation"), 2.0);
    // HTTP transport block.
    assert!(get("fsi_http_connections_total") >= 1.0);
    assert!(get("fsi_http_requests_total") >= 11.0);
    assert!(get("fsi_http_phase_seconds_count{phase=\"handle\"}") >= 11.0);
    assert_eq!(get("fsi_slow_queries_total"), 0.0);

    // The wire variant carries the same numbers (a scraper that speaks
    // the protocol instead of text sees one picture).
    let Response::Metrics { metrics } = client.call(&Request::Metrics).unwrap() else {
        panic!("expected metrics");
    };
    assert_eq!(metrics.count_for("lookup"), 8);
    let remote = metrics.shards[1].remote.as_ref().expect("remote snapshot");
    assert!(remote.total_requests() >= 1);
    assert!(metrics.http.is_some());

    server.shutdown();
    shard1.shutdown();
}

/// Satellite 4: four keep-alive clients hammer lookups through two
/// rebuilds while a scraper polls `/metrics` the whole time. Counters
/// must be monotone scrape-over-scrape, a scrape may never show more
/// latency samples than requests (torn snapshot), and once the storm
/// quiesces the histogram total equals the request count exactly.
#[test]
fn concurrent_scrapes_stay_monotone_and_untorn_through_rebuilds() {
    const CLIENTS: usize = 4;
    const LOOKUPS_PER_CLIENT: usize = 150;
    const REBUILDS: usize = 2;

    let d = dataset();
    let serving = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap()
        .serve()
        .unwrap();
    let service = serving.service().with_lookup_sampling(1);
    let server = fsi::HttpServer::bind_with(service, "127.0.0.1:0", CLIENTS + 2).unwrap();
    let addr = server.addr();
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for worker in 0..CLIENTS {
            clients.push(scope.spawn(move || {
                let mut client = fsi::HttpClient::connect(addr).expect("client connects");
                for i in 0..LOOKUPS_PER_CLIENT {
                    let x = ((worker * LOOKUPS_PER_CLIENT + i) as f64 * 0.37) % 1.0;
                    let y = ((worker * LOOKUPS_PER_CLIENT + i) as f64 * 0.73) % 1.0;
                    match client.call(&Request::Lookup { x, y }).expect("round-trip") {
                        Response::Decision { .. } => {}
                        other => panic!("expected decision, got {other:?}"),
                    }
                }
            }));
        }

        let scraper = {
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut client = fsi::HttpClient::connect(addr).expect("scraper connects");
                let mut last_requests = 0.0;
                let mut last_latency = 0.0;
                let mut polls = 0usize;
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    let (status, text) = client.get("/metrics").expect("scrape");
                    assert_eq!(status, 200);
                    let samples = parse_exposition(&text);
                    let requests = samples
                        .get("fsi_requests_total{kind=\"lookup\"}")
                        .copied()
                        .unwrap_or(0.0);
                    let latency = samples
                        .get("fsi_request_latency_seconds_count{kind=\"lookup\"}")
                        .copied()
                        .unwrap_or(0.0);
                    assert!(
                        latency <= requests,
                        "torn snapshot: {latency} latency samples > {requests} requests"
                    );
                    assert!(requests >= last_requests, "requests went backwards");
                    assert!(latency >= last_latency, "latency count went backwards");
                    last_requests = requests;
                    last_latency = latency;
                    polls += 1;
                }
                polls
            })
        };

        // Drive the rebuilds while the storm runs.
        let mut driver = fsi::HttpClient::connect(addr).expect("driver connects");
        for i in 0..REBUILDS {
            let spec = fsi::PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 2 + (i % 2));
            match driver.call(&Request::Rebuild { spec }).expect("rebuild") {
                Response::Rebuilt { report } => assert_eq!(report.generation, i as u64 + 2),
                other => panic!("expected rebuild report, got {other:?}"),
            }
        }

        for client in clients {
            client.join().expect("client thread survived");
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        let polls = scraper.join().expect("scraper thread survived");
        assert!(polls > 0, "the scraper never got a poll in");
    });

    // Quiesced: totals must agree exactly across every worker shard.
    let samples = parse_exposition(&scrape_metrics(addr).unwrap());
    let total = (CLIENTS * LOOKUPS_PER_CLIENT) as f64;
    assert_eq!(samples["fsi_requests_total{kind=\"lookup\"}"], total);
    assert_eq!(
        samples["fsi_request_latency_seconds_count{kind=\"lookup\"}"],
        total
    );
    assert_eq!(samples["fsi_generation"], (REBUILDS + 1) as f64);
    server.shutdown();
}

/// The slow-query log: threshold-gated, pluggable sink, and the counter
/// surfaces in the exposition. With a zero threshold every dispatched
/// request logs; with an absurdly high one, none do.
#[test]
fn slow_query_log_streams_structured_records_through_http() {
    let d = dataset();
    let serving = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap()
        .serve()
        .unwrap();

    let records: Arc<Mutex<Vec<SlowQueryRecord>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_records = Arc::clone(&records);
    let service = serving.service().with_slow_query_log(
        Duration::ZERO,
        Arc::new(move |r: &SlowQueryRecord| sink_records.lock().unwrap().push(r.clone())),
    );
    let server = fsi::HttpServer::bind(service, "127.0.0.1:0").unwrap();
    let mut client = fsi::HttpClient::connect(server.addr()).unwrap();
    client.call(&Request::Lookup { x: 0.3, y: 0.3 }).unwrap();
    client.call(&Request::Stats).unwrap();

    let samples = parse_exposition(&scrape_metrics(server.addr()).unwrap());
    assert!(samples["fsi_slow_queries_total"] >= 2.0);
    let seen = records.lock().unwrap().clone();
    assert!(seen.iter().any(|r| r.kind == "lookup"), "{seen:?}");
    assert!(seen.iter().any(|r| r.kind == "stats"), "{seen:?}");
    assert!(seen.iter().all(|r| r.threshold_nanos == 0), "{seen:?}");
    server.shutdown();

    // A sky-high threshold gates everything off.
    let quiet: Arc<Mutex<Vec<SlowQueryRecord>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_quiet = Arc::clone(&quiet);
    let service = serving.service().with_slow_query_log(
        Duration::from_secs(3600),
        Arc::new(move |r: &SlowQueryRecord| sink_quiet.lock().unwrap().push(r.clone())),
    );
    let server = fsi::HttpServer::bind(service, "127.0.0.1:0").unwrap();
    let mut client = fsi::HttpClient::connect(server.addr()).unwrap();
    client.call(&Request::Lookup { x: 0.3, y: 0.3 }).unwrap();
    let samples = parse_exposition(&scrape_metrics(server.addr()).unwrap());
    assert_eq!(samples["fsi_slow_queries_total"], 0.0);
    assert!(quiet.lock().unwrap().is_empty());
    server.shutdown();
}

/// Satellite 2, end to end: on a mixed local/remote coordinator the
/// REPL `stats` line prints every shard uniformly as `kind@addr`, and
/// the `metrics` command reports per-shard transport health.
#[test]
fn repl_stats_and_metrics_print_kind_at_addr_per_shard() {
    let d = dataset();
    let serving = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap()
        .serve()
        .unwrap();
    let local_spec = TopologySpec::local(1, 2);
    let shard1 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 1).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = shard1.addr().to_string();
    let spec = TopologySpec {
        rows: 1,
        cols: 2,
        shards: vec![BackendSpec::Local, BackendSpec::Http(addr.clone())],
    };
    let mut coordinator = serving.service_over(&spec).unwrap().with_lookup_sampling(1);

    let stats = fsi::repl::answer_line(&mut coordinator, "stats").unwrap();
    assert!(stats.contains("shard#0: local@- generation=1"), "{stats}");
    assert!(
        stats.contains(&format!("shard#1: http@{addr} generation=1")),
        "{stats}"
    );

    // Traffic to the remote half, then the metrics command. The stats
    // line above already dispatched once (locally counted and fanned
    // out to the remote shard), so totals sit at 2.
    fsi::repl::answer_line(&mut coordinator, "0.9 0.5").unwrap();
    let metrics = fsi::repl::answer_line(&mut coordinator, "metrics").unwrap();
    assert!(metrics.starts_with("metrics: requests=2"), "{metrics}");
    assert!(metrics.contains("lookup: count=1"), "{metrics}");
    assert!(metrics.contains("stats: count=1"), "{metrics}");
    assert!(
        metrics.contains(&format!("shard#1: http@{addr} requests=2 failures=0")),
        "{metrics}"
    );
    shard1.shutdown();
}
