//! Reproducibility: identical seeds give bit-identical results; distinct
//! seeds actually change things.

use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use fsi_pipeline::{run_method, run_multi_objective, Method, ModelKind, RunConfig, TaskSpec};

fn dataset(seed: u64) -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 300,
        grid_side: 16,
        seed,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

#[test]
fn identical_runs_are_bit_identical() {
    let d = dataset(8);
    let task = TaskSpec::act();
    for method in [
        Method::MedianKd,
        Method::FairKd,
        Method::IterativeFairKd,
        Method::GridReweight,
        Method::ZipCode,
        Method::FairQuad,
    ] {
        for model in ModelKind::all() {
            let config = RunConfig {
                model,
                ..RunConfig::default()
            };
            let a = run_method(&d, &task, method, 3, &config).unwrap();
            let b = run_method(&d, &task, method, 3, &config).unwrap();
            assert_eq!(a.scores, b.scores, "{method:?}/{model:?} scores differ");
            assert_eq!(
                a.partition, b.partition,
                "{method:?}/{model:?} partitions differ"
            );
            assert_eq!(a.eval.full.ence, b.eval.full.ence);
            assert_eq!(a.importances, b.importances);
        }
    }
}

#[test]
fn split_seed_changes_outputs() {
    let d = dataset(8);
    let task = TaskSpec::act();
    let a = run_method(&d, &task, Method::FairKd, 4, &RunConfig::default()).unwrap();
    let b = run_method(
        &d,
        &task,
        Method::FairKd,
        4,
        &RunConfig {
            seed: 1234,
            ..RunConfig::default()
        },
    )
    .unwrap();
    // A different train/test split must change the trained model's scores.
    assert_ne!(a.scores, b.scores);
}

#[test]
fn data_seed_changes_dataset_but_pipeline_stays_deterministic() {
    let d1 = dataset(8);
    let d2 = dataset(9);
    assert_ne!(d1.features(), d2.features());
    let r1 = run_method(
        &d1,
        &TaskSpec::act(),
        Method::FairKd,
        3,
        &RunConfig::default(),
    )
    .unwrap();
    let r2 = run_method(
        &d2,
        &TaskSpec::act(),
        Method::FairKd,
        3,
        &RunConfig::default(),
    )
    .unwrap();
    assert_ne!(r1.eval.full.ence, r2.eval.full.ence);
}

#[test]
fn multi_objective_is_deterministic() {
    let d = dataset(8);
    let tasks = [TaskSpec::act(), TaskSpec::employment()];
    let a = run_multi_objective(
        &d,
        &tasks,
        &[0.5, 0.5],
        Method::FairKd,
        3,
        &RunConfig::default(),
    )
    .unwrap();
    let b = run_multi_objective(
        &d,
        &tasks,
        &[0.5, 0.5],
        Method::FairKd,
        3,
        &RunConfig::default(),
    )
    .unwrap();
    assert_eq!(a.partition, b.partition);
    assert_eq!(a.per_task[0].1.full.ence, b.per_task[0].1.full.ence);
    assert_eq!(a.per_task[1].1.full.ence, b.per_task[1].1.full.ence);
}

#[test]
fn alpha_order_symmetry() {
    // Swapping tasks and alphas must give the same partition.
    let d = dataset(8);
    let t_act = TaskSpec::act();
    let t_emp = TaskSpec::employment();
    let a = run_multi_objective(
        &d,
        &[t_act.clone(), t_emp.clone()],
        &[0.3, 0.7],
        Method::FairKd,
        3,
        &RunConfig::default(),
    )
    .unwrap();
    let b = run_multi_objective(
        &d,
        &[t_emp, t_act],
        &[0.7, 0.3],
        Method::FairKd,
        3,
        &RunConfig::default(),
    )
    .unwrap();
    assert_eq!(a.partition, b.partition);
}
