//! Reproducibility: identical seeds give bit-identical results; distinct
//! seeds actually change things.

use fsi::{Method, ModelKind, MultiPipeline, Pipeline, TaskSpec};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;

fn dataset(seed: u64) -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 300,
        grid_side: 16,
        seed,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

#[test]
fn identical_runs_are_bit_identical() {
    let d = dataset(8);
    for method in [
        Method::MedianKd,
        Method::FairKd,
        Method::IterativeFairKd,
        Method::GridReweight,
        Method::ZipCode,
        Method::FairQuad,
    ] {
        for model in ModelKind::all() {
            let cell = || {
                Pipeline::on(&d)
                    .task(TaskSpec::act())
                    .method(method)
                    .height(3)
                    .model(model)
                    .run()
                    .unwrap()
            };
            let a = cell();
            let b = cell();
            assert_eq!(a.scores, b.scores, "{method:?}/{model:?} scores differ");
            assert_eq!(
                a.partition, b.partition,
                "{method:?}/{model:?} partitions differ"
            );
            assert_eq!(a.eval.full.ence, b.eval.full.ence);
            assert_eq!(a.importances, b.importances);
        }
    }
}

#[test]
fn split_seed_changes_outputs() {
    let d = dataset(8);
    let a = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(4)
        .run()
        .unwrap();
    let b = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(4)
        .seed(1234)
        .run()
        .unwrap();
    // A different train/test split must change the trained model's scores.
    assert_ne!(a.scores, b.scores);
}

#[test]
fn data_seed_changes_dataset_but_pipeline_stays_deterministic() {
    let d1 = dataset(8);
    let d2 = dataset(9);
    assert_ne!(d1.features(), d2.features());
    let r1 = Pipeline::on(&d1)
        .method(Method::FairKd)
        .height(3)
        .run()
        .unwrap();
    let r2 = Pipeline::on(&d2)
        .method(Method::FairKd)
        .height(3)
        .run()
        .unwrap();
    assert_ne!(r1.eval.full.ence, r2.eval.full.ence);
}

#[test]
fn multi_objective_is_deterministic() {
    let d = dataset(8);
    let cell = || {
        MultiPipeline::on(&d)
            .task(TaskSpec::act(), 0.5)
            .task(TaskSpec::employment(), 0.5)
            .method(Method::FairKd)
            .height(3)
            .run()
            .unwrap()
    };
    let a = cell();
    let b = cell();
    assert_eq!(a.partition, b.partition);
    assert_eq!(a.per_task[0].1.full.ence, b.per_task[0].1.full.ence);
    assert_eq!(a.per_task[1].1.full.ence, b.per_task[1].1.full.ence);
}

#[test]
fn alpha_order_symmetry() {
    // Swapping tasks and alphas must give the same partition.
    let d = dataset(8);
    let a = MultiPipeline::on(&d)
        .task(TaskSpec::act(), 0.3)
        .task(TaskSpec::employment(), 0.7)
        .method(Method::FairKd)
        .height(3)
        .run()
        .unwrap();
    let b = MultiPipeline::on(&d)
        .task(TaskSpec::employment(), 0.7)
        .task(TaskSpec::act(), 0.3)
        .method(Method::FairKd)
        .height(3)
        .run()
        .unwrap();
    assert_eq!(a.partition, b.partition);
}
