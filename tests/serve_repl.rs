//! The `redistricting_cli serve` text transport, driven through a real
//! OS pipe: malformed stdin lines must produce `error:` response lines —
//! never a panic, never a dead loop — and well-formed queries around
//! them must still be answered through the typed `QueryService`.

use fsi::repl::{answer_line, serve_queries};
use fsi::{Method, Pipeline, QueryService, TaskSpec};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use std::io::{BufReader, Write};

fn dataset() -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 250,
        grid_side: 16,
        seed: 31,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

fn frozen() -> fsi::FrozenIndex {
    let d = dataset();
    Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(4)
        .run()
        .unwrap()
        .freeze()
        .unwrap()
}

/// Drives the serve loop the way the CLI does — reader end of an OS pipe
/// as stdin — while a writer thread feeds a hostile query mix.
#[test]
fn malformed_lines_through_a_pipe_get_error_responses_not_panics() {
    let mut service = QueryService::from(frozen());
    let (reader, mut writer) = std::io::pipe().expect("os pipe");

    let feeder = std::thread::spawn(move || {
        writer.write_all(b"0.5 0.5\n").unwrap();
        writer.write_all(b"utter nonsense\n").unwrap();
        writer.write_all(b"1.0\n").unwrap(); // wrong arity
        writer.write_all(b"x y\n").unwrap(); // unparsable numbers
        writer.write_all(b"rect 0 0 nope 1\n").unwrap();
        writer.write_all(b"rect 0.9 0.9 0.1 0.1\n").unwrap(); // inverted
        writer.write_all(&[0xC3, 0x28, b'\n']).unwrap(); // invalid UTF-8
        writer.write_all(b"\n").unwrap(); // blank: no response owed
        writer.write_all(b"42 42\n").unwrap(); // out of bounds
        writer.write_all(b"rect 0.1 0.1 0.9 0.9\n").unwrap();
        writer.write_all(b"batch 0.25 0.75 0.75 0.25\n").unwrap();
        writer.write_all(b"stats\n").unwrap();
        writer.write_all(b"0.25 0.75\n").unwrap();
        // writer drops here -> EOF ends the session cleanly.
    });

    let mut out = Vec::new();
    let stats =
        serve_queries(&mut service, BufReader::new(reader), &mut out).expect("loop survives");
    feeder.join().unwrap();

    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // 12 non-blank inputs -> 12 responses, in order.
    assert_eq!(lines.len(), 12, "{text}");
    assert!(lines[0].starts_with("leaf="), "{}", lines[0]);
    for (i, line) in lines.iter().enumerate().take(7).skip(1) {
        assert!(line.starts_with("error:"), "line {i}: {line}");
    }
    assert!(lines[7].starts_with("error:"), "{}", lines[7]); // out of bounds
    assert!(lines[8].starts_with("neighborhoods:"), "{}", lines[8]);
    assert!(lines[9].starts_with("decisions:"), "{}", lines[9]);
    assert!(lines[10].starts_with("stats:"), "{}", lines[10]);
    assert!(lines[11].starts_with("leaf="), "{}", lines[11]);
    assert_eq!(stats.answered, 5);
    assert_eq!(stats.errors, 7);
}

/// Point answers carry the exact decision the index computes, at full
/// float precision (the text transport is bit-faithful).
#[test]
fn point_answers_match_direct_lookups() {
    let index = frozen();
    let mut service = QueryService::from(index.clone());
    for (x, y) in [(0.1, 0.2), (0.5, 0.5), (0.99, 0.01)] {
        let d = index.lookup(&fsi::Point::new(x, y)).unwrap();
        let line = answer_line(&mut service, &format!("{x} {y}")).unwrap();
        assert_eq!(
            line,
            format!(
                "leaf={} group={} raw={} calibrated={}",
                d.leaf_id, d.group, d.raw_score, d.calibrated_score
            )
        );
    }
}

/// A `rebuild <spec JSON>` line retrains and hot-swaps through the text
/// transport, and the swap is visible in subsequent `stats` lines.
#[test]
fn rebuild_line_retrains_and_bumps_the_generation() {
    let d = dataset();
    let serving = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap()
        .serve()
        .unwrap();
    let mut service = serving.service();
    let before = answer_line(&mut service, "stats").unwrap();
    assert!(before.contains("generations=[1]"), "{before}");

    let spec = fsi::PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 3);
    let line = format!("rebuild {}", serde_json::to_string(&spec).unwrap());
    let answer = answer_line(&mut service, &line).unwrap();
    assert!(answer.starts_with("rebuilt: generation=2"), "{answer}");

    let after = answer_line(&mut service, "stats").unwrap();
    assert!(after.contains("generations=[2]"), "{after}");
    assert!(after.contains("leaves=8"), "{after}");
    // The swap went through the shared handle: Serving sees it too.
    assert_eq!(serving.handle().generation(), 2);
}
