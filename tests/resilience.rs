//! Resilience acceptance tests: a coordinator over **failover replica
//! sets** must keep answering bit-identically with zero client-visible
//! errors while a replica dies and comes back (the kill-one-replica
//! storm), the breaker cycle must be observable through `/metrics`, and
//! the `RemoteShard` reconnect path must survive a server that drops
//! keep-alive connections between requests.

use fsi::{
    decode_request, encode_response, BackendSpec, DecisionBody, Method, Pipeline, QueryService,
    RemoteShard, Request, ResilError, ResiliencePolicy, Response, ShardBackend, TaskSpec,
    TopologySpec, WirePoint,
};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use fsi_geo::Point;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

fn dataset() -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 300,
        grid_side: 16,
        seed: 23,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

/// The storm policy: immediate retries (so a dead replica costs
/// microseconds, not backoff sleeps), breaker opens after 2 consecutive
/// failures and probes every 150 ms. Synchronous — no hedge, no
/// deadline — so dispatch stays on the calling worker thread.
fn storm_policy() -> ResiliencePolicy {
    ResiliencePolicy {
        max_attempts: 3,
        backoff_base_ms: 0,
        backoff_multiplier: 1.0,
        backoff_cap_ms: 0,
        jitter_frac: 0.0,
        jitter_seed: 7,
        attempt_deadline_ms: None,
        hedge_after_ms: None,
        breaker_threshold: 2,
        breaker_reset_ms: 150,
    }
}

fn expect_decision(response: Response) -> DecisionBody {
    match response {
        Response::Decision { decision } => decision,
        other => panic!("expected a decision, got {other:?}"),
    }
}

/// Rebinds a shard server on the exact address a killed replica used to
/// listen on, retrying while the kernel releases the port.
fn rebind(service_for: impl Fn() -> QueryService, addr: SocketAddr) -> fsi::HttpServer {
    for _ in 0..100 {
        match fsi::HttpServer::bind_with(service_for(), addr, 2) {
            Ok(server) => return server,
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    panic!("could not rebind a revived replica on {addr}");
}

/// Sums every sample of a Prometheus counter family whose label set
/// contains `needle`.
fn family_total(text: &str, family: &str, needle: &str) -> u64 {
    text.lines()
        .filter(|line| line.starts_with(family) && line.contains(needle))
        .map(|line| {
            line.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| panic!("unparsable sample: {line}")) as u64
        })
        .sum()
}

/// The headline acceptance test: a 2×2×2 fleet (every slot of a 2×2
/// topology is a 2-replica set of real HTTP shard servers) under 4
/// concurrent keep-alive clients. One replica is killed mid-storm and
/// later revived on the same port. Every query — point lookups and
/// batches alike — answers **bit-identically** to direct `FrozenIndex`
/// calls with **zero client-visible errors**, and the killed replica's
/// breaker walks the whole closed → open → half-open → closed cycle,
/// observable in the coordinator's `/metrics` exposition.
#[test]
fn kill_one_replica_mid_storm_answers_bit_identically_with_zero_errors() {
    const CLIENTS: usize = 4;
    // Requests per client in each phase: healthy, one-replica-dead,
    // recovered.
    const PHASES: [usize; 3] = [10, 25, 15];

    let d = dataset();
    let run = Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(5)
        .run()
        .unwrap();
    let direct = run.freeze().unwrap();
    let serving = run.serve().unwrap();

    // Two replica servers per slot, each holding the slot's partial
    // index — any member answers bit-identically.
    let local_spec = TopologySpec::local(2, 2);
    let mut servers: Vec<Vec<fsi::HttpServer>> = (0..4)
        .map(|slot| {
            (0..2)
                .map(|_| {
                    fsi::HttpServer::bind_with(
                        serving.service_shard(&local_spec, slot).unwrap(),
                        "127.0.0.1:0",
                        2,
                    )
                    .unwrap()
                })
                .collect()
        })
        .collect();
    let spec = TopologySpec {
        rows: 2,
        cols: 2,
        shards: servers
            .iter()
            .map(|pair| {
                BackendSpec::Replicas(
                    pair.iter()
                        .map(|s| BackendSpec::Http(s.addr().to_string()))
                        .collect(),
                )
            })
            .collect(),
    };
    let service = serving
        .service_over_with(&spec, storm_policy())
        .unwrap()
        .with_metrics(true);
    let coordinator = fsi::HttpServer::bind_with(service, "127.0.0.1:0", CLIENTS + 1).unwrap();
    let addr = coordinator.addr();

    // Hot points spread over all four quadrants, so every slot —
    // including the one losing a replica — carries traffic.
    let b = *d.grid().bounds();
    let hot: Vec<Point> = (0..8)
        .map(|i| {
            Point::new(
                b.min_x + (0.07 + 0.125 * i as f64) * b.width(),
                b.min_y + (0.93 - 0.11 * i as f64) * b.height(),
            )
        })
        .collect();
    let expected: Vec<DecisionBody> = hot
        .iter()
        .map(|p| direct.lookup(p).unwrap().into())
        .collect();
    let wire: Vec<WirePoint> = hot.iter().map(|p| WirePoint::new(p.x, p.y)).collect();

    let barrier = Barrier::new(CLIENTS + 1);
    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for worker in 0..CLIENTS {
            let (barrier, hot, expected, wire) = (&barrier, &hot, &expected, &wire);
            clients.push(scope.spawn(move || {
                let mut client = fsi::HttpClient::connect(addr).expect("client connects");
                for (phase, &requests) in PHASES.iter().enumerate() {
                    barrier.wait();
                    for i in 0..requests {
                        if i % 5 == 4 {
                            // A full batch: scatter over every slot,
                            // including the degraded one.
                            let response = client
                                .call(&Request::LookupBatch {
                                    points: wire.clone(),
                                })
                                .expect("batch round-trip");
                            match response {
                                Response::Decisions { decisions } => assert_eq!(
                                    &decisions, expected,
                                    "client {worker} phase {phase} batch {i}"
                                ),
                                other => panic!("expected decisions, got {other:?}"),
                            }
                        } else {
                            let k = (worker + i) % hot.len();
                            let p = &hot[k];
                            let got = expect_decision(
                                client
                                    .call(&Request::Lookup { x: p.x, y: p.y })
                                    .expect("lookup round-trip"),
                            );
                            assert_eq!(
                                got, expected[k],
                                "client {worker} phase {phase} request {i}"
                            );
                            assert_eq!(got.raw_score.to_bits(), expected[k].raw_score.to_bits());
                            assert_eq!(
                                got.calibrated_score.to_bits(),
                                expected[k].calibrated_score.to_bits()
                            );
                        }
                    }
                    barrier.wait();
                }
            }));
        }

        // The failure driver, phase-locked with the clients.
        barrier.wait(); // phase 0 starts: healthy fleet
        barrier.wait(); // phase 0 done
        let dead = servers[1].remove(0);
        let dead_addr = dead.addr();
        dead.shutdown();
        barrier.wait(); // phase 1 starts: slot 1 lost its preferred replica
        barrier.wait(); // phase 1 done
        let revived = rebind(|| serving.service_shard(&local_spec, 1).unwrap(), dead_addr);
        servers[1].insert(0, revived);
        // Let the breaker's reset window lapse so the next slot-1
        // attempt half-opens and probes the revived replica.
        std::thread::sleep(Duration::from_millis(200));
        barrier.wait(); // phase 2 starts: recovery
        barrier.wait(); // phase 2 done

        for client in clients {
            client.join().expect("client survived the storm");
        }
    });

    // The whole breaker cycle is visible in one Prometheus scrape of
    // the coordinator: the killed replica opened, later half-opened,
    // and closed again after the successful probe — and the failovers
    // themselves show up as retries.
    let text = fsi::scrape_metrics(addr).unwrap();
    let transitions = |into: &str| {
        family_total(
            &text,
            "fsi_resil_breaker_transitions_total{",
            &format!("into=\"{into}\""),
        )
    };
    assert!(transitions("open") >= 1, "breaker never opened:\n{text}");
    assert!(
        transitions("half_open") >= 1,
        "breaker never half-opened:\n{text}"
    );
    assert!(
        transitions("closed") >= 1,
        "breaker never closed after the probe:\n{text}"
    );
    assert!(
        family_total(&text, "fsi_resil_retries_total{", "shard=\"1\"") >= 1,
        "failovers must surface as slot-1 retries:\n{text}"
    );
    assert!(
        text.contains("fsi_resil_breaker_state{"),
        "breaker state gauge missing:\n{text}"
    );

    // And the health surface agrees: 4 slots × 2 replicas, all
    // admitted again.
    match fsi::http::query_once(addr, &Request::Health).unwrap() {
        Response::Health { health } => {
            assert_eq!(health.shards.len(), 4);
            for shard in &health.shards {
                assert_eq!(shard.kind, "replicas");
                assert_eq!(shard.replicas.len(), 2);
            }
            assert!(health.all_up(), "fleet not recovered: {health:?}");
        }
        other => panic!("expected health, got {other:?}"),
    }

    coordinator.shutdown();
    for pair in servers {
        for server in pair {
            server.shutdown();
        }
    }
}

/// The `{"replicas": [...]}` slot form round-trips through JSON and
/// rejects nesting — the spec file `redistricting_cli serve --topology`
/// reads can describe a replicated fleet.
#[test]
fn replica_topology_spec_round_trips_and_rejects_nesting() {
    let json = r#"{
        "rows": 1,
        "cols": 2,
        "shards": [
            "local",
            {"replicas": ["http://127.0.0.1:9001", "http://127.0.0.1:9002"]}
        ]
    }"#;
    let spec: TopologySpec = serde_json::from_str(json).unwrap();
    assert_eq!(spec.shards[0], BackendSpec::Local);
    assert_eq!(
        spec.shards[1],
        BackendSpec::Replicas(vec![
            BackendSpec::Http("127.0.0.1:9001".to_string()),
            BackendSpec::Http("127.0.0.1:9002".to_string()),
        ])
    );
    let back: TopologySpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(back.shards, spec.shards);

    let nested = r#"{
        "rows": 1,
        "cols": 1,
        "shards": [{"replicas": [{"replicas": ["local"]}]}]
    }"#;
    let nested: TopologySpec = serde_json::from_str(nested).unwrap();
    assert!(
        nested.validate().unwrap_err().to_string().contains("nest"),
        "nested replica sets must be rejected by validation"
    );
}

/// A policy file survives the JSON round trip the CLI performs, and a
/// bad knob is rejected with a pointed message.
#[test]
fn resilience_policy_files_round_trip_and_validate() {
    let policy = ResiliencePolicy {
        hedge_after_ms: Some(20),
        ..ResiliencePolicy::default()
    };
    policy.validate().unwrap();
    let json = serde_json::to_string(&policy).unwrap();
    let back: ResiliencePolicy = serde_json::from_str(&json).unwrap();
    assert_eq!(back, policy);

    let bad = ResiliencePolicy {
        max_attempts: 0,
        ..ResiliencePolicy::default()
    };
    let ResilError::InvalidPolicy(message) = bad.validate().unwrap_err() else {
        panic!("expected an invalid-policy error");
    };
    assert!(message.contains("max_attempts"), "{message}");
}

// ---------------------------------------------------------------------
// RemoteShard reconnect behavior under a connection-dropping server.
// ---------------------------------------------------------------------

/// A deliberately hostile shard server: every connection serves at most
/// **one** request and is then closed (no keep-alive), and the first
/// `drop_first` connections are closed immediately without serving at
/// all. Requests that do get through are answered by a real
/// `QueryService`, so responses are genuine decisions.
struct FlakyServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FlakyServer {
    fn spawn(service: QueryService, drop_first: usize) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let service = Mutex::new(service);
            let connections = AtomicUsize::new(0);
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let n = connections.fetch_add(1, Ordering::Relaxed);
                if n < drop_first {
                    drop(stream); // slam the door: accepted, never served
                    continue;
                }
                let _ = Self::serve_one(stream, &service);
            }
        });
        Self {
            addr,
            stop,
            handle: Some(handle),
        }
    }

    /// Reads exactly one framed HTTP request, answers it, closes.
    fn serve_one(stream: TcpStream, service: &Mutex<QueryService>) -> std::io::Result<()> {
        stream.set_nodelay(true)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut line = String::new();
        reader.read_line(&mut line)?; // request line, e.g. POST /query
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                return Ok(());
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        let body = String::from_utf8_lossy(&body);
        let response = match decode_request(&body) {
            Ok(request) => service
                .lock()
                .expect("service lock poisoned")
                .dispatch(&request),
            Err(e) => Response::error(fsi::ErrorCode::MalformedRequest, e.to_string()),
        };
        let payload = encode_response(&response);
        let mut writer = stream;
        write!(
            writer,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        )?;
        writer.flush()
        // `writer` drops here: the keep-alive connection dies after one
        // request, which is the whole point of this server.
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr); // unblock accept
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Satellite: a server that drops its keep-alive connection after every
/// single request must cost `RemoteShard` one transparent redial per
/// call — never a client-visible error — and the redials must show up
/// in its transport stats.
#[test]
fn remote_shard_redials_when_the_server_drops_keepalive_connections() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(3)
        .run()
        .unwrap();
    let direct = run.freeze().unwrap();
    let server = FlakyServer::spawn(run.serve().unwrap().service(), 0);

    let shard = RemoteShard::connect(&server.addr.to_string()).unwrap();
    let b = *d.grid().bounds();
    for i in 0..5 {
        let p = Point::new(
            b.min_x + (0.1 + 0.15 * i as f64) * b.width(),
            b.min_y + (0.1 + 0.15 * i as f64) * b.height(),
        );
        let expected: DecisionBody = direct.lookup(&p).unwrap().into();
        let got = expect_decision(shard.dispatch(&Request::Lookup { x: p.x, y: p.y }));
        assert_eq!(got, expected, "call {i} through the flaky server");
    }
    let stats = shard.transport_stats().expect("remote shards have stats");
    assert!(
        stats.reconnects >= 4,
        "five calls over one-shot connections need a redial per call after \
         the first, saw {} reconnects",
        stats.reconnects
    );
    server.shutdown();
}

/// Satellite: the redial budget is policy-configurable. Against a
/// server that slams the first three connections shut, a one-redial
/// shard exhausts its budget and surfaces a structured `internal`
/// error; a four-redial shard dials through the bad patch and answers
/// on the first dispatch.
#[test]
fn remote_shard_reconnect_budget_is_policy_configurable() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap();
    let serving = run.serve().unwrap();
    let probe = Request::Lookup {
        x: d.grid().bounds().min_x + d.grid().bounds().width() * 0.4,
        y: d.grid().bounds().min_y + d.grid().bounds().height() * 0.4,
    };

    // Budget too small: connections 0 (the eager dial), 1 and 2 are
    // slammed shut; two redials reach only connections 1 and 2.
    let stingy_server = FlakyServer::spawn(serving.service(), 3);
    let stingy = RemoteShard::connect(&stingy_server.addr.to_string())
        .unwrap()
        .with_reconnect_attempts(2);
    match stingy.dispatch(&probe) {
        Response::Error { error } => assert_eq!(error.code, fsi::ErrorCode::Internal),
        other => panic!("a two-redial budget cannot get through, got {other:?}"),
    }
    // The budget renews per dispatch: the next call's first redial
    // lands on connection 3, which is served.
    expect_decision(stingy.dispatch(&probe));
    stingy_server.shutdown();

    // Budget raised (what `ResilientConnector` derives from the
    // policy's attempt budget): the same bad patch is dialed through
    // within a single dispatch.
    let patient_server = FlakyServer::spawn(serving.service(), 3);
    let patient = RemoteShard::connect(&patient_server.addr.to_string())
        .unwrap()
        .with_reconnect_attempts(4);
    expect_decision(patient.dispatch(&probe));
    let stats = patient.transport_stats().unwrap();
    assert!(
        stats.reconnects >= 3,
        "dialing through three dead connections takes three redials, saw {}",
        stats.reconnects
    );
    patient_server.shutdown();
}
