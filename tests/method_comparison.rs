//! The paper's headline comparative claims, asserted as integration tests
//! on both city presets (logistic regression, seed-averaged).

use fsi::{Method, Pipeline, TaskSpec};
use fsi_data::synth::edgap::{generate_houston, generate_los_angeles};
use fsi_data::SpatialDataset;

fn mean_ence(d: &SpatialDataset, method: Method, height: usize, seeds: &[u64]) -> f64 {
    seeds
        .iter()
        .map(|&seed| {
            Pipeline::on(d)
                .task(TaskSpec::act())
                .method(method)
                .height(height)
                .seed(seed)
                .run()
                .unwrap()
                .eval()
                .full
                .ence
        })
        .sum::<f64>()
        / seeds.len() as f64
}

const SEEDS: [u64; 2] = [7, 17];

#[test]
fn fair_beats_median_on_both_cities() {
    for d in [generate_los_angeles().unwrap(), generate_houston().unwrap()] {
        for height in [4usize, 6, 8] {
            let median = mean_ence(&d, Method::MedianKd, height, &SEEDS);
            let fair = mean_ence(&d, Method::FairKd, height, &SEEDS);
            assert!(
                fair < median,
                "height {height}: fair {fair} should beat median {median}"
            );
        }
    }
}

#[test]
fn fair_beats_grid_reweighting() {
    for d in [generate_los_angeles().unwrap(), generate_houston().unwrap()] {
        for height in [4usize, 6, 8] {
            let reweight = mean_ence(&d, Method::GridReweight, height, &SEEDS);
            let fair = mean_ence(&d, Method::FairKd, height, &SEEDS);
            assert!(
                fair < reweight,
                "height {height}: fair {fair} should beat reweighting {reweight}"
            );
        }
    }
}

#[test]
fn ence_grows_with_height_for_median_trees() {
    // Theorem 2's practical consequence (paper §5.3.1): finer granularity
    // worsens ENCE. Assert the trend over the full sweep ends higher than
    // it starts.
    for d in [generate_los_angeles().unwrap(), generate_houston().unwrap()] {
        let coarse = mean_ence(&d, Method::MedianKd, 4, &SEEDS);
        let fine = mean_ence(&d, Method::MedianKd, 10, &SEEDS);
        assert!(
            fine > coarse,
            "median ENCE should grow with height: {coarse} -> {fine}"
        );
    }
}

#[test]
fn accuracy_is_not_sacrificed() {
    // Paper Figure 8a/8d: all methods track each other on accuracy.
    let d = generate_los_angeles().unwrap();
    let median = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(6)
        .run()
        .unwrap();
    let fair = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(6)
        .run()
        .unwrap();
    let gap = (median.eval.test.accuracy - fair.eval.test.accuracy).abs();
    assert!(
        gap < 0.08,
        "accuracy gap {gap} too large (median {}, fair {})",
        median.eval.test.accuracy,
        fair.eval.test.accuracy
    );
}

#[test]
fn fair_construction_is_cheaper_than_iterative() {
    // Theorems 3 vs 4: the iterative variant must train once per level.
    let d = generate_los_angeles().unwrap();
    let fair = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(8)
        .run()
        .unwrap();
    let iter = Pipeline::on(&d)
        .method(Method::IterativeFairKd)
        .height(8)
        .run()
        .unwrap();
    assert!(iter.trainings > fair.trainings);
    assert_eq!(fair.trainings, 2);
    assert_eq!(iter.trainings, 9);
}

#[test]
fn zip_code_districting_shows_disparity() {
    // Figure 6: overall calibration close to 1, per-neighborhood ratios
    // spread far from 1.
    let d = generate_los_angeles().unwrap();
    let run = Pipeline::on(&d)
        .method(Method::ZipCode)
        .height(1)
        .run()
        .unwrap();
    let overall = run.eval.full.calibration_ratio.unwrap();
    assert!(
        (overall - 1.0).abs() < 0.15,
        "overall ratio {overall} should be near 1"
    );
    let spread: Vec<f64> = run
        .eval
        .per_group
        .iter()
        .filter(|g| g.count >= 20)
        .filter_map(|g| g.ratio)
        .collect();
    let min = spread.iter().cloned().fold(f64::MAX, f64::min);
    let max = spread.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max / min > 1.5,
        "per-zip ratios should spread well beyond the overall ({min}..{max})"
    );
}
