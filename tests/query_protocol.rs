//! The typed-protocol acceptance tests: every transport — text REPL,
//! HTTP loopback, in-process `QueryService` (single-shard and sharded) —
//! must answer **bit-identically** to direct `FrozenIndex` calls, and
//! the HTTP listener must survive concurrent clients hammering it while
//! rebuilds hot-swap generations underneath.

use fsi::{repl, DecisionBody, Method, Pipeline, Request, Response, TaskSpec, WirePoint, WireRect};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use fsi_geo::{Grid, Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn dataset() -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 300,
        grid_side: 16,
        seed: 23,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

/// Random points biased toward the hard cases: interior points, exact
/// cell-boundary coordinates and the map corners.
fn query_points(grid: &Grid, n: usize, seed: u64) -> Vec<Point> {
    let b = *grid.bounds();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n + 4);
    for i in 0..n {
        let (x, y) = match i % 4 {
            0 | 1 => (rng.random::<f64>(), rng.random::<f64>()),
            2 => (
                rng.random_range(0..=grid.cols()) as f64 / grid.cols() as f64,
                rng.random::<f64>(),
            ),
            _ => (
                rng.random_range(0..=grid.cols()) as f64 / grid.cols() as f64,
                rng.random_range(0..=grid.rows()) as f64 / grid.rows() as f64,
            ),
        };
        points.push(Point::new(
            b.min_x + x * b.width(),
            b.min_y + y * b.height(),
        ));
    }
    points.extend([
        Point::new(b.min_x, b.min_y),
        Point::new(b.max_x, b.min_y),
        Point::new(b.min_x, b.max_y),
        Point::new(b.max_x, b.max_y),
    ]);
    points
}

fn expect_decision(response: Response) -> DecisionBody {
    match response {
        Response::Decision { decision } => decision,
        other => panic!("expected a decision, got {other:?}"),
    }
}

fn expect_regions(response: Response) -> Vec<usize> {
    match response {
        Response::Regions { ids } => ids,
        other => panic!("expected regions, got {other:?}"),
    }
}

/// The tentpole differential property: one query stream through the
/// text REPL, the HTTP loopback transport, a single-shard service and a
/// 2×2 (= 4-shard) `Topology` service yields decisions bit-identical
/// to direct `FrozenIndex::lookup`, and identical range-query ID sets.
#[test]
fn transports_answer_bit_identically_including_sharded() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(6)
        .run()
        .unwrap();
    let direct = run.freeze().unwrap();
    let serving = run.serve().unwrap();

    let mut in_process = serving.service();
    let mut sharded = serving
        .service_over(&fsi::TopologySpec::local(2, 2))
        .unwrap();
    assert_eq!(sharded.topology().shards(), 4);
    let server = serving.listen("127.0.0.1:0").unwrap();
    let mut http = fsi::HttpClient::connect(server.addr()).unwrap();

    let points = query_points(d.grid(), 600, 7);

    // Point lookups, transport by transport, bit for bit.
    for p in &points {
        let expected: DecisionBody = direct.lookup(p).unwrap().into();
        let request = Request::Lookup { x: p.x, y: p.y };

        let got = expect_decision(in_process.dispatch(&request));
        assert_eq!(got, expected, "in-process at {p:?}");
        assert_eq!(got.raw_score.to_bits(), expected.raw_score.to_bits());

        let got = expect_decision(sharded.dispatch(&request));
        assert_eq!(got, expected, "4-shard at {p:?}");

        let got = expect_decision(http.call(&request).unwrap());
        assert_eq!(got, expected, "http at {p:?}");
        assert_eq!(
            got.calibrated_score.to_bits(),
            expected.calibrated_score.to_bits(),
            "http float bits at {p:?}"
        );

        // The text transport: its full-precision formatting of the
        // direct decision must equal its answer line.
        let expected_line = repl::format_response(&Response::Decision { decision: expected });
        let got_line = repl::answer_line(&mut in_process, &format!("{} {}", p.x, p.y)).unwrap();
        assert_eq!(got_line, expected_line, "repl at {p:?}");
    }

    // Batched lookups across the wire equal the direct batch path.
    let wire_points: Vec<WirePoint> = points.iter().map(|p| WirePoint::new(p.x, p.y)).collect();
    let mut direct_batch = Vec::new();
    direct.lookup_batch(&points, &mut direct_batch).unwrap();
    let expected_batch: Vec<DecisionBody> = direct_batch
        .iter()
        .map(|&d| DecisionBody::from(d))
        .collect();
    for response in [
        in_process.dispatch(&Request::LookupBatch {
            points: wire_points.clone(),
        }),
        sharded.dispatch(&Request::LookupBatch {
            points: wire_points.clone(),
        }),
        http.call(&Request::LookupBatch {
            points: wire_points,
        })
        .unwrap(),
    ] {
        match response {
            Response::Decisions { decisions } => assert_eq!(decisions, expected_batch),
            other => panic!("expected decisions, got {other:?}"),
        }
    }

    // Range queries: identical ID sets everywhere, including fan-out
    // and merge across the 4 shards.
    let mut rng = StdRng::seed_from_u64(29);
    for _ in 0..100 {
        let (x0, x1) = (rng.random::<f64>(), rng.random::<f64>());
        let (y0, y1) = (rng.random::<f64>(), rng.random::<f64>());
        let rect = WireRect::new(x0.min(x1), y0.min(y1), x0.max(x1) + 1e-9, y0.max(y1) + 1e-9);
        let expected =
            direct.range_query(&Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y).unwrap());
        let request = Request::RangeQuery { rect };
        assert_eq!(
            expect_regions(in_process.dispatch(&request)),
            expected,
            "in-process {rect:?}"
        );
        assert_eq!(
            expect_regions(sharded.dispatch(&request)),
            expected,
            "4-shard {rect:?}"
        );
        assert_eq!(
            expect_regions(http.call(&request).unwrap()),
            expected,
            "http {rect:?}"
        );
        let expected_line = repl::format_response(&Response::Regions { ids: expected });
        let got_line = repl::answer_line(
            &mut in_process,
            &format!(
                "rect {} {} {} {}",
                rect.min_x, rect.min_y, rect.max_x, rect.max_y
            ),
        )
        .unwrap();
        assert_eq!(got_line, expected_line, "repl {rect:?}");
    }

    server.shutdown();
}

/// The decision cache is invisible in answers: a cached deployment —
/// in-process, REPL, HTTP loopback and 4-shard — answers bit-identically
/// to an uncached one and to direct `FrozenIndex::lookup`, on
/// boundary-biased points queried twice so the second pass exercises the
/// cache-hit path.
#[test]
fn cached_services_answer_bit_identically_across_transports() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(6)
        .run()
        .unwrap();
    let direct = run.freeze().unwrap();
    let uncached_serving = run.serve().unwrap();
    let cached_serving = run
        .serve_with_cache(fsi::CacheSpec::per_worker(1024))
        .unwrap();

    let mut uncached = uncached_serving.service();
    let mut cached = cached_serving.service();
    let mut cached_sharded = cached_serving
        .service_over(&fsi::TopologySpec::local(2, 2))
        .unwrap();
    assert_eq!(cached_sharded.topology().shards(), 4);
    let server = cached_serving.listen("127.0.0.1:0").unwrap();
    let mut http = fsi::HttpClient::connect(server.addr()).unwrap();

    let points = query_points(d.grid(), 400, 13);
    // Pass 0 populates the caches; pass 1 re-asks every point so most
    // answers come from the hit path — both must be bit-identical.
    for pass in 0..2 {
        for p in &points {
            let expected: DecisionBody = direct.lookup(p).unwrap().into();
            let request = Request::Lookup { x: p.x, y: p.y };

            let got = expect_decision(cached.dispatch(&request));
            assert_eq!(got, expected, "cached pass {pass} at {p:?}");
            assert_eq!(got.raw_score.to_bits(), expected.raw_score.to_bits());
            assert_eq!(
                got.calibrated_score.to_bits(),
                expected.calibrated_score.to_bits()
            );
            assert_eq!(
                expect_decision(uncached.dispatch(&request)),
                expected,
                "uncached pass {pass} at {p:?}"
            );
            assert_eq!(
                expect_decision(cached_sharded.dispatch(&request)),
                expected,
                "cached 4-shard pass {pass} at {p:?}"
            );
            assert_eq!(
                expect_decision(http.call(&request).unwrap()),
                expected,
                "cached http pass {pass} at {p:?}"
            );

            let expected_line = repl::format_response(&Response::Decision { decision: expected });
            let got_line = repl::answer_line(&mut cached, &format!("{} {}", p.x, p.y)).unwrap();
            assert_eq!(got_line, expected_line, "cached repl pass {pass} at {p:?}");
        }
    }

    // The hit path really ran: two dispatch passes + two REPL passes
    // over ≤ 256 distinct cells must be mostly hits, and the uncached
    // service must report no cache at all.
    match cached.dispatch(&Request::Stats) {
        Response::Stats { stats } => {
            let cache = stats.cache.expect("cached service reports cache stats");
            assert!(cache.misses <= 256, "{cache:?}");
            assert!(cache.hits > cache.misses, "{cache:?}");
            assert_eq!(cache.evictions, 0, "{cache:?}");
        }
        other => panic!("expected stats, got {other:?}"),
    }
    match uncached.dispatch(&Request::Stats) {
        Response::Stats { stats } => assert!(stats.cache.is_none()),
        other => panic!("expected stats, got {other:?}"),
    }
    server.shutdown();
}

/// A rebuild dispatched through a 4-shard service republishes every
/// shard, and the post-rebuild decisions equal a freshly built index
/// (rebuilds are deterministic).
#[test]
fn sharded_rebuild_keeps_transport_parity() {
    let d = dataset();
    let serving = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap()
        .serve()
        .unwrap();
    let mut sharded = serving
        .service_over(&fsi::TopologySpec::local(2, 2))
        .unwrap();

    let spec = fsi::PipelineSpec::new(TaskSpec::act(), Method::FairKd, 4);
    match sharded.dispatch(&Request::Rebuild { spec: spec.clone() }) {
        Response::Rebuilt { report } => {
            assert_eq!(report.generation, 2);
            assert_eq!(&report.spec, &spec);
        }
        other => panic!("expected rebuild report, got {other:?}"),
    }
    assert_eq!(sharded.topology().generations(), vec![2, 2, 2, 2]);

    let (reference, _run) = fsi_serve::build_index(&d, &spec).unwrap();
    for p in query_points(d.grid(), 400, 11) {
        let expected: DecisionBody = reference.lookup(&p).unwrap().into();
        let got = expect_decision(sharded.dispatch(&Request::Lookup { x: p.x, y: p.y }));
        assert_eq!(got, expected, "post-rebuild at {p:?}");
    }
}

/// The concurrency acceptance test: N keep-alive HTTP clients hammer
/// the listener while the rebuilder hot-swaps generations. No request
/// may fail, no connection may drop, no decision may be torn, and the
/// generation observed in `Stats` responses must be monotone per
/// client.
#[test]
fn concurrent_http_clients_survive_hot_swap_rebuilds() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 120;
    const REBUILDS: usize = 3;

    let d = dataset();
    let serving = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap()
        .serve()
        .unwrap();
    // As many workers as clients: every keep-alive connection gets a
    // dedicated worker, so a dropped connection can only be a bug.
    let server = serving.listen_with("127.0.0.1:0", CLIENTS).unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for worker in 0..CLIENTS {
            let serving = &serving;
            clients.push(scope.spawn(move || {
                let mut client = fsi::HttpClient::connect(addr).expect("client connects");
                let mut rng = StdRng::seed_from_u64(worker as u64);
                let mut last_generation = 0u64;
                let mut served = 0usize;
                for i in 0..REQUESTS_PER_CLIENT {
                    if i % 10 == 0 {
                        // Stats: the generation can only rise.
                        match client.call(&Request::Stats).expect("stats round-trip") {
                            Response::Stats { stats } => {
                                let g = stats.generations[0];
                                assert!(
                                    g >= last_generation,
                                    "generation went backwards: {last_generation} -> {g}"
                                );
                                assert!(stats.num_leaves > 0);
                                last_generation = g;
                            }
                            other => panic!("expected stats, got {other:?}"),
                        }
                    } else {
                        let x = rng.random::<f64>();
                        let y = rng.random::<f64>();
                        match client
                            .call(&Request::Lookup { x, y })
                            .expect("lookup round-trip")
                        {
                            Response::Decision { decision } => {
                                // Decisions must come from *some* complete
                                // snapshot: scores in range, leaf plausible.
                                assert!((0.0..=1.0).contains(&decision.calibrated_score));
                                assert!(
                                    decision.leaf_id < serving.handle().load().num_leaves().max(64),
                                    "torn leaf id {}",
                                    decision.leaf_id
                                );
                            }
                            other => panic!("expected decision, got {other:?}"),
                        }
                    }
                    served += 1;
                }
                (served, last_generation)
            }));
        }

        // Hot-swap generations while the clients run.
        for i in 0..REBUILDS {
            let spec = fsi::PipelineSpec::new(
                TaskSpec::act(),
                if i % 2 == 0 {
                    Method::MedianKd
                } else {
                    Method::FairKd
                },
                2 + (i % 2),
            );
            let report = serving.rebuild_with(&spec).expect("rebuild succeeds");
            assert_eq!(report.generation, i as u64 + 2);
        }

        let mut total = 0;
        for client in clients {
            let (served, _gen) = client.join().expect("client thread survived");
            assert_eq!(served, REQUESTS_PER_CLIENT, "dropped requests");
            total += served;
        }
        assert_eq!(total, CLIENTS * REQUESTS_PER_CLIENT);
    });

    // Every rebuild published through the shared handle.
    assert_eq!(serving.handle().generation(), REBUILDS as u64 + 1);
    // And the service still answers after the storm.
    match fsi::http::query_once(addr, &Request::Stats).unwrap() {
        Response::Stats { stats } => {
            assert_eq!(stats.generations, vec![REBUILDS as u64 + 1])
        }
        other => panic!("expected stats, got {other:?}"),
    }
    server.shutdown();
}

/// The cached concurrency acceptance test: keep-alive HTTP clients
/// hammer a small set of hot cells (the cache-friendliest workload)
/// while rebuilds hot-swap generations underneath. Because rebuilds are
/// deterministic, every generation's correct decision table is
/// precomputed; a client that has observed generation `g` in `Stats`
/// must from then on receive decisions from some generation `≥ g` — a
/// stale cached decision matching only an older table fails. Per-client
/// cache hit counters must be monotone (each keep-alive connection is
/// pinned to one worker, and per-worker caches are not shared).
#[test]
fn cached_http_clients_never_observe_stale_generations_under_rebuilds() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 150;
    const REBUILDS: usize = 3;

    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap();
    let serving = run
        .serve_with_cache(fsi::CacheSpec::per_worker(512))
        .unwrap();

    // The deterministic spec schedule: generation g serves the index
    // built from specs[g - 1]; specs[0] is the deployment's own spec.
    let mut specs = vec![serving.spec().clone()];
    for i in 0..REBUILDS {
        specs.push(fsi::PipelineSpec::new(
            TaskSpec::act(),
            if i % 2 == 0 {
                Method::FairKd
            } else {
                Method::MedianKd
            },
            3 + (i % 2),
        ));
    }

    // Hot cells: a handful of spread-out cell centroids every client
    // re-queries, so the per-worker caches run at a high hit rate.
    let b = *d.grid().bounds();
    let side = d.grid().cols() as f64;
    let hot: Vec<Point> = (0..8)
        .map(|i| {
            let (col, row) = (2 * i % 16, (2 * i + 5) % 16);
            Point::new(
                b.min_x + (col as f64 + 0.5) / side * b.width(),
                b.min_y + (row as f64 + 0.5) / side * b.height(),
            )
        })
        .collect();

    // expected[g - 1][k] is generation g's correct decision for hot[k].
    let expected: Vec<Vec<DecisionBody>> = specs
        .iter()
        .map(|spec| {
            let (index, _run) = fsi_serve::build_index(&d, spec).unwrap();
            hot.iter()
                .map(|p| index.lookup(p).unwrap().into())
                .collect()
        })
        .collect();

    // One worker per client: each keep-alive connection owns a worker
    // (and with it one per-worker cache) for its whole lifetime.
    let server = serving.listen_with("127.0.0.1:0", CLIENTS).unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for worker in 0..CLIENTS {
            let (hot, expected) = (&hot, &expected);
            clients.push(scope.spawn(move || {
                let mut client = fsi::HttpClient::connect(addr).expect("client connects");
                let mut rng = StdRng::seed_from_u64(1000 + worker as u64);
                let mut last_generation = 1u64;
                let mut last_hits = 0u64;
                for i in 0..REQUESTS_PER_CLIENT {
                    if i % 10 == 0 {
                        match client.call(&Request::Stats).expect("stats round-trip") {
                            Response::Stats { stats } => {
                                let g = stats.generations[0];
                                assert!(
                                    g >= last_generation,
                                    "generation went backwards: {last_generation} -> {g}"
                                );
                                last_generation = g;
                                let cache = stats.cache.expect("cache stats present");
                                assert!(
                                    cache.hits >= last_hits,
                                    "hit counter went backwards: {last_hits} -> {}",
                                    cache.hits
                                );
                                last_hits = cache.hits;
                            }
                            other => panic!("expected stats, got {other:?}"),
                        }
                    } else {
                        let k = rng.random_range(0..hot.len());
                        let p = &hot[k];
                        let got = match client
                            .call(&Request::Lookup { x: p.x, y: p.y })
                            .expect("lookup round-trip")
                        {
                            Response::Decision { decision } => decision,
                            other => panic!("expected decision, got {other:?}"),
                        };
                        // Readers are monotone: once generation g was
                        // observed, a decision matching only an older
                        // generation's table is a stale cache entry.
                        let live = expected[last_generation as usize - 1..]
                            .iter()
                            .any(|table| table[k] == got);
                        assert!(
                            live,
                            "stale decision for hot[{k}] after generation \
                             {last_generation}: {got:?}"
                        );
                    }
                }
                last_hits
            }));
        }

        // Hot-swap every scheduled generation while the clients run.
        for (i, spec) in specs.iter().enumerate().skip(1) {
            let report = serving.rebuild_with(spec).expect("rebuild succeeds");
            assert_eq!(report.generation, i as u64 + 1);
        }

        for client in clients {
            let hits = client.join().expect("client thread survived");
            // ~135 lookups over 8 hot cells against a dedicated
            // per-worker cache: the hit path must have run.
            assert!(hits > 0, "a hot-cell client never hit its cache");
        }
    });

    assert_eq!(serving.handle().generation(), REBUILDS as u64 + 1);
    server.shutdown();
}

/// Protocol-level rejections surface as structured errors across the
/// wire without killing the connection.
#[test]
fn http_transport_rejects_garbage_and_keeps_serving() {
    let d = dataset();
    let serving = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap()
        .serve()
        .unwrap();
    let server = serving.listen("127.0.0.1:0").unwrap();
    let mut client = fsi::HttpClient::connect(server.addr()).unwrap();

    // Garbage body → 400 with a structured error envelope.
    let (status, body) = client.post("{not json").unwrap();
    assert_eq!(status, 400);
    match fsi::decode_response(&body).unwrap() {
        Response::Error { error } => {
            assert_eq!(error.code, fsi::ErrorCode::MalformedRequest)
        }
        other => panic!("expected error, got {other:?}"),
    }
    // Out-of-bounds application error → 200 + structured body, and the
    // keep-alive connection is still usable afterwards.
    match client.call(&Request::Lookup { x: 50.0, y: 50.0 }).unwrap() {
        Response::Error { error } => assert_eq!(error.code, fsi::ErrorCode::OutOfBounds),
        other => panic!("expected error, got {other:?}"),
    }
    assert!(matches!(
        client.call(&Request::Stats).unwrap(),
        Response::Stats { .. }
    ));
    server.shutdown();
}
