//! Distributed-serving acceptance tests: a coordinator scatter-gathering
//! over **real HTTP shard processes** (in-process `HttpServer`s, real
//! sockets, keep-alive connections) must answer bit-identically to the
//! single-box service, per-shard partial indexes must actually shrink
//! the working set, and the two-phase rebuild barrier must be torn-free
//! under concurrent keep-alive clients.

use fsi::{
    BackendSpec, DecisionBody, IngestBody, MaintenanceSpec, Method, Pipeline, Request, Response,
    TaskSpec, TopologySpec, WirePoint, WireRect,
};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use fsi_geo::{Grid, Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn dataset() -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 300,
        grid_side: 16,
        seed: 23,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

/// Random points biased toward the hard cases: interior points, exact
/// cell- and shard-boundary coordinates, and the map corners.
fn query_points(grid: &Grid, n: usize, seed: u64) -> Vec<Point> {
    let b = *grid.bounds();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n + 5);
    for i in 0..n {
        let (x, y) = match i % 4 {
            0 | 1 => (rng.random::<f64>(), rng.random::<f64>()),
            2 => (
                rng.random_range(0..=grid.cols()) as f64 / grid.cols() as f64,
                rng.random::<f64>(),
            ),
            _ => (
                rng.random_range(0..=grid.cols()) as f64 / grid.cols() as f64,
                rng.random_range(0..=grid.rows()) as f64 / grid.rows() as f64,
            ),
        };
        points.push(Point::new(
            b.min_x + x * b.width(),
            b.min_y + y * b.height(),
        ));
    }
    points.extend([
        Point::new(b.min_x, b.min_y),
        Point::new(b.max_x, b.min_y),
        Point::new(b.min_x, b.max_y),
        Point::new(b.max_x, b.max_y),
        // The 2×2 shard cross-point: both split boundaries at once.
        Point::new(b.min_x + b.width() / 2.0, b.min_y + b.height() / 2.0),
    ]);
    points
}

fn expect_decision(response: Response) -> DecisionBody {
    match response {
        Response::Decision { decision } => decision,
        other => panic!("expected a decision, got {other:?}"),
    }
}

/// The tentpole differential property: a 2×2 topology with two shards
/// served by real HTTP shard servers (partial indexes over their slots)
/// and two served in-process answers every Lookup / LookupBatch /
/// RangeQuery **bit-identically** to the single-box service and to
/// direct `FrozenIndex` calls; the union of per-shard range answers
/// equals the single-box answer; and every shard's partial index is at
/// most 60% of the full replica's heap.
#[test]
fn remote_partial_topology_answers_bit_identically_to_the_single_box() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(6)
        .run()
        .unwrap();
    let direct = run.freeze().unwrap();
    let serving = run.serve().unwrap();

    // Two real shard servers for slots 1 and 2 of the 2×2 grid, each
    // holding only its slot's partial index.
    let local_spec = TopologySpec::local(2, 2);
    let shard1 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 1).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let shard2 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 2).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();

    // The coordinator: slots 0 and 3 in-process, 1 and 2 over HTTP.
    let spec = TopologySpec {
        rows: 2,
        cols: 2,
        shards: vec![
            BackendSpec::Local,
            BackendSpec::Http(shard1.addr().to_string()),
            BackendSpec::Http(shard2.addr().to_string()),
            BackendSpec::Local,
        ],
    };
    let mut coordinator = serving.service_over(&spec).unwrap();
    let mut single_box = serving.service();

    // Point lookups: coordinator ≡ single box ≡ direct, bit for bit —
    // including points that route across the wire.
    let points = query_points(d.grid(), 400, 7);
    for p in &points {
        let expected: DecisionBody = direct.lookup(p).unwrap().into();
        let request = Request::Lookup { x: p.x, y: p.y };
        let got = expect_decision(coordinator.dispatch(&request));
        assert_eq!(got, expected, "coordinator at {p:?}");
        assert_eq!(got.raw_score.to_bits(), expected.raw_score.to_bits());
        assert_eq!(
            got.calibrated_score.to_bits(),
            expected.calibrated_score.to_bits()
        );
        assert_eq!(
            expect_decision(single_box.dispatch(&request)),
            expected,
            "single box at {p:?}"
        );
    }
    // An out-of-bounds point answers the same structured error on both.
    let oob = Request::Lookup { x: 50.0, y: 50.0 };
    assert_eq!(coordinator.dispatch(&oob), single_box.dispatch(&oob));

    // One batch over every point: scatter, sub-batch over the wire,
    // gather back in the original order.
    let wire_points: Vec<WirePoint> = points.iter().map(|p| WirePoint::new(p.x, p.y)).collect();
    let mut direct_batch = Vec::new();
    direct.lookup_batch(&points, &mut direct_batch).unwrap();
    let expected_batch: Vec<DecisionBody> = direct_batch
        .iter()
        .map(|&d| DecisionBody::from(d))
        .collect();
    match coordinator.dispatch(&Request::LookupBatch {
        points: wire_points,
    }) {
        Response::Decisions { decisions } => assert_eq!(decisions, expected_batch),
        other => panic!("expected decisions, got {other:?}"),
    }

    // Range queries: identical ID sets, merged across local and remote
    // shards.
    let mut rng = StdRng::seed_from_u64(29);
    for _ in 0..60 {
        let (x0, x1) = (rng.random::<f64>(), rng.random::<f64>());
        let (y0, y1) = (rng.random::<f64>(), rng.random::<f64>());
        let rect = WireRect::new(x0.min(x1), y0.min(y1), x0.max(x1) + 1e-9, y0.max(y1) + 1e-9);
        let expected =
            direct.range_query(&Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y).unwrap());
        match coordinator.dispatch(&Request::RangeQuery { rect }) {
            Response::Regions { ids } => assert_eq!(ids, expected, "{rect:?}"),
            other => panic!("expected regions, got {other:?}"),
        }
    }

    // Union-of-shards property: asking every shard server (and the two
    // local partials) for the whole map and merging the IDs equals the
    // single-box answer — the partial indexes tile the leaf set.
    let b = *direct.bounds();
    let full = WireRect::new(b.min_x, b.min_y, b.max_x, b.max_y);
    let mut union: Vec<usize> = Vec::new();
    for shard in 0..4 {
        let response = match shard {
            1 => fsi::http::query_once(shard1.addr(), &Request::RangeQuery { rect: full }).unwrap(),
            2 => fsi::http::query_once(shard2.addr(), &Request::RangeQuery { rect: full }).unwrap(),
            _ => serving
                .service_shard(&local_spec, shard)
                .unwrap()
                .dispatch(&Request::RangeQuery { rect: full }),
        };
        match response {
            Response::Regions { ids } => union.extend(ids),
            other => panic!("expected regions from shard {shard}, got {other:?}"),
        }
    }
    union.sort_unstable();
    union.dedup();
    assert_eq!(
        union,
        direct.range_query(&Rect::new(b.min_x, b.min_y, b.max_x, b.max_y).unwrap())
    );

    // Partial indexes scale DOWN: every shard (local and remote alike)
    // holds at most 60% of the full replica's heap.
    let full_heap = direct.heap_bytes();
    match coordinator.dispatch(&Request::Stats) {
        Response::Stats { stats } => {
            let per_shard = stats.per_shard.expect("topology stats are per-shard");
            assert_eq!(per_shard.len(), 4);
            let kinds: Vec<&str> = per_shard.iter().map(|s| s.kind.as_str()).collect();
            assert_eq!(kinds, ["local", "http", "http", "local"]);
            for (i, shard) in per_shard.iter().enumerate() {
                assert!(
                    shard.heap_bytes * 10 <= full_heap * 6,
                    "shard {i} holds {} B of a {} B replica (> 60%)",
                    shard.heap_bytes,
                    full_heap
                );
            }
        }
        other => panic!("expected stats, got {other:?}"),
    }

    shard1.shutdown();
    shard2.shutdown();
}

/// The distributed concurrency acceptance test: ≥4 keep-alive HTTP
/// clients hammer a coordinator whose two shards are **real HTTP shard
/// servers**, while rebuilds run the two-phase prepare/commit barrier
/// across the wire. No request fails, generations are monotone, and —
/// because rebuilds are deterministic — every decision must match the
/// table of a generation at least as new as the oldest the client has
/// already observed on *all* shards (a stale or torn answer fails).
#[test]
fn two_phase_rebuild_over_http_shards_is_torn_free_under_concurrent_clients() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 80;
    const REBUILDS: usize = 2;

    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap();
    let serving = run.serve().unwrap();

    // Two real shard servers over the halves of a 1×2 topology.
    let local_spec = TopologySpec::local(1, 2);
    let shard0 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 0).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let shard1 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 1).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let spec = TopologySpec {
        rows: 1,
        cols: 2,
        shards: vec![
            BackendSpec::Http(shard0.addr().to_string()),
            BackendSpec::Http(shard1.addr().to_string()),
        ],
    };
    // The coordinator itself serves HTTP: one worker per client, plus
    // one for the rebuild driver.
    let coordinator = fsi::HttpServer::bind_with(
        serving.service_over(&spec).unwrap(),
        "127.0.0.1:0",
        CLIENTS + 1,
    )
    .unwrap();
    let addr = coordinator.addr();

    // The deterministic spec schedule: generation g serves the index
    // built from specs[g - 1]; specs[0] is the deployment's own spec.
    let mut specs = vec![serving.spec().clone()];
    for i in 0..REBUILDS {
        specs.push(fsi::PipelineSpec::new(
            TaskSpec::act(),
            if i % 2 == 0 {
                Method::FairKd
            } else {
                Method::MedianKd
            },
            2 + (i % 2),
        ));
    }

    // Hot points spread over both shards; expected[g - 1][k] is
    // generation g's correct decision for hot[k].
    let b = *d.grid().bounds();
    let hot: Vec<Point> = (0..8)
        .map(|i| {
            Point::new(
                b.min_x + (0.07 + 0.125 * i as f64) * b.width(),
                b.min_y + (0.93 - 0.11 * i as f64) * b.height(),
            )
        })
        .collect();
    let expected: Vec<Vec<DecisionBody>> = specs
        .iter()
        .map(|spec| {
            let (index, _run) = fsi_serve::build_index(&d, spec).unwrap();
            hot.iter()
                .map(|p| index.lookup(p).unwrap().into())
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for worker in 0..CLIENTS {
            let (hot, expected) = (&hot, &expected);
            clients.push(scope.spawn(move || {
                let mut client = fsi::HttpClient::connect(addr).expect("client connects");
                let mut rng = StdRng::seed_from_u64(500 + worker as u64);
                // The barrier floor: once every shard has been seen at
                // generation g, no answer may come from an older one.
                let mut floor = 1u64;
                for i in 0..REQUESTS_PER_CLIENT {
                    if i % 10 == 0 {
                        match client.call(&Request::Stats).expect("stats round-trip") {
                            Response::Stats { stats } => {
                                let per_shard =
                                    stats.per_shard.expect("coordinator stats are per-shard");
                                assert_eq!(per_shard.len(), 2);
                                for s in &per_shard {
                                    assert_eq!(s.kind, "http");
                                    assert!(s.addr.is_some());
                                }
                                let min = per_shard.iter().map(|s| s.generation).min().unwrap();
                                assert!(
                                    min >= floor,
                                    "generation floor went backwards: {floor} -> {min}"
                                );
                                floor = min;
                            }
                            other => panic!("expected stats, got {other:?}"),
                        }
                    } else {
                        let k = rng.random_range(0..hot.len());
                        let p = &hot[k];
                        let got = expect_decision(
                            client
                                .call(&Request::Lookup { x: p.x, y: p.y })
                                .expect("lookup round-trip"),
                        );
                        let live = expected[floor as usize - 1..]
                            .iter()
                            .any(|table| table[k] == got);
                        assert!(
                            live,
                            "torn or stale decision for hot[{k}] after barrier \
                             generation {floor}: {got:?}"
                        );
                    }
                }
                floor
            }));
        }

        // Drive the rebuilds through the coordinator's own transport:
        // each one retrains, then prepares BOTH remote shards before
        // committing either.
        let mut driver = fsi::HttpClient::connect(addr).expect("driver connects");
        for (i, spec) in specs.iter().enumerate().skip(1) {
            match driver
                .call(&Request::Rebuild { spec: spec.clone() })
                .expect("rebuild round-trip")
            {
                Response::Rebuilt { report } => {
                    assert_eq!(report.generation, i as u64 + 1, "rebuild {i}")
                }
                other => panic!("expected rebuild report, got {other:?}"),
            }
        }

        for client in clients {
            let floor = client.join().expect("client thread survived");
            assert!(floor >= 1);
        }
    });

    // After the storm both shard servers sit at the final generation
    // and the coordinator still answers.
    match fsi::http::query_once(addr, &Request::Stats).unwrap() {
        Response::Stats { stats } => {
            assert_eq!(stats.generations, vec![REBUILDS as u64 + 1; 2]);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    coordinator.shutdown();
    shard0.shutdown();
    shard1.shutdown();
}

/// A prepare that cannot reach every shard must leave the topology
/// serving the old generation everywhere: shard servers reject a bare
/// `commit`, and a coordinator whose remote shard has gone away
/// surfaces a structured error instead of publishing a half-rebuilt
/// topology.
#[test]
fn failed_prepares_leave_every_shard_on_the_old_generation() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap();
    let serving = run.serve().unwrap();

    let local_spec = TopologySpec::local(1, 2);
    let shard0 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 0).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let shard1 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 1).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();

    // A commit with no staged prepare is a structured protocol error.
    match fsi::http::query_once(shard0.addr(), &Request::RebuildCommit).unwrap() {
        Response::Error { error } => assert_eq!(error.code, fsi::ErrorCode::NotPrepared),
        other => panic!("expected not_prepared, got {other:?}"),
    }

    let spec = TopologySpec {
        rows: 1,
        cols: 2,
        shards: vec![
            BackendSpec::Http(shard0.addr().to_string()),
            BackendSpec::Http(shard1.addr().to_string()),
        ],
    };
    let mut coordinator = serving.service_over(&spec).unwrap();

    // Kill shard 1, then ask for a rebuild: the prepare fan-out fails,
    // no shard commits, and shard 0 keeps serving generation 1.
    shard1.shutdown();
    let rebuild_spec = fsi::PipelineSpec::new(TaskSpec::act(), Method::FairKd, 3);
    match coordinator.dispatch(&Request::Rebuild { spec: rebuild_spec }) {
        Response::Error { error } => {
            assert_eq!(error.code, fsi::ErrorCode::Internal, "{error:?}")
        }
        other => panic!("expected a structured rebuild failure, got {other:?}"),
    }
    match fsi::http::query_once(shard0.addr(), &Request::Stats).unwrap() {
        Response::Stats { stats } => assert_eq!(stats.generations, vec![1]),
        other => panic!("expected stats, got {other:?}"),
    }
    // And a late commit still finds nothing staged on shard 0.
    match fsi::http::query_once(shard0.addr(), &Request::RebuildCommit).unwrap() {
        Response::Error { error } => assert_eq!(error.code, fsi::ErrorCode::NotPrepared),
        other => panic!("expected not_prepared, got {other:?}"),
    }
    shard0.shutdown();
}

/// The streamed wave the maintenance tests feed: points spread over all
/// four quadrants (so every shard — local and remote — owns some), one
/// drifting cohort, deterministic order.
fn streamed_wave(grid: &Grid, n: u32) -> Vec<IngestBody> {
    let b = *grid.bounds();
    (0..n)
        .map(|i| {
            let fx = 0.05 + 0.9 * f64::from(i % 10) / 10.0;
            let fy = 0.05 + 0.9 * f64::from((i / 10) % 10) / 10.0;
            IngestBody::new(
                b.min_x + fx * b.width(),
                b.min_y + fy * b.height(),
                i % 2,
                i % 3 != 0,
            )
        })
        .collect()
}

/// The maintenance differential property: after streamed points trip a
/// maintenance pass on a coordinator whose remote shards are real HTTP
/// servers, every decision — local or routed across the wire — is
/// **bit-identical** to a from-scratch retrain on seed ∪ streamed
/// points. The coordinator ships its full ordered ingest log as the
/// two-phase prepare's delta, so the remote shards (which never saw an
/// `Ingest` request) merge exactly the same dataset.
#[test]
fn drift_triggered_maintenance_is_bit_exact_with_a_from_scratch_retrain() {
    let d = dataset();
    let policy = MaintenanceSpec {
        drift_threshold: 1e18, // only occupancy triggers here
        max_buffered: 64,
        max_staleness_ms: 0,
        poll_interval_ms: 5,
    };
    let serving = Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(5)
        .run()
        .unwrap()
        .serve_with_ingest(policy.clone())
        .unwrap();

    let local_spec = TopologySpec::local(2, 2);
    let shard1 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 1).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let shard2 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 2).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let spec = TopologySpec {
        rows: 2,
        cols: 2,
        shards: vec![
            BackendSpec::Local,
            BackendSpec::Http(shard1.addr().to_string()),
            BackendSpec::Http(shard2.addr().to_string()),
            BackendSpec::Local,
        ],
    };
    let mut coordinator = serving.service_over(&spec).unwrap();

    let bodies = streamed_wave(d.grid(), 96);
    match coordinator.dispatch(&Request::IngestBatch {
        points: bodies.clone(),
    }) {
        Response::Ingested {
            accepted, buffered, ..
        } => {
            assert_eq!(accepted, 96);
            assert_eq!(buffered, 96);
        }
        other => panic!("expected ingested, got {other:?}"),
    }

    // 96 buffered > 64 allowed: the next poll is due and publishes.
    let pspec = serving.spec().clone();
    let generation = coordinator
        .maintain(&policy, &pspec)
        .unwrap()
        .expect("occupancy past the policy must trigger a rebuild");
    assert_eq!(generation, 2);

    // From-scratch reference: retrain on seed ∪ streamed points, merged
    // in stream order — exactly what every shard must now be serving.
    let records: Vec<fsi_ingest::IngestRecord> = bodies
        .iter()
        .enumerate()
        .map(|(i, p)| fsi_ingest::IngestRecord::from_wire(i as u64, p))
        .collect();
    let merged = fsi_ingest::merge_dataset(&d, &TaskSpec::act(), &records).unwrap();
    let (reference, _run) = fsi_serve::build_index(&merged, &pspec).unwrap();

    for p in query_points(d.grid(), 300, 41) {
        let expected: DecisionBody = reference.lookup(&p).unwrap().into();
        let got = expect_decision(coordinator.dispatch(&Request::Lookup { x: p.x, y: p.y }));
        assert_eq!(got, expected, "post-maintenance decision at {p:?}");
        assert_eq!(got.raw_score.to_bits(), expected.raw_score.to_bits());
        assert_eq!(
            got.calibrated_score.to_bits(),
            expected.calibrated_score.to_bits()
        );
    }
    match coordinator.dispatch(&Request::Stats) {
        Response::Stats { stats } => assert_eq!(stats.generations, vec![2, 2, 2, 2]),
        other => panic!("expected stats, got {other:?}"),
    }
    shard1.shutdown();
    shard2.shutdown();
}

/// Streaming ingestion under fire: keep-alive readers hammer a
/// coordinator over two real HTTP shard servers while a writer streams
/// batches and a background maintenance thread republishes whenever the
/// occupancy policy trips. No request fails, every decision is complete
/// and in-range, the generation floor never regresses — and after the
/// storm one forced merge brings every shard to a state bit-identical
/// to a from-scratch retrain on seed ∪ everything streamed.
#[test]
fn auto_rebuilds_under_concurrent_ingest_and_reads_stay_untorn() {
    const READERS: usize = 3;
    const REQUESTS_PER_READER: usize = 60;
    const WAVES: u32 = 12;
    const WAVE_LEN: u32 = 16;

    let d = dataset();
    let policy = MaintenanceSpec {
        drift_threshold: 1e18,
        max_buffered: 48,
        max_staleness_ms: 0,
        poll_interval_ms: 5,
    };
    let serving = Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::MedianKd)
        .height(3)
        .run()
        .unwrap()
        .serve_with_ingest(policy)
        .unwrap();

    let local_spec = TopologySpec::local(1, 2);
    let shard0 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 0).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let shard1 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 1).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let spec = TopologySpec {
        rows: 1,
        cols: 2,
        shards: vec![
            BackendSpec::Http(shard0.addr().to_string()),
            BackendSpec::Http(shard1.addr().to_string()),
        ],
    };
    let coordinator_service = serving.service_over(&spec).unwrap();
    let maintenance = serving.spawn_maintenance(&coordinator_service).unwrap();
    let coordinator =
        fsi::HttpServer::bind_with(coordinator_service, "127.0.0.1:0", READERS + 2).unwrap();
    let addr = coordinator.addr();

    let b = *d.grid().bounds();
    let hot: Vec<Point> = (0..8)
        .map(|i| {
            Point::new(
                b.min_x + (0.06 + 0.12 * i as f64) * b.width(),
                b.min_y + (0.9 - 0.1 * i as f64) * b.height(),
            )
        })
        .collect();

    let all_bodies: Vec<IngestBody> = streamed_wave(d.grid(), WAVES * WAVE_LEN);
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for worker in 0..READERS {
            let hot = &hot;
            readers.push(scope.spawn(move || {
                let mut client = fsi::HttpClient::connect(addr).expect("reader connects");
                let mut rng = StdRng::seed_from_u64(900 + worker as u64);
                let mut floor = 1u64;
                for i in 0..REQUESTS_PER_READER {
                    if i % 12 == 0 {
                        match client.call(&Request::Stats).expect("stats round-trip") {
                            Response::Stats { stats } => {
                                let min = stats.generations.iter().copied().min().unwrap();
                                assert!(
                                    min >= floor,
                                    "generation floor went backwards: {floor} -> {min}"
                                );
                                floor = min;
                            }
                            other => panic!("expected stats, got {other:?}"),
                        }
                    } else {
                        let p = &hot[rng.random_range(0..hot.len())];
                        let got = expect_decision(
                            client
                                .call(&Request::Lookup { x: p.x, y: p.y })
                                .expect("lookup round-trip"),
                        );
                        assert!(
                            (0.0..=1.0).contains(&got.calibrated_score),
                            "torn decision: {got:?}"
                        );
                    }
                }
                floor
            }));
        }

        // The single writer: one wave per round-trip, so the
        // coordinator's ingest log order is the submission order.
        let writer = scope.spawn(|| {
            let mut client = fsi::HttpClient::connect(addr).expect("writer connects");
            let mut streamed = 0u64;
            for wave in all_bodies.chunks(WAVE_LEN as usize) {
                match client
                    .call(&Request::IngestBatch {
                        points: wave.to_vec(),
                    })
                    .expect("ingest round-trip")
                {
                    Response::Ingested { accepted, .. } => streamed += accepted,
                    other => panic!("expected ingested, got {other:?}"),
                }
            }
            streamed
        });

        assert_eq!(
            writer.join().expect("writer survived"),
            u64::from(WAVES * WAVE_LEN)
        );
        for reader in readers {
            assert!(reader.join().expect("reader survived") >= 1);
        }
    });

    // Stop the background thread, then force one final merge so the
    // published state covers every streamed point.
    let background_rebuilds = maintenance.stop();
    assert!(
        background_rebuilds >= 1,
        "the occupancy policy must have tripped at least once"
    );
    let pspec = serving.spec().clone();
    match fsi::http::query_once(
        addr,
        &Request::Rebuild {
            spec: pspec.clone(),
        },
    )
    .unwrap()
    {
        Response::Rebuilt { .. } => {}
        other => panic!("expected rebuilt, got {other:?}"),
    }

    // Differential closure: the fleet now serves exactly the index a
    // from-scratch retrain on seed ∪ all streamed points produces.
    let records: Vec<fsi_ingest::IngestRecord> = all_bodies
        .iter()
        .enumerate()
        .map(|(i, p)| fsi_ingest::IngestRecord::from_wire(i as u64, p))
        .collect();
    let merged = fsi_ingest::merge_dataset(&d, &TaskSpec::act(), &records).unwrap();
    let (reference, _run) = fsi_serve::build_index(&merged, &pspec).unwrap();
    let mut client = fsi::HttpClient::connect(addr).unwrap();
    for p in query_points(d.grid(), 150, 53) {
        let expected: DecisionBody = reference.lookup(&p).unwrap().into();
        let got = expect_decision(
            client
                .call(&Request::Lookup { x: p.x, y: p.y })
                .expect("post-storm lookup"),
        );
        assert_eq!(got, expected, "post-storm decision at {p:?}");
    }

    coordinator.shutdown();
    shard0.shutdown();
    shard1.shutdown();
}

/// The parallel scatter-gather fan-out answers exactly what querying
/// each shard one at a time answers: range queries equal the sequential
/// per-shard union, per-shard stats equal each shard's own report, and
/// a metrics scrape carries every remote shard's snapshot.
#[test]
fn parallel_fanout_matches_sequential_per_shard_answers() {
    let d = dataset();
    let serving = Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(5)
        .run()
        .unwrap()
        .serve()
        .unwrap();

    let local_spec = TopologySpec::local(2, 2);
    let shard1 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 1).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let shard2 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 2).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let spec = TopologySpec {
        rows: 2,
        cols: 2,
        shards: vec![
            BackendSpec::Local,
            BackendSpec::Http(shard1.addr().to_string()),
            BackendSpec::Http(shard2.addr().to_string()),
            BackendSpec::Local,
        ],
    };
    let mut coordinator = serving.service_over(&spec).unwrap().with_metrics(true);

    // Range queries: the coordinator's (concurrent) scatter-gather
    // equals the union of asking every shard sequentially.
    let sequential_shard = |shard: usize, rect: WireRect| -> Vec<usize> {
        let response = match shard {
            1 => fsi::http::query_once(shard1.addr(), &Request::RangeQuery { rect }).unwrap(),
            2 => fsi::http::query_once(shard2.addr(), &Request::RangeQuery { rect }).unwrap(),
            _ => serving
                .service_shard(&local_spec, shard)
                .unwrap()
                .dispatch(&Request::RangeQuery { rect }),
        };
        match response {
            Response::Regions { ids } => ids,
            other => panic!("expected regions from shard {shard}, got {other:?}"),
        }
    };
    let mut rng = StdRng::seed_from_u64(67);
    for _ in 0..25 {
        let (x0, x1) = (rng.random::<f64>(), rng.random::<f64>());
        let (y0, y1) = (rng.random::<f64>(), rng.random::<f64>());
        let rect = WireRect::new(x0.min(x1), y0.min(y1), x0.max(x1) + 1e-9, y0.max(y1) + 1e-9);
        let mut sequential: Vec<usize> = (0..4).flat_map(|s| sequential_shard(s, rect)).collect();
        sequential.sort_unstable();
        sequential.dedup();
        match coordinator.dispatch(&Request::RangeQuery { rect }) {
            Response::Regions { ids } => assert_eq!(ids, sequential, "{rect:?}"),
            other => panic!("expected regions, got {other:?}"),
        }
    }

    // Batches: the per-shard sub-batches now fan out concurrently, but
    // the gathered answer must equal asking for every point one at a
    // time, in the original order.
    let points = query_points(d.grid(), 120, 71);
    let sequential: Vec<DecisionBody> = points
        .iter()
        .map(|p| expect_decision(coordinator.dispatch(&Request::Lookup { x: p.x, y: p.y })))
        .collect();
    match coordinator.dispatch(&Request::LookupBatch {
        points: points.iter().map(|p| WirePoint::new(p.x, p.y)).collect(),
    }) {
        Response::Decisions { decisions } => assert_eq!(decisions, sequential),
        other => panic!("expected decisions, got {other:?}"),
    }

    // Stats: the fanned-out per-shard reports equal each remote shard's
    // own answer.
    match coordinator.dispatch(&Request::Stats) {
        Response::Stats { stats } => {
            let per_shard = stats.per_shard.expect("topology stats are per-shard");
            for (shard, server) in [(1, shard1.addr()), (2, shard2.addr())] {
                let own = match fsi::http::query_once(server, &Request::Stats).unwrap() {
                    Response::Stats { stats } => stats,
                    other => panic!("expected stats, got {other:?}"),
                };
                let via = &per_shard[shard];
                assert_eq!(via.generation, own.generations[0]);
                assert_eq!(via.num_leaves, own.num_leaves);
                assert_eq!(via.heap_bytes, own.heap_bytes);
                assert_eq!(via.backend, own.backend);
            }
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Metrics: the concurrent scrape still gathers every remote
    // shard's own snapshot into its slot.
    match coordinator.dispatch(&Request::Metrics) {
        Response::Metrics { metrics } => {
            assert!(metrics.shards[1].remote.is_some(), "shard 1 scraped");
            assert!(metrics.shards[2].remote.is_some(), "shard 2 scraped");
            assert!(
                metrics.shards[0].remote.is_none(),
                "local shards have no remote scrape"
            );
        }
        other => panic!("expected metrics, got {other:?}"),
    }

    shard1.shutdown();
    shard2.shutdown();
}

/// Graceful degradation: when a remote shard dies (a `ChaosShard` kill
/// switch over the real HTTP backend — no hand-rolled failure
/// plumbing), fleet-wide `Stats` and `Metrics` still answer. The dead
/// shard carries an `unreachable` marker with the transport error
/// instead of failing the whole response, and flipping the switch back
/// clears the marker.
#[test]
fn stats_and_metrics_degrade_gracefully_when_a_shard_dies() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(4)
        .run()
        .unwrap();
    let index = run.freeze().unwrap();
    let serving = run.serve().unwrap();

    let local_spec = TopologySpec::local(1, 2);
    let shard1 = fsi::HttpServer::bind(
        serving.service_shard(&local_spec, 1).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let spec = TopologySpec {
        rows: 1,
        cols: 2,
        shards: vec![
            BackendSpec::Local,
            BackendSpec::Http(shard1.addr().to_string()),
        ],
    };
    let switches: std::sync::Mutex<Vec<fsi::ChaosSwitch>> = std::sync::Mutex::new(Vec::new());
    let topology = fsi::Topology::from_spec(&spec, index, |addr: &str| {
        let chaos = fsi::ChaosShard::new(Box::new(fsi::RemoteShard::connect(addr)?));
        switches.lock().unwrap().push(chaos.switch());
        Ok(Box::new(chaos) as Box<dyn fsi::ShardBackend>)
    })
    .unwrap();
    let mut coordinator = fsi::QueryService::new(topology).with_metrics(true);
    let switch = switches.into_inner().unwrap().pop().expect("one remote");

    let assert_stats = |response: Response, down: bool| match response {
        Response::Stats { stats } => {
            let per_shard = stats.per_shard.expect("topology stats are per-shard");
            assert_eq!(per_shard.len(), 2);
            assert!(per_shard[0].unreachable.is_none(), "local shard healthy");
            if down {
                assert_eq!(per_shard[1].unreachable, Some(true));
                assert_eq!(per_shard[1].backend, "unreachable");
                assert_eq!(per_shard[1].generation, 0);
                let error = per_shard[1].error.as_deref().unwrap_or_default();
                assert!(error.contains("chaos"), "marker carries the cause: {error}");
            } else {
                assert!(per_shard[1].unreachable.is_none());
                assert!(per_shard[1].error.is_none());
                assert_eq!(per_shard[1].generation, 1);
            }
        }
        other => panic!("expected stats, got {other:?}"),
    };

    assert_stats(coordinator.dispatch(&Request::Stats), false);
    switch.set_down(true);
    assert_stats(coordinator.dispatch(&Request::Stats), true);
    // Metrics likewise keep answering: the dead shard simply has no
    // remote snapshot gathered into its slot.
    match coordinator.dispatch(&Request::Metrics) {
        Response::Metrics { metrics } => {
            assert!(metrics.shards[1].remote.is_none(), "dead shard: no scrape");
        }
        other => panic!("expected metrics, got {other:?}"),
    }
    // A lookup routed at the dead, *unreplicated* shard still fails —
    // degradation markers are for observability fan-outs, not a license
    // to answer queries wrong. Replication is what removes this error
    // (see tests/resilience.rs).
    let b = *d.grid().bounds();
    let right = Request::Lookup {
        x: b.min_x + 0.75 * b.width(),
        y: b.min_y + 0.5 * b.height(),
    };
    match coordinator.dispatch(&right) {
        Response::Error { error } => assert_eq!(error.code, fsi::ErrorCode::Internal),
        other => panic!("expected a routed failure, got {other:?}"),
    }
    switch.set_down(false);
    assert_stats(coordinator.dispatch(&Request::Stats), false);
    shard1.shutdown();
}
