//! Property-based verification of the paper's Theorems 1 and 2 against
//! real pipeline partitions (not just synthetic groupings).
//!
//! The properties that execute the full pipeline many times are marked
//! `#[ignore]` to keep the default `cargo test` fast; CI's `full-tests`
//! job (and `cargo test --release -- --ignored` locally) still runs them.

use fsi::{Method, Pipeline};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use fsi_fairness::bounds::{theorem1_sides, theorem2_sides};
use fsi_fairness::SpatialGroups;
use fsi_geo::Partition;
use proptest::prelude::*;

fn dataset(seed: u64) -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 300,
        grid_side: 16,
        seed,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

#[test]
#[ignore = "runs the full pipeline for all six methods; covered by CI's full-tests job"]
fn theorem1_holds_for_every_method_partition() {
    let d = dataset(3);
    for method in [
        Method::MedianKd,
        Method::FairKd,
        Method::IterativeFairKd,
        Method::GridReweight,
        Method::ZipCode,
        Method::FairQuad,
    ] {
        let run = Pipeline::on(&d).method(method).height(4).run().unwrap();
        let groups = SpatialGroups::from_partition(d.cells(), &run.partition).unwrap();
        let (e, overall) = theorem1_sides(&run.scores, &run.labels, &groups).unwrap();
        assert!(
            e >= overall - 1e-9,
            "{method:?}: ENCE {e} below overall mis-calibration {overall}"
        );
    }
}

#[test]
fn theorem2_holds_for_uniform_refinements_of_real_scores() {
    let d = dataset(4);
    let run = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(3)
        .run()
        .unwrap();
    // Uniform partitions at increasing granularity form a refinement chain.
    let granularities = [(1usize, 1usize), (2, 2), (4, 4), (8, 8), (16, 16)];
    let mut prev: Option<(Partition, f64)> = None;
    for (r, c) in granularities {
        let p = Partition::uniform(d.grid(), r, c).unwrap();
        let groups = SpatialGroups::from_partition(d.cells(), &p).unwrap();
        let e = fsi_fairness::ence(&run.scores, &run.labels, &groups).unwrap();
        if let Some((coarse, coarse_e)) = &prev {
            assert!(p.refines(coarse), "{r}x{c} must refine the previous level");
            assert!(
                *coarse_e <= e + 1e-9,
                "refinement decreased ENCE: {coarse_e} -> {e}"
            );
        }
        prev = Some((p, e));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 2 against arbitrary coarsenings of a real tree partition.
    #[test]
    #[ignore = "16 full pipeline runs; covered by CI's full-tests job"]
    fn theorem2_holds_for_random_coarsenings(seed in 0u64..500) {
        let d = dataset(5);
        let run = Pipeline::on(&d).method(Method::FairKd).height(4).run().unwrap();
        let fine = run.partition.clone();
        // Random grouping of fine regions into at most 4 buckets.
        let k = fine.num_regions();
        let grouping: Vec<u32> = (0..k).map(|i| {
            let x = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            ((x >> 33) % 4) as u32
        }).collect();
        let coarse = fine.coarsen(&grouping).unwrap();
        prop_assert!(fine.refines(&coarse));
        let fine_groups = SpatialGroups::from_partition(d.cells(), &fine).unwrap();
        let coarse_groups = SpatialGroups::from_partition(d.cells(), &coarse).unwrap();
        let (coarse_e, fine_e) =
            theorem2_sides(&run.scores, &run.labels, &coarse_groups, &fine_groups).unwrap();
        prop_assert!(coarse_e <= fine_e + 1e-9);
    }

    /// The fair split objective value reported by the splitter equals the
    /// brute-force Eq. 9 computation on the underlying individuals.
    #[test]
    fn split_objective_matches_brute_force(offset_seed in 0u64..100) {
        use fsi_core::{split, BuildConfig, CellStats, FairSplit};
        use fsi_geo::Axis;

        let d = dataset(6);
        let labels = d.threshold_labels("avg_act", 22.0).unwrap();
        let scores: Vec<f64> = d
            .locations()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let jitter = ((offset_seed.wrapping_add(i as u64) % 97) as f64) / 97.0;
                (0.25 + 0.5 * p.x * jitter).clamp(0.0, 1.0)
            })
            .collect();
        let stats = CellStats::new(
            d.grid(),
            &d.cell_populations(),
            &d.cell_sums(&scores).unwrap(),
            &d.cell_label_sums(&labels).unwrap(),
        )
        .unwrap();
        let region = d.grid().full_rect();
        let candidates = split::enumerate_candidates(
            &FairSplit, &stats, &region, Axis::Row, &BuildConfig::default()).unwrap();

        // Brute force Eq. 9 for a sampled candidate.
        let cand = &candidates[(offset_seed as usize) % candidates.len()];
        let k = cand.offset;
        let (mut l_res, mut r_res) = (0.0f64, 0.0f64);
        for (i, &cell) in d.cells().iter().enumerate() {
            let (row, _) = d.grid().row_col(cell);
            let resid = scores[i] - f64::from(u8::from(labels[i]));
            if row < k { l_res += resid; } else { r_res += resid; }
        }
        let expected = (l_res.abs() - r_res.abs()).abs();
        prop_assert!((cand.objective - expected).abs() < 1e-9,
            "offset {k}: splitter {} vs brute force {expected}", cand.objective);
    }
}
