//! Integration tests of the serving subsystem against the rest of the
//! workspace: differential parity of the compiled read path with the
//! reference `Grid::locate` + `KdTree::locate` + pipeline scoring, parity
//! of the `fsi::Pipeline` facade with the hand-compiled path, and a
//! concurrency test proving hot swaps are never observed torn.

use fsi::{FsiError, Method, Pipeline, PipelineSpec, TaskSpec};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use fsi_geo::{Grid, Point, Rect};
use fsi_serve::{FrozenIndex, IndexHandle, Rebuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn dataset() -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 300,
        grid_side: 16,
        seed: 23,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

/// Random points biased toward the hard cases: interior points, exact
/// cell-boundary coordinates and the map corners.
fn query_points(grid: &Grid, n: usize, seed: u64) -> Vec<Point> {
    let b = *grid.bounds();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n + 8);
    for i in 0..n {
        let (x, y) = match i % 4 {
            // Mostly uniform interior points…
            0 | 1 => (rng.random::<f64>(), rng.random::<f64>()),
            // …then points pinned to exact cell boundaries on one axis…
            2 => (
                rng.random_range(0..=grid.cols()) as f64 / grid.cols() as f64,
                rng.random::<f64>(),
            ),
            // …and on both axes (cell corners, incl. the outer edges).
            _ => (
                rng.random_range(0..=grid.cols()) as f64 / grid.cols() as f64,
                rng.random_range(0..=grid.rows()) as f64 / grid.rows() as f64,
            ),
        };
        points.push(Point::new(
            b.min_x + x * b.width(),
            b.min_y + y * b.height(),
        ));
    }
    points.extend([
        Point::new(b.min_x, b.min_y),
        Point::new(b.max_x, b.min_y),
        Point::new(b.min_x, b.max_y),
        Point::new(b.max_x, b.max_y),
    ]);
    points
}

/// The tentpole differential property: for every tree-backed method and
/// a sweep of heights, `FrozenIndex::lookup` agrees with the reference
/// path (`Grid::cell_of` → `KdTree::locate`) on thousands of points, and
/// its scores agree with the pipeline's per-leaf snapshot.
#[test]
fn lookup_matches_reference_path_across_methods_and_heights() {
    let d = dataset();
    let grid = d.grid();
    let points = query_points(grid, 2000, 7);
    for method in [Method::MedianKd, Method::FairKd, Method::IterativeFairKd] {
        for height in [1, 2, 4, 6] {
            let run = Pipeline::on(&d)
                .method(method)
                .height(height)
                .run()
                .unwrap();
            let tree = run.tree.as_ref().unwrap();
            let snapshot = run.model_snapshot().unwrap();
            let index = FrozenIndex::compile(tree, grid, &snapshot).unwrap();
            for p in &points {
                let d = index
                    .lookup(p)
                    .unwrap_or_else(|| panic!("{method:?} h{height}: {p:?} out of bounds"));
                let (row, col) = grid.cell_of(p).unwrap();
                let expected = tree.locate(row, col).unwrap();
                assert_eq!(
                    d.leaf_id, expected,
                    "{method:?} h{height}: leaf mismatch at {p:?}"
                );
                assert_eq!(d.group, expected);
                assert_eq!(d.raw_score, snapshot.raw_scores()[expected]);
                assert_eq!(d.calibrated_score, snapshot.calibrated(expected));
            }
        }
    }
}

/// The facade acceptance property: `fsi::Pipeline → .freeze()` and
/// `.serve()` produce decisions bit-identical to the hand-assembled
/// `FrozenIndex::compile(tree, grid, snapshot)` path, point for point.
#[test]
fn facade_freeze_and_serve_are_bit_identical_to_compile() {
    let d = dataset();
    let grid = d.grid();
    let points = query_points(grid, 2000, 19);
    for method in [Method::MedianKd, Method::FairKd, Method::IterativeFairKd] {
        for height in [2, 4, 6] {
            let run = Pipeline::on(&d)
                .task(TaskSpec::act())
                .method(method)
                .height(height)
                .run()
                .unwrap();
            // The PR 3 path: compile the tree + snapshot by hand.
            let reference = FrozenIndex::compile(
                run.tree.as_ref().unwrap(),
                grid,
                &run.model_snapshot().unwrap(),
            )
            .unwrap();
            // The facade paths.
            let frozen = run.freeze().unwrap();
            let serving = run.serve().unwrap();
            let served = serving.handle().load();
            assert_eq!(frozen.num_leaves(), reference.num_leaves());
            for p in &points {
                let expected = reference.lookup(p);
                assert_eq!(frozen.lookup(p), expected, "{method:?} h{height} at {p:?}");
                assert_eq!(served.lookup(p), expected, "{method:?} h{height} at {p:?}");
            }
        }
    }
}

/// The cells backend (used for non-tree partitions) must agree with the
/// tree backend wherever both exist.
#[test]
fn partition_backend_agrees_with_tree_backend() {
    let d = dataset();
    let grid = d.grid();
    let run = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(4)
        .run()
        .unwrap();
    let snapshot = run.model_snapshot().unwrap();
    let from_tree = FrozenIndex::compile(run.tree.as_ref().unwrap(), grid, &snapshot).unwrap();
    let from_cells = FrozenIndex::from_partition(run.partition(), grid, &snapshot).unwrap();
    assert_eq!(from_tree.backend_name(), "tree");
    assert_eq!(from_cells.backend_name(), "cells");
    for p in query_points(grid, 2000, 11) {
        assert_eq!(from_tree.lookup(&p), from_cells.lookup(&p), "at {p:?}");
    }
}

/// Batch lookups are exactly the concatenation of single lookups.
#[test]
fn batch_equals_singles_over_random_points() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(5)
        .run()
        .unwrap();
    let index = run.freeze().unwrap();
    let points = query_points(d.grid(), 3000, 13);
    let mut out = Vec::new();
    index.lookup_batch(&points, &mut out).unwrap();
    assert_eq!(out.len(), points.len());
    for (p, got) in points.iter().zip(&out) {
        assert_eq!(index.lookup(p).unwrap(), *got);
    }
}

/// Map-space range queries agree with `KdTree::range_query` over the
/// covered cell block.
#[test]
fn range_query_matches_kd_tree_on_random_rects() {
    let d = dataset();
    let grid = d.grid();
    let run = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(5)
        .run()
        .unwrap();
    let tree = run.tree.as_ref().unwrap();
    let index = run.freeze().unwrap();
    let mut rng = StdRng::seed_from_u64(29);
    for _ in 0..500 {
        let (x0, x1) = (rng.random::<f64>(), rng.random::<f64>());
        let (y0, y1) = (rng.random::<f64>(), rng.random::<f64>());
        let query =
            Rect::new(x0.min(x1), y0.min(y1), x0.max(x1) + 1e-9, y0.max(y1) + 1e-9).unwrap();
        // Reference: locate the two clipped corners with the reference
        // grid math, then ask the KD-tree for the covered cell block.
        let clamp = |p: Point| grid.bounds().clamp(p);
        let (r0, c0) = grid
            .cell_of(&clamp(Point::new(query.min_x, query.min_y)))
            .unwrap();
        let (r1, c1) = grid
            .cell_of(&clamp(Point::new(query.max_x, query.max_y)))
            .unwrap();
        let expected = tree.range_query(&fsi_geo::CellRect::new(r0, r1 + 1, c0, c1 + 1));
        assert_eq!(index.range_query(&query), expected, "query {query:?}");
    }
}

/// Readers hammering the handle during rapid hot swaps must only ever
/// observe one of the two published snapshots, never a mixture.
#[test]
fn hot_swap_is_never_observed_torn() {
    let grid = Grid::unit(16).unwrap();
    // Two distinguishable indexes: every decision of A carries
    // (raw 0.25, calibrated 0.50) over 4 leaves; every decision of B
    // carries (raw 0.75, calibrated 0.85) over 16 leaves.
    let make = |blocks: usize, raw: f64, offset: f64| {
        let partition = fsi_geo::Partition::uniform(&grid, blocks, blocks).unwrap();
        let n = partition.num_regions();
        let snapshot = fsi_pipeline::ModelSnapshot::new(
            vec![raw; n],
            vec![offset; n],
            (0..n as u32).collect(),
        )
        .unwrap();
        FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap()
    };
    let index_a = make(2, 0.25, 0.25);
    let index_b = make(4, 0.75, 0.10);
    let handle = IndexHandle::new(index_a.clone());
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for worker in 0..4 {
            let mut reader = handle.reader();
            let stop = Arc::clone(&stop);
            readers.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(worker);
                let mut observed = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let index = reader.snapshot();
                    for _ in 0..64 {
                        let p = Point::new(rng.random::<f64>(), rng.random::<f64>());
                        let d = index.lookup(&p).unwrap();
                        let consistent_a =
                            d.raw_score == 0.25 && d.calibrated_score == 0.5 && d.leaf_id < 4;
                        let consistent_b = d.raw_score == 0.75
                            && (d.calibrated_score - 0.85).abs() < 1e-12
                            && d.leaf_id < 16;
                        assert!(
                            consistent_a || consistent_b,
                            "torn decision observed: {d:?}"
                        );
                        observed += 1;
                    }
                }
                observed
            }));
        }
        // Swap back and forth while the readers run.
        for i in 0..200 {
            let fresh = if i % 2 == 0 {
                index_b.clone()
            } else {
                index_a.clone()
            };
            handle.publish(fresh);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers made no observations");
    });
    // 1 initial publish + 200 swaps.
    assert_eq!(handle.generation(), 201);
}

/// End-to-end through the facade: a background pipeline rebuild
/// hot-swaps under a live reader, which then serves the new snapshot.
#[test]
fn background_rebuild_swaps_under_a_live_reader() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap();
    let serving = run.serve().unwrap();
    let mut reader = serving.reader();
    let before = reader.snapshot().num_leaves();
    assert_eq!(before, 4);

    let rebuilder = Rebuilder::new(serving.handle().clone());
    let spec = PipelineSpec::new(TaskSpec::act(), Method::FairKd, 5);
    let join = rebuilder.spawn_rebuild(d.clone(), spec);
    // The reader keeps serving the old snapshot while training runs…
    let p = Point::new(0.25, 0.75);
    assert!(reader.snapshot().lookup(&p).is_some());
    let report = join.join().unwrap().unwrap();
    // …and observes the new one after the swap (a fair tree may stop a
    // little short of the full 2^h leaves when a region is unsplittable).
    assert!(
        report.num_leaves > before,
        "rebuild did not refine the index"
    );
    assert_eq!(reader.snapshot().num_leaves(), report.num_leaves);
    assert_eq!(serving.handle().generation(), report.generation);
}

/// Non-tree methods serve through the cells backend end-to-end, and a
/// live deployment can hot-rebuild across backend kinds.
#[test]
fn non_tree_methods_serve_and_rebuild() {
    let d = dataset();
    let spec = PipelineSpec::new(TaskSpec::act(), Method::GridReweight, 3);
    let (index, run) = fsi_serve::build_index(&d, &spec).unwrap();
    assert_eq!(index.backend_name(), "cells");
    assert_eq!(index.num_leaves(), run.partition.num_regions());
    // A tree-compiled deployment can rebuild into a non-tree spec: the
    // swap changes the backend, never the query surface.
    let serving = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap()
        .serve()
        .unwrap();
    assert_eq!(serving.handle().load().backend_name(), "tree");
    let report = serving.rebuild_with(&spec).unwrap();
    assert_eq!(report.generation, 2);
    assert_eq!(serving.handle().load().backend_name(), "cells");
    assert!(serving
        .reader()
        .snapshot()
        .lookup(&Point::new(0.5, 0.5))
        .is_some());
}

/// Invalid specs surface cleanly end-to-end as the unified error type.
#[test]
fn error_paths_are_reported() {
    let d = dataset();
    let bad = PipelineSpec::new(TaskSpec::act(), Method::FairKd, 0);
    let err = fsi_serve::build_index(&d, &bad).unwrap_err();
    assert!(err.to_string().contains("height"));
    // Through the facade the same failure arrives as one FsiError.
    let serving = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(2)
        .run()
        .unwrap()
        .serve()
        .unwrap();
    let err = serving.rebuild_with(&bad).unwrap_err();
    assert!(matches!(err, FsiError::InvalidSpec(_)), "{err:?}");
    assert!(err.to_string().contains("height"));
}
