//! End-to-end integration: dataset → encoding → training → index →
//! partition → fairness metrics, across every method and model.

use fsi::{Method, ModelKind, MultiPipeline, Pipeline, TaskSpec};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;
use fsi_fairness::{ence, SpatialGroups};

fn dataset() -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: 400,
        grid_side: 32,
        seed: 21,
        ..CityConfig::default()
    })
    .unwrap()
    .generate()
    .unwrap()
}

const ALL_METHODS: [Method; 6] = [
    Method::MedianKd,
    Method::FairKd,
    Method::IterativeFairKd,
    Method::GridReweight,
    Method::ZipCode,
    Method::FairQuad,
];

#[test]
fn every_method_and_model_completes() {
    let d = dataset();
    for model in ModelKind::all() {
        for method in ALL_METHODS {
            let run = Pipeline::on(&d)
                .task(TaskSpec::act())
                .method(method)
                .height(4)
                .model(model)
                .run()
                .unwrap_or_else(|e| panic!("{method:?}/{model:?}: {e}"));
            assert_eq!(run.scores.len(), d.len());
            assert!(run.scores.iter().all(|s| (0.0..=1.0).contains(s)));
            assert!(run.eval.full.ence.is_finite());
            assert!(run.eval.full.ence >= 0.0);
        }
    }
}

#[test]
fn reported_ence_matches_recomputation() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(4)
        .run()
        .unwrap();
    let groups = SpatialGroups::from_partition(d.cells(), &run.partition).unwrap();
    let recomputed = ence(&run.scores, &run.labels, &groups).unwrap();
    assert!(
        (recomputed - run.eval.full.ence).abs() < 1e-12,
        "pipeline ENCE {} != recomputed {}",
        run.eval.full.ence,
        recomputed
    );
}

#[test]
fn per_group_populations_sum_to_dataset() {
    let d = dataset();
    for method in ALL_METHODS {
        let run = Pipeline::on(&d).method(method).height(3).run().unwrap();
        let total: usize = run.eval.per_group.iter().map(|g| g.count).sum();
        assert_eq!(total, d.len(), "{method:?}");
    }
}

#[test]
fn partitions_cover_the_grid_exactly() {
    let d = dataset();
    for method in ALL_METHODS {
        let run = Pipeline::on(&d).method(method).height(4).run().unwrap();
        // Partition::from_assignment invariants: every cell assigned, ids
        // dense. Verify against the grid size and region count.
        assert_eq!(run.partition.assignments().len(), d.grid().len());
        let max = *run.partition.assignments().iter().max().unwrap() as usize;
        assert_eq!(max + 1, run.partition.num_regions(), "{method:?}");
    }
}

#[test]
fn tree_methods_respect_region_budget() {
    let d = dataset();
    for (method, height) in [
        (Method::MedianKd, 5),
        (Method::FairKd, 5),
        (Method::IterativeFairKd, 5),
        (Method::FairQuad, 5),
    ] {
        let run = Pipeline::on(&d)
            .method(method)
            .height(height)
            .run()
            .unwrap();
        // A KD-tree of height h has at most 2^h leaves; the quadtree runs
        // ceil(h/2) four-way levels, so its budget is 4^ceil(h/2).
        let budget = if method == Method::FairQuad {
            1usize << (2 * height.div_ceil(2))
        } else {
            1usize << height
        };
        assert!(
            run.eval.num_regions <= budget,
            "{method:?} produced {} regions for height {height}",
            run.eval.num_regions
        );
    }
}

#[test]
fn train_and_test_slices_partition_the_population() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::MedianKd)
        .height(3)
        .run()
        .unwrap();
    assert_eq!(run.eval.train.n + run.eval.test.n, run.eval.full.n);
    assert_eq!(run.split.train.len(), run.eval.train.n);
    assert_eq!(run.split.test.len(), run.eval.test.n);
}

#[test]
fn multi_objective_end_to_end() {
    let d = dataset();
    for method in [Method::FairKd, Method::MedianKd, Method::GridReweight] {
        let run = MultiPipeline::on(&d)
            .task(TaskSpec::act(), 0.5)
            .task(TaskSpec::employment(), 0.5)
            .method(method)
            .height(4)
            .run()
            .unwrap();
        assert_eq!(run.per_task.len(), 2);
        for (_, eval) in &run.per_task {
            assert!(eval.full.ence.is_finite());
            assert_eq!(eval.num_regions, run.partition.num_regions());
        }
    }
}

#[test]
fn zero_test_fraction_is_supported() {
    let d = dataset();
    let run = Pipeline::on(&d)
        .method(Method::FairKd)
        .height(3)
        .test_fraction(0.0)
        .run()
        .unwrap();
    assert_eq!(run.eval.test.n, 0);
    assert_eq!(run.eval.train.n, d.len());
}

#[test]
fn iterative_trainings_scale_with_height() {
    let d = dataset();
    let at_height = |h: usize| {
        Pipeline::on(&d)
            .method(Method::IterativeFairKd)
            .height(h)
            .run()
            .unwrap()
    };
    let h3 = at_height(3);
    let h5 = at_height(5);
    assert!(h5.trainings > h3.trainings);
    assert_eq!(h3.trainings, 4); // 3 levels + final
}
