//! Error type for the pipeline.
//!
//! [`PipelineError`] wraps every lower-layer error (`fsi-core`,
//! `fsi-data`, `fsi-fairness`, `fsi-geo`, `fsi-ml`) with source-chaining,
//! and is itself wrapped by the workspace-wide `fsi::FsiError` — the one
//! error type the `fsi` facade returns. Match on `FsiError` in
//! application code; match here only when working against this crate
//! directly.

use fsi_core::CoreError;
use fsi_data::DataError;
use fsi_fairness::FairnessError;
use fsi_geo::GeoError;
use fsi_ml::MlError;
use std::fmt;

/// Errors produced by end-to-end pipeline runs.
#[derive(Debug)]
pub enum PipelineError {
    /// Index construction failed.
    Core(CoreError),
    /// Dataset handling failed.
    Data(DataError),
    /// Fairness metric computation failed.
    Fairness(FairnessError),
    /// Geometry failed.
    Geo(GeoError),
    /// Model training/scoring failed.
    Ml(MlError),
    /// A run configuration value is invalid.
    InvalidConfig(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Core(e) => write!(f, "index construction: {e}"),
            PipelineError::Data(e) => write!(f, "data: {e}"),
            PipelineError::Fairness(e) => write!(f, "fairness: {e}"),
            PipelineError::Geo(e) => write!(f, "geometry: {e}"),
            PipelineError::Ml(e) => write!(f, "model: {e}"),
            PipelineError::InvalidConfig(msg) => write!(f, "invalid run config: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Core(e) => Some(e),
            PipelineError::Data(e) => Some(e),
            PipelineError::Fairness(e) => Some(e),
            PipelineError::Geo(e) => Some(e),
            PipelineError::Ml(e) => Some(e),
            PipelineError::InvalidConfig(_) => None,
        }
    }
}

impl From<CoreError> for PipelineError {
    fn from(e: CoreError) -> Self {
        PipelineError::Core(e)
    }
}
impl From<DataError> for PipelineError {
    fn from(e: DataError) -> Self {
        PipelineError::Data(e)
    }
}
impl From<FairnessError> for PipelineError {
    fn from(e: FairnessError) -> Self {
        PipelineError::Fairness(e)
    }
}
impl From<GeoError> for PipelineError {
    fn from(e: GeoError) -> Self {
        PipelineError::Geo(e)
    }
}
impl From<MlError> for PipelineError {
    fn from(e: MlError) -> Self {
        PipelineError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PipelineError = MlError::EmptyDataset.into();
        assert!(e.to_string().contains("model"));
        let e: PipelineError = GeoError::NoSeeds.into();
        assert!(e.to_string().contains("geometry"));
        let e = PipelineError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
