//! Declarative run specifications: one serde value per evaluation cell.
//!
//! A [`PipelineSpec`] (and its multi-task sibling [`MultiObjectiveSpec`])
//! captures *everything* a pipeline execution depends on — task, method,
//! height and the shared [`RunConfig`] — as one serde-round-trippable
//! value, so a whole experiment cell can be persisted, diffed and replayed
//! as a single JSON object. [`PipelineSpec::validate`] rejects malformed
//! cells (height 0, test fraction outside `[0, 1)`, reweighting block
//! overrides on non-reweighting methods, …) *before* any dataset work
//! runs; every build path in this crate calls it first.
//!
//! The `fsi` facade crate's `Pipeline` builder assembles these specs
//! fluently; [`crate::run_spec`] and [`crate::run_multi_spec`] execute
//! them.

use crate::error::PipelineError;
use crate::methods::Method;
use crate::runner::{RunConfig, TaskSpec};
use fsi_core::BuildConfig;
use serde::{Deserialize, Serialize};

impl TaskSpec {
    /// Validates the task definition: a named outcome column and a finite
    /// threshold.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.outcome.trim().is_empty() {
            return Err(PipelineError::InvalidConfig(
                "task outcome column name must not be empty".into(),
            ));
        }
        if !self.threshold.is_finite() {
            return Err(PipelineError::InvalidConfig(format!(
                "task threshold must be finite, got {}",
                self.threshold
            )));
        }
        Ok(())
    }
}

impl RunConfig {
    /// Validates field ranges shared by every run.
    ///
    /// `test_fraction` must lie in `[0, 1)`: `0` trains on the full
    /// population (supported for the paper's full-population metrics),
    /// while `1` or more would leave nothing to train on.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if !(self.test_fraction >= 0.0 && self.test_fraction < 1.0) {
            return Err(PipelineError::InvalidConfig(format!(
                "test_fraction must lie in [0, 1), got {}",
                self.test_fraction
            )));
        }
        Ok(())
    }

    /// The KD-tree construction config this run config implies at
    /// `height` — the single derivation point shared by both spec
    /// kinds.
    pub fn build_config(&self, height: usize) -> BuildConfig {
        BuildConfig {
            height,
            tie_break: self.tie_break,
            ..BuildConfig::default()
        }
    }
}

/// One fully specified `(task, method, height, config)` evaluation cell.
///
/// Serializes to a single JSON object (field names are stable), so specs
/// double as the persistence format for experiment cells:
///
/// ```
/// use fsi_pipeline::{Method, PipelineSpec, TaskSpec};
/// let spec = PipelineSpec::new(TaskSpec::act(), Method::FairKd, 6);
/// let json = serde_json::to_string(&spec).unwrap();
/// let back: PipelineSpec = serde_json::from_str(&json).unwrap();
/// assert_eq!(spec, back);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// The binary classification task.
    pub task: TaskSpec,
    /// The partitioning method.
    pub method: Method,
    /// Requested tree height (region budget `2^height`).
    pub height: usize,
    /// Optional `(rows, cols)` block-shape override for the
    /// [`Method::GridReweight`] baseline. `None` (default) derives the
    /// shape from `height` via [`crate::methods::reweight_blocks`]. An
    /// override reshapes the blocks but must keep the same `2^height`
    /// region budget (`rows * cols == 2^height`); setting it for any
    /// other method is rejected by [`PipelineSpec::validate`].
    pub reweight_blocks: Option<(usize, usize)>,
    /// Shared run configuration (model, encoding, seed, split, …).
    pub config: RunConfig,
}

impl PipelineSpec {
    /// Creates a spec with the default [`RunConfig`] and no reweighting
    /// override.
    pub fn new(task: TaskSpec, method: Method, height: usize) -> Self {
        Self {
            task,
            method,
            height,
            reweight_blocks: None,
            config: RunConfig::default(),
        }
    }

    /// The KD-tree construction config this spec implies.
    pub fn build_config(&self) -> BuildConfig {
        self.config.build_config(self.height)
    }

    /// Validates the whole cell before any work runs: the task, the run
    /// config, the implied [`BuildConfig`] (so `height == 0` or absurd
    /// heights fail here, not deep inside construction), and
    /// method-specific constraints.
    pub fn validate(&self) -> Result<(), PipelineError> {
        self.task.validate()?;
        self.config.validate()?;
        // Re-labelled as an invalid-config report so every spec-level
        // rejection presents uniformly (the facade maps these to
        // `InvalidSpec`), rather than as a construction failure.
        self.build_config()
            .validate()
            .map_err(|e| PipelineError::InvalidConfig(e.to_string()))?;
        if let Some((rows, cols)) = self.reweight_blocks {
            if !self.method.uses_reweighting() {
                return Err(PipelineError::InvalidConfig(format!(
                    "reweight_blocks is only meaningful for reweighting \
                     methods, not {:?}",
                    self.method
                )));
            }
            if rows == 0 || cols == 0 {
                return Err(PipelineError::InvalidConfig(format!(
                    "reweight_blocks must be positive in both dimensions, \
                     got {rows}x{cols}"
                )));
            }
            // The override reshapes the blocks; the region budget stays
            // the one `height` advertises, as for every other method.
            if rows.checked_mul(cols) != Some(1usize << self.height) {
                return Err(PipelineError::InvalidConfig(format!(
                    "reweight_blocks {rows}x{cols} yields {} regions but \
                     height {} budgets {}",
                    rows.saturating_mul(cols),
                    self.height,
                    1usize << self.height
                )));
            }
        }
        if self.method == Method::ZipCode && self.config.zip_seeds == 0 {
            return Err(PipelineError::InvalidConfig(
                "the zip-code baseline needs at least one Voronoi seed".into(),
            ));
        }
        Ok(())
    }
}

/// One multi-objective evaluation cell: `m` tasks blended by `alphas`
/// share a single districting (Figure 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiObjectiveSpec {
    /// The tasks sharing the districting (at least one).
    pub tasks: Vec<TaskSpec>,
    /// Task priorities, aligned with `tasks`; must be non-negative and
    /// sum to 1 (Eq. 12).
    pub alphas: Vec<f64>,
    /// The partitioning method (`FairKd` runs the Multi-Objective Fair
    /// KD-tree; `MedianKd` and `GridReweight` are the baselines).
    pub method: Method,
    /// Requested tree height.
    pub height: usize,
    /// Shared run configuration.
    pub config: RunConfig,
}

impl MultiObjectiveSpec {
    /// Creates a spec with the default [`RunConfig`].
    pub fn new(tasks: Vec<TaskSpec>, alphas: Vec<f64>, method: Method, height: usize) -> Self {
        Self {
            tasks,
            alphas,
            method,
            height,
            config: RunConfig::default(),
        }
    }

    /// The KD-tree construction config this spec implies.
    pub fn build_config(&self) -> BuildConfig {
        self.config.build_config(self.height)
    }

    /// Validates the whole cell: every task, the alphas (aligned,
    /// non-negative, summing to 1), the run config, the implied
    /// [`BuildConfig`], and that the method supports multi-objective
    /// construction at all.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.tasks.is_empty() {
            return Err(PipelineError::InvalidConfig(
                "at least one task is required".into(),
            ));
        }
        for task in &self.tasks {
            task.validate()?;
        }
        if self.alphas.len() != self.tasks.len() {
            return Err(PipelineError::InvalidConfig(format!(
                "{} alphas for {} tasks",
                self.alphas.len(),
                self.tasks.len()
            )));
        }
        if self.alphas.iter().any(|a| !(a.is_finite() && *a >= 0.0)) {
            return Err(PipelineError::InvalidConfig(
                "alphas must be non-negative and finite".into(),
            ));
        }
        let total: f64 = self.alphas.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(PipelineError::InvalidConfig(format!(
                "alphas must sum to 1 (Eq. 12), got {total}"
            )));
        }
        self.config.validate()?;
        self.build_config()
            .validate()
            .map_err(|e| PipelineError::InvalidConfig(e.to_string()))?;
        match self.method {
            Method::FairKd | Method::MedianKd | Method::GridReweight => Ok(()),
            other => Err(PipelineError::InvalidConfig(format!(
                "method {other:?} does not support multi-objective runs"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::ModelKind;

    fn spec() -> PipelineSpec {
        PipelineSpec::new(TaskSpec::act(), Method::FairKd, 6)
    }

    #[test]
    fn default_specs_are_valid() {
        assert!(spec().validate().is_ok());
        let multi = MultiObjectiveSpec::new(
            vec![TaskSpec::act(), TaskSpec::employment()],
            vec![0.5, 0.5],
            Method::FairKd,
            6,
        );
        assert!(multi.validate().is_ok());
    }

    #[test]
    fn height_zero_is_rejected_before_any_work() {
        let s = PipelineSpec {
            height: 0,
            ..spec()
        };
        assert!(s.validate().is_err());
        let s = PipelineSpec {
            height: 33,
            ..spec()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn test_fraction_outside_unit_interval_is_rejected() {
        for bad in [1.0, 1.5, -0.1, f64::NAN] {
            let s = PipelineSpec {
                config: RunConfig {
                    test_fraction: bad,
                    ..RunConfig::default()
                },
                ..spec()
            };
            assert!(s.validate().is_err(), "test_fraction {bad} must fail");
        }
        // Zero is explicitly supported: train on the full population.
        let s = PipelineSpec {
            config: RunConfig {
                test_fraction: 0.0,
                ..RunConfig::default()
            },
            ..spec()
        };
        assert!(s.validate().is_ok());
    }

    #[test]
    fn reweight_blocks_rejected_on_non_reweighting_methods() {
        for method in [
            Method::MedianKd,
            Method::FairKd,
            Method::IterativeFairKd,
            Method::ZipCode,
            Method::FairQuad,
        ] {
            let s = PipelineSpec {
                method,
                reweight_blocks: Some((4, 4)),
                ..spec()
            };
            assert!(s.validate().is_err(), "{method:?} must reject the override");
        }
        let s = PipelineSpec {
            method: Method::GridReweight,
            height: 4,
            reweight_blocks: Some((4, 4)),
            ..spec()
        };
        assert!(s.validate().is_ok());
        let s = PipelineSpec {
            method: Method::GridReweight,
            height: 4,
            reweight_blocks: Some((0, 4)),
            ..spec()
        };
        assert!(s.validate().is_err());
        // The override may reshape but not change the 2^height budget.
        let s = PipelineSpec {
            method: Method::GridReweight,
            height: 4,
            reweight_blocks: Some((3, 5)),
            ..spec()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn empty_outcome_and_non_finite_threshold_are_rejected() {
        let s = PipelineSpec {
            task: TaskSpec {
                outcome: "  ".into(),
                threshold: 22.0,
            },
            ..spec()
        };
        assert!(s.validate().is_err());
        let s = PipelineSpec {
            task: TaskSpec {
                outcome: "avg_act".into(),
                threshold: f64::INFINITY,
            },
            ..spec()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn zip_code_requires_seeds() {
        let s = PipelineSpec {
            method: Method::ZipCode,
            config: RunConfig {
                zip_seeds: 0,
                ..RunConfig::default()
            },
            ..spec()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn multi_objective_rejections() {
        let base = MultiObjectiveSpec::new(
            vec![TaskSpec::act(), TaskSpec::employment()],
            vec![0.5, 0.5],
            Method::FairKd,
            4,
        );
        let s = MultiObjectiveSpec {
            tasks: vec![],
            alphas: vec![],
            ..base.clone()
        };
        assert!(s.validate().is_err());
        let s = MultiObjectiveSpec {
            alphas: vec![0.9, 0.9],
            ..base.clone()
        };
        assert!(s.validate().is_err());
        let s = MultiObjectiveSpec {
            alphas: vec![1.0],
            ..base.clone()
        };
        assert!(s.validate().is_err());
        let s = MultiObjectiveSpec {
            alphas: vec![-0.5, 1.5],
            ..base.clone()
        };
        assert!(s.validate().is_err());
        let s = MultiObjectiveSpec {
            method: Method::ZipCode,
            ..base.clone()
        };
        assert!(s.validate().is_err());
        let s = MultiObjectiveSpec {
            height: 0,
            ..base.clone()
        };
        assert!(s.validate().is_err());
        assert!(base.validate().is_ok());
    }

    #[test]
    fn specs_round_trip_through_json() {
        let s = PipelineSpec {
            task: TaskSpec::employment(),
            method: Method::GridReweight,
            height: 5,
            reweight_blocks: Some((8, 4)),
            config: RunConfig {
                model: ModelKind::DecisionTree,
                seed: 99,
                test_fraction: 0.25,
                ..RunConfig::default()
            },
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: PipelineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);

        let m = MultiObjectiveSpec::new(
            vec![TaskSpec::act(), TaskSpec::employment()],
            vec![0.25, 0.75],
            Method::MedianKd,
            7,
        );
        let json = serde_json::to_string(&m).unwrap();
        let back: MultiObjectiveSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
