//! One-call execution of a `(dataset, task, method, height)` evaluation
//! cell.
//!
//! The primary entry points are [`run_spec`] and [`run_multi_spec`],
//! which execute a validated [`PipelineSpec`] / [`MultiObjectiveSpec`].
//! The historical free functions [`run_method`] and
//! [`run_multi_objective`] survive as deprecated shims over the spec
//! path; new code should go through the `fsi` facade crate's `Pipeline`
//! builder, which assembles specs fluently.

use crate::error::PipelineError;
use crate::eval::EvalReport;
use crate::methods::{per_cell_partition, reweight_blocks, Method};
use crate::retrainer::{mask_from_indices, training_cell_stats, MlRetrainer};
use crate::spec::{MultiObjectiveSpec, PipelineSpec};
use crate::trainer::{train_and_score, ModelKind};
use fsi_core::multiobjective::{aggregate_tasks, TaskOutput};
use fsi_core::{
    build_kd_tree, CellStats, FairQuadtree, FairSplit, IterativeBuilder, KdTree, MedianSplit,
    MultiObjectiveSplit, QuadConfig, QuadSplitRule, TieBreak,
};
use fsi_data::synth::edgap::sample_zip_seeds;
use fsi_data::{build_design_matrix, LocationEncoding, SpatialDataset};
use fsi_fairness::reweigh::reweigh;
use fsi_fairness::SpatialGroups;
use fsi_geo::{voronoi::voronoi_partition, Partition};
use fsi_ml::split::{train_test_split, TrainTestSplit};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A binary classification task: threshold an outcome column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Outcome column name (e.g. `avg_act`).
    pub outcome: String,
    /// Label threshold: `label = value >= threshold`.
    pub threshold: f64,
}

impl TaskSpec {
    /// The paper's primary task: ACT ≥ 22.
    pub fn act() -> Self {
        Self {
            outcome: "avg_act".into(),
            threshold: 22.0,
        }
    }

    /// The paper's secondary task: family employment ≥ 10 %.
    pub fn employment() -> Self {
        Self {
            outcome: "family_employment_pct".into(),
            threshold: 10.0,
        }
    }
}

/// Shared run configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Classifier family.
    pub model: ModelKind,
    /// Neighborhood encoding fed to the classifier.
    pub encoding: LocationEncoding,
    /// Seed for the train/test split and zip-code seeds.
    pub seed: u64,
    /// Held-out fraction (the paper reports train and test calibration).
    pub test_fraction: f64,
    /// Number of Voronoi seeds for the zip-code baseline.
    pub zip_seeds: usize,
    /// Tie-break rule for split plateaus.
    pub tie_break: TieBreak,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Logistic,
            encoding: LocationEncoding::CentroidXY,
            seed: 7,
            test_fraction: 0.3,
            zip_seeds: 60,
            tie_break: TieBreak::PreferBalanced,
        }
    }
}

/// Result of one `(method, height)` run.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// The method executed.
    pub method: Method,
    /// Requested tree height (region budget `2^h`).
    pub height: usize,
    /// The generated neighborhoods.
    pub partition: Partition,
    /// The KD-tree behind the partition, for methods that build one
    /// (`MedianKd`, `FairKd`, `IterativeFairKd`); `None` for the
    /// reweighting/Voronoi/quadtree baselines. Online serving
    /// (`fsi-serve`) compiles this into a `FrozenIndex`.
    pub tree: Option<KdTree>,
    /// Final-model confidence scores for every individual.
    pub scores: Vec<f64>,
    /// Task labels for every individual.
    pub labels: Vec<bool>,
    /// The train/test split used.
    pub split: TrainTestSplit,
    /// Metrics.
    pub eval: EvalReport,
    /// Normalized feature importances over base features plus one
    /// aggregated "neighborhood" entry (`None` for naive Bayes).
    pub importances: Option<Vec<f64>>,
    /// Names aligned with `importances`.
    pub importance_names: Vec<String>,
    /// Wall-clock spent constructing the partition (including any initial
    /// or per-level trainings the method requires).
    pub build_time: Duration,
    /// Total model trainings performed (construction + final).
    pub trainings: usize,
}

/// Counts-only statistics (median splits ignore scores and labels).
fn count_stats(dataset: &SpatialDataset, train_mask: &[bool]) -> Result<CellStats, PipelineError> {
    let zeros = vec![0.0; dataset.len()];
    let labels = vec![false; dataset.len()];
    training_cell_stats(dataset, &zeros, &labels, train_mask)
}

/// Runs the initial training of Algorithm 1 step 1 (base-grid districting)
/// and returns aggregates for fair splitting.
fn initial_fair_stats(
    dataset: &SpatialDataset,
    labels: &[bool],
    split: &TrainTestSplit,
    train_mask: &[bool],
    config: &RunConfig,
) -> Result<CellStats, PipelineError> {
    let base = per_cell_partition(dataset.grid());
    let design = build_design_matrix(dataset, &base, config.encoding)?;
    let outcome = train_and_score(config.model, &design.matrix, labels, &split.train, None)?;
    training_cell_stats(dataset, &outcome.scores, labels, train_mask)
}

/// Builds the partition for the spec's `(method, height)`. Returns the
/// partition, the number of model trainings construction needed, and the
/// KD-tree for tree-backed methods.
fn build_partition(
    dataset: &SpatialDataset,
    labels: &[bool],
    split: &TrainTestSplit,
    spec: &PipelineSpec,
) -> Result<(Partition, usize, Option<KdTree>), PipelineError> {
    let grid = dataset.grid();
    let config = &spec.config;
    let train_mask = mask_from_indices(dataset.len(), &split.train);
    match spec.method {
        Method::MedianKd => {
            let stats = count_stats(dataset, &train_mask)?;
            let tree = build_kd_tree(&stats, &MedianSplit, &spec.build_config())?;
            Ok((tree.partition(grid)?, 0, Some(tree)))
        }
        Method::FairKd => {
            let stats = initial_fair_stats(dataset, labels, split, &train_mask, config)?;
            let tree = build_kd_tree(&stats, &FairSplit, &spec.build_config())?;
            Ok((tree.partition(grid)?, 1, Some(tree)))
        }
        Method::IterativeFairKd => {
            let mut rt =
                MlRetrainer::new(dataset, labels, config.model, config.encoding, &split.train);
            let tree =
                IterativeBuilder::new(spec.build_config())?.build(grid, &FairSplit, &mut rt)?;
            let trainings = rt.trainings;
            Ok((tree.partition(grid)?, trainings, Some(tree)))
        }
        Method::GridReweight => {
            let (rows, cols) = spec
                .reweight_blocks
                .unwrap_or_else(|| reweight_blocks(spec.height));
            Ok((Partition::uniform(grid, rows, cols)?, 0, None))
        }
        Method::ZipCode => {
            let seeds = sample_zip_seeds(dataset, config.zip_seeds, config.seed);
            Ok((voronoi_partition(grid, &seeds)?, 0, None))
        }
        Method::FairQuad => {
            let stats = initial_fair_stats(dataset, labels, split, &train_mask, config)?;
            let quad = FairQuadtree::build(
                &stats,
                &QuadConfig {
                    levels: spec.height.div_ceil(2),
                    rule: QuadSplitRule::Fair,
                    ..QuadConfig::default()
                },
            )?;
            Ok((quad.partition(grid)?, 1, None))
        }
    }
}

fn normalize_importances(values: Vec<f64>) -> Vec<f64> {
    let total: f64 = values.iter().sum();
    if total > 0.0 {
        values.into_iter().map(|v| v / total).collect()
    } else {
        values
    }
}

/// Executes one evaluation cell described by a validated
/// [`PipelineSpec`]: construct the partition, re-district, train the
/// final model, and measure.
///
/// Calls [`PipelineSpec::validate`] first, so malformed cells fail
/// before any dataset work runs.
pub fn run_spec(dataset: &SpatialDataset, spec: &PipelineSpec) -> Result<MethodRun, PipelineError> {
    spec.validate()?;
    let config = &spec.config;
    if dataset.is_empty() {
        return Err(PipelineError::Ml(fsi_ml::MlError::EmptyDataset));
    }
    let labels = dataset.threshold_labels(&spec.task.outcome, spec.task.threshold)?;
    let split = train_test_split(dataset.len(), config.test_fraction, config.seed)
        .map_err(PipelineError::Ml)?;

    let started = Instant::now();
    let (partition, build_trainings, tree) = build_partition(dataset, &labels, &split, spec)?;
    let build_time = started.elapsed();

    // Step 3 of Algorithm 1: update each individual's neighborhood and
    // train the (final) classifier on the re-districted data.
    let design = build_design_matrix(dataset, &partition, config.encoding)?;
    let groups = SpatialGroups::from_partition(dataset.cells(), &partition)
        .map_err(PipelineError::Fairness)?;
    let weights = if spec.method.uses_reweighting() {
        let train_assignment: Vec<usize> =
            split.train.iter().map(|&i| groups.group_of(i)).collect();
        let train_groups = SpatialGroups::new(train_assignment, groups.num_groups())
            .map_err(PipelineError::Fairness)?;
        let train_labels: Vec<bool> = split.train.iter().map(|&i| labels[i]).collect();
        Some(
            reweigh(&train_labels, &train_groups)
                .map_err(PipelineError::Fairness)?
                .weights,
        )
    } else {
        None
    };
    let outcome = train_and_score(
        config.model,
        &design.matrix,
        &labels,
        &split.train,
        weights.as_deref(),
    )?;
    let eval = EvalReport::compute(&outcome.scores, &labels, &groups, &split)?;

    let mut importance_names = dataset.feature_names().to_vec();
    importance_names.push("neighborhood".into());
    let importances = match outcome.importances {
        Some(per_column) => Some(normalize_importances(
            design.aggregate_location(&per_column)?,
        )),
        None => None,
    };

    Ok(MethodRun {
        method: spec.method,
        height: spec.height,
        partition,
        tree,
        scores: outcome.scores,
        labels,
        split,
        eval,
        importances,
        importance_names,
        build_time,
        trainings: build_trainings + 1,
    })
}

/// Executes one evaluation cell from loose arguments.
///
/// Thin shim over [`run_spec`]; kept so historical call sites diff
/// cleanly. New code should build a [`PipelineSpec`] — most conveniently
/// through the `fsi` facade crate's `Pipeline` builder.
#[deprecated(
    since = "0.1.0",
    note = "use `run_spec` or the `fsi::Pipeline` builder"
)]
pub fn run_method(
    dataset: &SpatialDataset,
    task: &TaskSpec,
    method: Method,
    height: usize,
    config: &RunConfig,
) -> Result<MethodRun, PipelineError> {
    run_spec(
        dataset,
        &PipelineSpec {
            task: task.clone(),
            method,
            height,
            reweight_blocks: None,
            config: config.clone(),
        },
    )
}

/// Result of a multi-objective run: one shared partition, one evaluation
/// per task.
#[derive(Debug, Clone)]
pub struct MultiObjectiveRun {
    /// The method executed.
    pub method: Method,
    /// Requested tree height.
    pub height: usize,
    /// The single non-overlapping districting shared by all tasks.
    pub partition: Partition,
    /// Per-task evaluation, aligned with the input task order.
    pub per_task: Vec<(TaskSpec, EvalReport)>,
    /// Wall-clock spent constructing the partition.
    pub build_time: Duration,
    /// Total model trainings performed.
    pub trainings: usize,
}

/// Executes the Figure-10 experiment described by a validated
/// [`MultiObjectiveSpec`]: build one districting that serves `m` tasks
/// simultaneously (Multi-Objective Fair KD-tree for [`Method::FairKd`];
/// Median KD-tree and Grid re-weighting as the baselines), then evaluate
/// ENCE per task.
///
/// Calls [`MultiObjectiveSpec::validate`] first, so malformed cells fail
/// before any dataset work runs.
pub fn run_multi_spec(
    dataset: &SpatialDataset,
    spec: &MultiObjectiveSpec,
) -> Result<MultiObjectiveRun, PipelineError> {
    spec.validate()?;
    let (tasks, alphas, config) = (&spec.tasks, &spec.alphas, &spec.config);
    let labels_per_task: Vec<Vec<bool>> = tasks
        .iter()
        .map(|t| dataset.threshold_labels(&t.outcome, t.threshold))
        .collect::<Result<_, _>>()?;
    let split = train_test_split(dataset.len(), config.test_fraction, config.seed)
        .map_err(PipelineError::Ml)?;
    let train_mask = mask_from_indices(dataset.len(), &split.train);
    let grid = dataset.grid();

    let started = Instant::now();
    let (partition, build_trainings) = match spec.method {
        Method::FairKd => {
            // Eq. 11–12: one initial classifier per task over the base grid,
            // residual vectors blended by alpha.
            let base = per_cell_partition(grid);
            let design = build_design_matrix(dataset, &base, config.encoding)?;
            let mut scores_per_task = Vec::with_capacity(tasks.len());
            for labels in &labels_per_task {
                let outcome =
                    train_and_score(config.model, &design.matrix, labels, &split.train, None)?;
                scores_per_task.push(outcome.scores);
            }
            let outputs: Vec<TaskOutput<'_>> = scores_per_task
                .iter()
                .zip(&labels_per_task)
                .map(|(s, y)| TaskOutput {
                    scores: s,
                    labels: y,
                })
                .collect();
            let v_tot = aggregate_tasks(&outputs, alphas)?;
            let masked_v: Vec<f64> = v_tot
                .iter()
                .zip(&train_mask)
                .map(|(&v, &m)| if m { v } else { 0.0 })
                .collect();
            let counts: Vec<f64> = train_mask.iter().map(|&m| f64::from(u8::from(m))).collect();
            let zeros = vec![0.0; grid.len()];
            let stats = CellStats::new(grid, &dataset.cell_sums(&counts)?, &zeros, &zeros)?
                .with_aux(grid, &dataset.cell_sums(&masked_v)?)?;
            let tree = build_kd_tree(&stats, &MultiObjectiveSplit, &spec.build_config())?;
            (tree.partition(grid)?, tasks.len())
        }
        Method::MedianKd => {
            let stats = count_stats(dataset, &train_mask)?;
            let tree = build_kd_tree(&stats, &MedianSplit, &spec.build_config())?;
            (tree.partition(grid)?, 0)
        }
        Method::GridReweight => {
            let (rows, cols) = reweight_blocks(spec.height);
            (Partition::uniform(grid, rows, cols)?, 0)
        }
        other => {
            return Err(PipelineError::InvalidConfig(format!(
                "method {:?} does not support multi-objective runs",
                other
            )));
        }
    };
    let build_time = started.elapsed();

    let design = build_design_matrix(dataset, &partition, config.encoding)?;
    let groups = SpatialGroups::from_partition(dataset.cells(), &partition)
        .map_err(PipelineError::Fairness)?;
    let mut per_task = Vec::with_capacity(tasks.len());
    let mut trainings = build_trainings;
    for (task, labels) in tasks.iter().zip(&labels_per_task) {
        let weights = if spec.method.uses_reweighting() {
            let train_assignment: Vec<usize> =
                split.train.iter().map(|&i| groups.group_of(i)).collect();
            let train_groups = SpatialGroups::new(train_assignment, groups.num_groups())
                .map_err(PipelineError::Fairness)?;
            let train_labels: Vec<bool> = split.train.iter().map(|&i| labels[i]).collect();
            Some(
                reweigh(&train_labels, &train_groups)
                    .map_err(PipelineError::Fairness)?
                    .weights,
            )
        } else {
            None
        };
        let outcome = train_and_score(
            config.model,
            &design.matrix,
            labels,
            &split.train,
            weights.as_deref(),
        )?;
        trainings += 1;
        per_task.push((
            task.clone(),
            EvalReport::compute(&outcome.scores, labels, &groups, &split)?,
        ));
    }

    Ok(MultiObjectiveRun {
        method: spec.method,
        height: spec.height,
        partition,
        per_task,
        build_time,
        trainings,
    })
}

/// Executes a multi-objective cell from loose arguments.
///
/// Thin shim over [`run_multi_spec`]; kept so historical call sites diff
/// cleanly. New code should build a [`MultiObjectiveSpec`] — most
/// conveniently through the `fsi` facade crate's `MultiPipeline` builder.
#[deprecated(
    since = "0.1.0",
    note = "use `run_multi_spec` or the `fsi::MultiPipeline` builder"
)]
pub fn run_multi_objective(
    dataset: &SpatialDataset,
    tasks: &[TaskSpec],
    alphas: &[f64],
    method: Method,
    height: usize,
    config: &RunConfig,
) -> Result<MultiObjectiveRun, PipelineError> {
    run_multi_spec(
        dataset,
        &MultiObjectiveSpec {
            tasks: tasks.to_vec(),
            alphas: alphas.to_vec(),
            method,
            height,
            config: config.clone(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_data::synth::city::{CityConfig, CityGenerator};

    fn small_dataset() -> SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 250,
            grid_side: 16,
            seed: 11,
            ..CityConfig::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    fn cell(method: Method, height: usize) -> PipelineSpec {
        PipelineSpec::new(TaskSpec::act(), method, height)
    }

    fn multi_cell(method: Method, height: usize) -> MultiObjectiveSpec {
        MultiObjectiveSpec::new(
            vec![TaskSpec::act(), TaskSpec::employment()],
            vec![0.5, 0.5],
            method,
            height,
        )
    }

    #[test]
    fn every_method_produces_a_complete_run() {
        let d = small_dataset();
        for method in [
            Method::MedianKd,
            Method::FairKd,
            Method::IterativeFairKd,
            Method::GridReweight,
            Method::ZipCode,
            Method::FairQuad,
        ] {
            let run = run_spec(&d, &cell(method, 3)).unwrap();
            assert_eq!(run.scores.len(), d.len(), "{method:?}");
            assert_eq!(run.labels.len(), d.len());
            assert!(run.eval.full.n == d.len());
            assert!(run.eval.num_regions >= 1);
            assert!(run.trainings >= 1);
            // Partition covers the grid.
            assert_eq!(run.partition.assignments().len(), d.grid().len());
        }
    }

    #[test]
    fn tree_backed_methods_expose_their_tree() {
        let d = small_dataset();
        for method in [Method::MedianKd, Method::FairKd, Method::IterativeFairKd] {
            let run = run_spec(&d, &cell(method, 3)).unwrap();
            let tree = run.tree.as_ref().unwrap_or_else(|| panic!("{method:?}"));
            assert_eq!(tree.num_leaves(), run.partition.num_regions());
            // The exported tree is the partition's tree.
            assert_eq!(tree.partition(d.grid()).unwrap(), run.partition);
        }
        for method in [Method::GridReweight, Method::ZipCode, Method::FairQuad] {
            let run = run_spec(&d, &cell(method, 3)).unwrap();
            assert!(run.tree.is_none(), "{method:?}");
        }
    }

    #[test]
    fn training_counts_match_theorems() {
        let d = small_dataset();
        // Fair KD-tree: 1 initial + 1 final (Theorem 3: one O(h) term).
        let fair = run_spec(&d, &cell(Method::FairKd, 3)).unwrap();
        assert_eq!(fair.trainings, 2);
        // Iterative: one per level + final (Theorem 4).
        let iter = run_spec(&d, &cell(Method::IterativeFairKd, 3)).unwrap();
        assert_eq!(iter.trainings, 4);
        // Median: construction is model-free.
        let median = run_spec(&d, &cell(Method::MedianKd, 3)).unwrap();
        assert_eq!(median.trainings, 1);
    }

    #[test]
    fn region_budgets_match_heights() {
        let d = small_dataset();
        let run = run_spec(&d, &cell(Method::MedianKd, 4)).unwrap();
        assert_eq!(run.eval.num_regions, 16);
        let run = run_spec(&d, &cell(Method::GridReweight, 4)).unwrap();
        assert_eq!(run.eval.num_regions, 16);
    }

    #[test]
    fn reweight_block_override_changes_the_grid() {
        let d = small_dataset();
        let spec = PipelineSpec {
            reweight_blocks: Some((2, 8)),
            ..cell(Method::GridReweight, 4)
        };
        let run = run_spec(&d, &spec).unwrap();
        assert_eq!(run.eval.num_regions, 16);
        // Same region count, different block shape than the derived 4x4.
        let derived = run_spec(&d, &cell(Method::GridReweight, 4)).unwrap();
        assert_ne!(run.partition, derived.partition);
    }

    #[test]
    fn invalid_specs_fail_before_any_work() {
        let d = small_dataset();
        assert!(run_spec(&d, &cell(Method::FairKd, 0)).is_err());
        let spec = PipelineSpec {
            reweight_blocks: Some((4, 4)),
            ..cell(Method::FairKd, 3)
        };
        assert!(run_spec(&d, &spec).is_err());
        let spec = PipelineSpec {
            config: RunConfig {
                test_fraction: 1.0,
                ..RunConfig::default()
            },
            ..cell(Method::FairKd, 3)
        };
        assert!(run_spec(&d, &spec).is_err());
    }

    #[test]
    fn importances_cover_features_plus_neighborhood() {
        let d = small_dataset();
        let run = run_spec(&d, &cell(Method::FairKd, 3)).unwrap();
        let imp = run.importances.unwrap();
        assert_eq!(imp.len(), d.feature_names().len() + 1);
        assert_eq!(run.importance_names.last().unwrap(), "neighborhood");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Naive Bayes exposes no importances.
        let spec = PipelineSpec {
            config: RunConfig {
                model: ModelKind::NaiveBayes,
                ..RunConfig::default()
            },
            ..cell(Method::FairKd, 3)
        };
        let run = run_spec(&d, &spec).unwrap();
        assert!(run.importances.is_none());
    }

    #[test]
    fn multi_objective_shares_one_partition() {
        let d = small_dataset();
        let run = run_multi_spec(&d, &multi_cell(Method::FairKd, 3)).unwrap();
        assert_eq!(run.per_task.len(), 2);
        // Two initial trainings + two final trainings.
        assert_eq!(run.trainings, 4);
        for (task, eval) in &run.per_task {
            assert!(!task.outcome.is_empty());
            assert_eq!(eval.num_regions, run.partition.num_regions());
        }
    }

    #[test]
    fn multi_objective_rejects_unsupported_methods() {
        let d = small_dataset();
        let spec = MultiObjectiveSpec {
            tasks: vec![TaskSpec::act()],
            alphas: vec![1.0],
            ..multi_cell(Method::ZipCode, 3)
        };
        assert!(run_multi_spec(&d, &spec).is_err());
        let spec = MultiObjectiveSpec {
            tasks: vec![],
            alphas: vec![],
            ..multi_cell(Method::FairKd, 3)
        };
        assert!(run_multi_spec(&d, &spec).is_err());
    }

    #[test]
    fn bad_alphas_are_rejected() {
        let d = small_dataset();
        let spec = MultiObjectiveSpec {
            alphas: vec![0.9, 0.9],
            ..multi_cell(Method::FairKd, 3)
        };
        assert!(run_multi_spec(&d, &spec).is_err());
    }

    #[test]
    fn unknown_outcome_errors() {
        let d = small_dataset();
        let spec = PipelineSpec {
            task: TaskSpec {
                outcome: "nope".into(),
                threshold: 0.0,
            },
            ..cell(Method::MedianKd, 3)
        };
        assert!(run_spec(&d, &spec).is_err());
    }

    #[test]
    fn determinism_end_to_end() {
        let d = small_dataset();
        let a = run_spec(&d, &cell(Method::IterativeFairKd, 3)).unwrap();
        let b = run_spec(&d, &cell(Method::IterativeFairKd, 3)).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.eval.full.ence, b.eval.full.ence);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_spec_path() {
        let d = small_dataset();
        let config = RunConfig::default();
        let via_shim = run_method(&d, &TaskSpec::act(), Method::FairKd, 3, &config).unwrap();
        let via_spec = run_spec(&d, &cell(Method::FairKd, 3)).unwrap();
        assert_eq!(via_shim.scores, via_spec.scores);
        assert_eq!(via_shim.partition, via_spec.partition);

        let tasks = [TaskSpec::act(), TaskSpec::employment()];
        let mo_shim =
            run_multi_objective(&d, &tasks, &[0.5, 0.5], Method::FairKd, 3, &config).unwrap();
        let mo_spec = run_multi_spec(&d, &multi_cell(Method::FairKd, 3)).unwrap();
        assert_eq!(mo_shim.partition, mo_spec.partition);
    }
}
