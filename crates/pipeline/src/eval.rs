//! Evaluation reports for a finished run.

use crate::error::PipelineError;
use fsi_fairness::{ence, group_calibration, GroupCalibration, SpatialGroups};
use fsi_ml::calibration::{mean_score, positive_fraction};
use fsi_ml::metrics::accuracy;
use fsi_ml::split::TrainTestSplit;
use serde::{Deserialize, Serialize};

/// Metrics over one slice (full / train / test) of the population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceMetrics {
    /// Number of individuals in the slice.
    pub n: usize,
    /// ENCE over the slice (Definition 3).
    pub ence: f64,
    /// Overall mis-calibration `|e − o|` of the slice.
    pub miscalibration: f64,
    /// Calibration ratio `e / o`; `None` when the slice has no positives.
    pub calibration_ratio: Option<f64>,
    /// Accuracy at threshold 0.5.
    pub accuracy: f64,
}

impl SliceMetrics {
    fn empty() -> Self {
        Self {
            n: 0,
            ence: 0.0,
            miscalibration: 0.0,
            calibration_ratio: None,
            accuracy: 0.0,
        }
    }
}

/// The evaluation of one `(method, height)` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Number of regions of the partition (including unpopulated ones).
    pub num_regions: usize,
    /// Regions with at least one resident individual.
    pub occupied_regions: usize,
    /// Metrics over all individuals.
    pub full: SliceMetrics,
    /// Metrics over the training slice.
    pub train: SliceMetrics,
    /// Metrics over the held-out slice (zeroed when there is none).
    pub test: SliceMetrics,
    /// Per-neighborhood calibration over all individuals.
    pub per_group: Vec<GroupCalibration>,
}

fn slice_metrics(
    scores: &[f64],
    labels: &[bool],
    groups: &SpatialGroups,
    indices: Option<&[usize]>,
) -> Result<SliceMetrics, PipelineError> {
    let (s, y, g): (Vec<f64>, Vec<bool>, Vec<usize>) = match indices {
        None => (
            scores.to_vec(),
            labels.to_vec(),
            groups.assignments().to_vec(),
        ),
        Some(idx) => (
            idx.iter().map(|&i| scores[i]).collect(),
            idx.iter().map(|&i| labels[i]).collect(),
            idx.iter().map(|&i| groups.group_of(i)).collect(),
        ),
    };
    if s.is_empty() {
        return Ok(SliceMetrics::empty());
    }
    let sub_groups = SpatialGroups::new(g, groups.num_groups()).map_err(PipelineError::Fairness)?;
    let e = mean_score(&s);
    let o = positive_fraction(&y);
    Ok(SliceMetrics {
        n: s.len(),
        ence: ence(&s, &y, &sub_groups).map_err(PipelineError::Fairness)?,
        miscalibration: (e - o).abs(),
        calibration_ratio: (o > 0.0).then(|| e / o),
        accuracy: accuracy(&s, &y).map_err(PipelineError::Ml)?,
    })
}

impl EvalReport {
    /// Computes the report for final-model scores under a neighborhood
    /// assignment and a train/test split.
    pub fn compute(
        scores: &[f64],
        labels: &[bool],
        groups: &SpatialGroups,
        split: &TrainTestSplit,
    ) -> Result<Self, PipelineError> {
        let per_group =
            group_calibration(scores, labels, groups).map_err(PipelineError::Fairness)?;
        let occupied = per_group.iter().filter(|g| g.count > 0).count();
        Ok(Self {
            num_regions: groups.num_groups(),
            occupied_regions: occupied,
            full: slice_metrics(scores, labels, groups, None)?,
            train: slice_metrics(scores, labels, groups, Some(&split.train))?,
            test: slice_metrics(scores, labels, groups, Some(&split.test))?,
            per_group,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_on_a_hand_case() {
        let scores = [0.9, 0.8, 0.4, 0.1];
        let labels = [true, true, false, false];
        let groups = SpatialGroups::new(vec![0, 0, 1, 1], 2).unwrap();
        let split = TrainTestSplit {
            train: vec![0, 2],
            test: vec![1, 3],
        };
        let r = EvalReport::compute(&scores, &labels, &groups, &split).unwrap();
        assert_eq!(r.num_regions, 2);
        assert_eq!(r.occupied_regions, 2);
        assert_eq!(r.full.n, 4);
        assert_eq!(r.train.n, 2);
        assert_eq!(r.test.n, 2);
        assert_eq!(r.full.accuracy, 1.0);
        // Full slice: group 0 |e-o| = |0.85-1| = 0.15; group 1 = 0.25.
        assert!((r.full.ence - 0.2).abs() < 1e-12);
        assert_eq!(r.per_group.len(), 2);
    }

    #[test]
    fn empty_test_slice_is_zeroed() {
        let scores = [0.9, 0.1];
        let labels = [true, false];
        let groups = SpatialGroups::new(vec![0, 0], 1).unwrap();
        let split = TrainTestSplit {
            train: vec![0, 1],
            test: vec![],
        };
        let r = EvalReport::compute(&scores, &labels, &groups, &split).unwrap();
        assert_eq!(r.test.n, 0);
        assert_eq!(r.test.ence, 0.0);
        assert_eq!(r.test.calibration_ratio, None);
    }

    #[test]
    fn unpopulated_regions_counted() {
        let scores = [0.5];
        let labels = [true];
        let groups = SpatialGroups::new(vec![3], 8).unwrap();
        let split = TrainTestSplit {
            train: vec![0],
            test: vec![],
        };
        let r = EvalReport::compute(&scores, &labels, &groups, &split).unwrap();
        assert_eq!(r.num_regions, 8);
        assert_eq!(r.occupied_regions, 1);
    }

    #[test]
    fn slice_ence_uses_slice_population() {
        // Train slice contains only group-0 members that are perfectly
        // calibrated; the test slice carries all the error.
        let scores = [0.5, 0.5, 0.9, 0.9];
        let labels = [true, false, false, false];
        let groups = SpatialGroups::new(vec![0, 0, 1, 1], 2).unwrap();
        let split = TrainTestSplit {
            train: vec![0, 1],
            test: vec![2, 3],
        };
        let r = EvalReport::compute(&scores, &labels, &groups, &split).unwrap();
        assert!(r.train.ence < 1e-12);
        assert!((r.test.ence - 0.9).abs() < 1e-12);
    }
}
