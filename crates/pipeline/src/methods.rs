//! The partitioning methods of the paper's evaluation.

use fsi_geo::{Grid, Partition};
use serde::{Deserialize, Serialize};

/// A partitioning method from the paper's evaluation matrix (§5.1), plus
/// the quadtree extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Standard median KD-tree (benchmark i).
    MedianKd,
    /// Fair KD-tree (Algorithm 1).
    FairKd,
    /// Iterative Fair KD-tree (Algorithm 3).
    IterativeFairKd,
    /// Kamiran–Calders re-weighting over a uniform grid (benchmark ii).
    GridReweight,
    /// Zip-code partitioning via population-seeded Voronoi (benchmark iii).
    ZipCode,
    /// Fair quadtree (future-work extension, §6).
    FairQuad,
}

impl Method {
    /// Legend label matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::MedianKd => "Median KD-tree",
            Method::FairKd => "Fair KD-tree",
            Method::IterativeFairKd => "Iterative Fair KD-tree",
            Method::GridReweight => "Grid (Reweighting)",
            Method::ZipCode => "Zip-code partitioning",
            Method::FairQuad => "Fair Quadtree",
        }
    }

    /// The four methods compared in Figures 7 and 8, in legend order.
    pub fn figure7_set() -> [Method; 4] {
        [
            Method::MedianKd,
            Method::FairKd,
            Method::IterativeFairKd,
            Method::GridReweight,
        ]
    }

    /// `true` when the method trains with Kamiran–Calders sample weights.
    pub fn uses_reweighting(&self) -> bool {
        matches!(self, Method::GridReweight)
    }

    /// `true` when partition construction needs an initial model training.
    pub fn needs_initial_training(&self) -> bool {
        matches!(self, Method::FairKd | Method::FairQuad)
    }
}

/// The finest-grained districting: every base-grid cell is its own
/// neighborhood. This is the "base grid" input of Algorithm 1's step 1 —
/// the initial classifier sees each individual's own cell as its location
/// attribute.
pub fn per_cell_partition(grid: &Grid) -> Partition {
    let assignment: Vec<u32> = (0..grid.len() as u32).collect();
    Partition::from_assignment(grid, assignment).expect("identity assignment is dense")
}

/// Block shape for the re-weighting baseline at tree height `h`:
/// `2^⌈h/2⌉ × 2^⌊h/2⌋` uniform blocks, i.e. the same `2^h` region count a
/// height-`h` tree produces.
pub fn reweight_blocks(height: usize) -> (usize, usize) {
    (1usize << height.div_ceil(2), 1usize << (height / 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Method::MedianKd.name(), "Median KD-tree");
        assert_eq!(Method::GridReweight.name(), "Grid (Reweighting)");
        assert_eq!(Method::figure7_set().len(), 4);
    }

    #[test]
    fn per_cell_partition_is_identity() {
        let g = Grid::unit(4).unwrap();
        let p = per_cell_partition(&g);
        assert_eq!(p.num_regions(), 16);
        for cell in g.cells() {
            assert_eq!(p.region_of(cell), cell);
        }
    }

    #[test]
    fn reweight_blocks_match_tree_leaf_counts() {
        for h in 1..=12 {
            let (r, c) = reweight_blocks(h);
            assert_eq!(r * c, 1 << h, "height {h}");
        }
        assert_eq!(reweight_blocks(4), (4, 4));
        assert_eq!(reweight_blocks(5), (8, 4));
    }

    #[test]
    fn flags() {
        assert!(Method::GridReweight.uses_reweighting());
        assert!(!Method::FairKd.uses_reweighting());
        assert!(Method::FairKd.needs_initial_training());
        assert!(Method::FairQuad.needs_initial_training());
        assert!(!Method::MedianKd.needs_initial_training());
    }
}
