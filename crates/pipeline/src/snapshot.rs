//! Per-leaf model snapshots: the trained pipeline state an online server
//! needs, decoupled from the training machinery.
//!
//! A deployed fair index answers point queries with a *locally calibrated*
//! score: the final model's mean confidence in the query's neighborhood,
//! corrected by that neighborhood's observed calibration offset `o − e`
//! (the per-group quantities behind the paper's ENCE, Definition 3).
//! [`ModelSnapshot`] freezes exactly that per-leaf state — raw score, offset,
//! and fairness-group id — so `fsi-serve` can compile it into an immutable
//! index without dragging datasets or classifiers along.

use crate::error::PipelineError;
use crate::eval::EvalReport;
use crate::runner::{MethodRun, RunConfig, TaskSpec};
use crate::trainer::train_and_score;
use fsi_data::{build_design_matrix, SpatialDataset};
use fsi_fairness::{GroupCalibration, SpatialGroups};
use fsi_geo::Partition;
use fsi_ml::calibration::mean_score;
use fsi_ml::split::train_test_split;
use serde::{Deserialize, Serialize};

/// Frozen per-leaf model state: what a server needs to turn a leaf id
/// into a decision.
///
/// All three vectors are aligned by leaf (= region) id:
///
/// * `raw_score[l]` — the final model's mean confidence over leaf `l`'s
///   residents (the global mean score for unpopulated leaves);
/// * `offset[l]` — the leaf's calibration correction `o − e` (observed
///   positive fraction minus mean score; `0` for unpopulated leaves);
/// * `group_of_leaf[l]` — the spatial fairness group the leaf belongs
///   to. Leaves *are* the groups in this release, so the mapping is the
///   identity, but it is stored explicitly so coarser calibration groups
///   can be introduced without an API break.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSnapshot {
    raw_score: Vec<f64>,
    offset: Vec<f64>,
    group_of_leaf: Vec<u32>,
}

impl ModelSnapshot {
    /// Builds a snapshot from explicit per-leaf vectors.
    pub fn new(
        raw_score: Vec<f64>,
        offset: Vec<f64>,
        group_of_leaf: Vec<u32>,
    ) -> Result<Self, PipelineError> {
        if raw_score.is_empty() {
            return Err(PipelineError::InvalidConfig(
                "a model snapshot needs at least one leaf".into(),
            ));
        }
        if offset.len() != raw_score.len() || group_of_leaf.len() != raw_score.len() {
            return Err(PipelineError::InvalidConfig(format!(
                "snapshot vectors disagree: {} raw scores, {} offsets, {} groups",
                raw_score.len(),
                offset.len(),
                group_of_leaf.len()
            )));
        }
        Ok(Self {
            raw_score,
            offset,
            group_of_leaf,
        })
    }

    /// A snapshot with the same `raw` score, zero offsets and identity
    /// groups in every leaf — useful for tests and cold-start serving.
    pub fn uniform(num_leaves: usize, raw: f64) -> Result<Self, PipelineError> {
        Self::new(
            vec![raw; num_leaves],
            vec![0.0; num_leaves],
            (0..num_leaves as u32).collect(),
        )
    }

    /// Builds a snapshot from the per-group calibration table of an
    /// evaluation report. `fallback_score` (typically the global mean
    /// score) fills unpopulated leaves.
    pub fn from_group_calibration(
        per_group: &[GroupCalibration],
        fallback_score: f64,
    ) -> Result<Self, PipelineError> {
        let mut raw = Vec::with_capacity(per_group.len());
        let mut offset = Vec::with_capacity(per_group.len());
        for g in per_group {
            if g.count > 0 {
                raw.push(g.mean_score);
                offset.push(g.positive_fraction - g.mean_score);
            } else {
                raw.push(fallback_score);
                offset.push(0.0);
            }
        }
        let groups = (0..per_group.len() as u32).collect();
        Self::new(raw, offset, groups)
    }

    /// Number of leaves covered.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.raw_score.len()
    }

    /// Per-leaf raw (uncalibrated) scores.
    #[inline]
    pub fn raw_scores(&self) -> &[f64] {
        &self.raw_score
    }

    /// Per-leaf calibration offsets `o − e`.
    #[inline]
    pub fn offsets(&self) -> &[f64] {
        &self.offset
    }

    /// Per-leaf fairness-group ids.
    #[inline]
    pub fn groups(&self) -> &[u32] {
        &self.group_of_leaf
    }

    /// The locally calibrated score of a leaf: `raw + offset`, clamped
    /// into `[0, 1]`.
    #[inline]
    pub fn calibrated(&self, leaf: usize) -> f64 {
        (self.raw_score[leaf] + self.offset[leaf]).clamp(0.0, 1.0)
    }
}

impl MethodRun {
    /// Extracts the per-leaf model snapshot of this run: mean model score
    /// and calibration offset per neighborhood, with the run's global mean
    /// score as the unpopulated-leaf fallback.
    pub fn model_snapshot(&self) -> Result<ModelSnapshot, PipelineError> {
        ModelSnapshot::from_group_calibration(&self.eval.per_group, mean_score(&self.scores))
    }
}

/// A model trained for a *given* partition (rather than one built by
/// [`crate::run_spec`]): the snapshot, its evaluation, and the raw
/// scores. This is the serving path for partitions restored from disk.
#[derive(Debug, Clone)]
pub struct PartitionModel {
    /// The frozen per-leaf state.
    pub snapshot: ModelSnapshot,
    /// Full evaluation of the trained model under the partition.
    pub eval: EvalReport,
    /// Final-model confidence scores for every individual.
    pub scores: Vec<f64>,
    /// Task labels for every individual.
    pub labels: Vec<bool>,
}

/// Trains the final classifier of Algorithm 1 step 3 on an *existing*
/// partition (e.g. one deserialized from `reports/partition.json`) and
/// extracts the per-leaf [`ModelSnapshot`] for serving.
pub fn snapshot_for_partition(
    dataset: &SpatialDataset,
    task: &TaskSpec,
    partition: &Partition,
    config: &RunConfig,
) -> Result<PartitionModel, PipelineError> {
    task.validate()?;
    config.validate()?;
    if dataset.is_empty() {
        return Err(PipelineError::Ml(fsi_ml::MlError::EmptyDataset));
    }
    let labels = dataset.threshold_labels(&task.outcome, task.threshold)?;
    let split = train_test_split(dataset.len(), config.test_fraction, config.seed)
        .map_err(PipelineError::Ml)?;
    let design = build_design_matrix(dataset, partition, config.encoding)?;
    let groups = SpatialGroups::from_partition(dataset.cells(), partition)
        .map_err(PipelineError::Fairness)?;
    let outcome = train_and_score(config.model, &design.matrix, &labels, &split.train, None)?;
    let eval = EvalReport::compute(&outcome.scores, &labels, &groups, &split)?;
    let snapshot =
        ModelSnapshot::from_group_calibration(&eval.per_group, mean_score(&outcome.scores))?;
    Ok(PartitionModel {
        snapshot,
        eval,
        scores: outcome.scores,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::Method;
    use crate::runner::run_spec;
    use crate::spec::PipelineSpec;
    use fsi_data::synth::city::{CityConfig, CityGenerator};

    fn small_dataset() -> SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 250,
            grid_side: 16,
            seed: 11,
            ..CityConfig::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        assert!(ModelSnapshot::new(vec![], vec![], vec![]).is_err());
        assert!(ModelSnapshot::new(vec![0.5], vec![0.1, 0.2], vec![0]).is_err());
        assert!(ModelSnapshot::new(vec![0.5], vec![0.1], vec![0, 1]).is_err());
        let s = ModelSnapshot::new(vec![0.5, 0.4], vec![0.1, -0.2], vec![0, 1]).unwrap();
        assert_eq!(s.num_leaves(), 2);
        assert!((s.calibrated(0) - 0.6).abs() < 1e-12);
        // Calibration clamps into [0, 1].
        assert_eq!(
            ModelSnapshot::new(vec![0.9], vec![0.5], vec![0])
                .unwrap()
                .calibrated(0),
            1.0
        );
    }

    #[test]
    fn uniform_snapshot_shape() {
        let s = ModelSnapshot::uniform(4, 0.25).unwrap();
        assert_eq!(s.num_leaves(), 4);
        assert_eq!(s.raw_scores(), &[0.25; 4]);
        assert_eq!(s.offsets(), &[0.0; 4]);
        assert_eq!(s.groups(), &[0, 1, 2, 3]);
    }

    #[test]
    fn run_snapshot_matches_group_calibration() {
        let d = small_dataset();
        let run = run_spec(&d, &PipelineSpec::new(TaskSpec::act(), Method::FairKd, 3)).unwrap();
        let snap = run.model_snapshot().unwrap();
        assert_eq!(snap.num_leaves(), run.eval.num_regions);
        let global = mean_score(&run.scores);
        for (leaf, g) in run.eval.per_group.iter().enumerate() {
            if g.count > 0 {
                assert!((snap.raw_scores()[leaf] - g.mean_score).abs() < 1e-12);
                assert!(
                    (snap.offsets()[leaf] - (g.positive_fraction - g.mean_score)).abs() < 1e-12
                );
            } else {
                assert_eq!(snap.raw_scores()[leaf], global);
                assert_eq!(snap.offsets()[leaf], 0.0);
            }
        }
    }

    #[test]
    fn snapshot_for_partition_round_trips_through_json() {
        let d = small_dataset();
        let run = run_spec(&d, &PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 3)).unwrap();
        // Serialize the partition like redistricting_cli does, reload it,
        // and train a model for the restored boundaries.
        let json = serde_json::to_string(&run.partition).unwrap();
        let restored: Partition = serde_json::from_str(&json).unwrap();
        let model =
            snapshot_for_partition(&d, &TaskSpec::act(), &restored, &RunConfig::default()).unwrap();
        assert_eq!(model.snapshot.num_leaves(), restored.num_regions());
        assert_eq!(model.scores.len(), d.len());
        // Same seed, same partition, same encoding → same training as the
        // original run's final model.
        assert_eq!(model.scores, run.scores);
        let snap_json = serde_json::to_string(&model.snapshot).unwrap();
        let back: ModelSnapshot = serde_json::from_str(&snap_json).unwrap();
        assert_eq!(back, model.snapshot);
    }
}
