//! The ML-backed [`Retrainer`] driving Algorithm 3, plus the shared
//! aggregate-assembly helpers.

use crate::error::PipelineError;
use crate::trainer::{train_and_score, ModelKind};
use fsi_core::{CellStats, CoreError, Retrainer};
use fsi_data::{build_design_matrix, LocationEncoding, SpatialDataset};
use fsi_geo::Partition;

/// Builds [`CellStats`] from per-individual scores/labels restricted to the
/// training subset (`train_mask[i]` = row `i` participates). Restricting to
/// training rows keeps the partitioning decision free of test leakage.
pub fn training_cell_stats(
    dataset: &SpatialDataset,
    scores: &[f64],
    labels: &[bool],
    train_mask: &[bool],
) -> Result<CellStats, PipelineError> {
    let n = dataset.len();
    if scores.len() != n || labels.len() != n || train_mask.len() != n {
        return Err(PipelineError::InvalidConfig(format!(
            "scores/labels/mask must have dataset length {n}"
        )));
    }
    let counts: Vec<f64> = train_mask.iter().map(|&m| f64::from(u8::from(m))).collect();
    let masked_scores: Vec<f64> = scores
        .iter()
        .zip(train_mask)
        .map(|(&s, &m)| if m { s } else { 0.0 })
        .collect();
    let masked_labels: Vec<f64> = labels
        .iter()
        .zip(train_mask)
        .map(|(&y, &m)| if m && y { 1.0 } else { 0.0 })
        .collect();
    let cell_counts = dataset.cell_sums(&counts)?;
    let cell_scores = dataset.cell_sums(&masked_scores)?;
    let cell_labels = dataset.cell_sums(&masked_labels)?;
    CellStats::new(dataset.grid(), &cell_counts, &cell_scores, &cell_labels)
        .map_err(PipelineError::Core)
}

/// Converts a train-index list to a boolean membership mask.
pub fn mask_from_indices(n: usize, indices: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &i in indices {
        if i < n {
            mask[i] = true;
        }
    }
    mask
}

/// A [`Retrainer`] that re-encodes the neighborhood attribute for the
/// current partition, re-trains the classifier and returns fresh per-cell
/// aggregates — the paper's Algorithm 3 inner loop.
pub struct MlRetrainer<'a> {
    dataset: &'a SpatialDataset,
    labels: &'a [bool],
    kind: ModelKind,
    encoding: LocationEncoding,
    train_idx: &'a [usize],
    train_mask: Vec<bool>,
    /// Number of model trainings performed so far (Theorem 4 audits).
    pub trainings: usize,
    /// Scores from the most recent retraining (all individuals).
    pub last_scores: Option<Vec<f64>>,
}

impl<'a> MlRetrainer<'a> {
    /// Creates a retrainer for the given dataset/task/model.
    pub fn new(
        dataset: &'a SpatialDataset,
        labels: &'a [bool],
        kind: ModelKind,
        encoding: LocationEncoding,
        train_idx: &'a [usize],
    ) -> Self {
        let train_mask = mask_from_indices(dataset.len(), train_idx);
        Self {
            dataset,
            labels,
            kind,
            encoding,
            train_idx,
            train_mask,
            trainings: 0,
            last_scores: None,
        }
    }
}

impl Retrainer for MlRetrainer<'_> {
    fn retrain(&mut self, partition: &Partition) -> Result<CellStats, CoreError> {
        let to_core = |e: PipelineError| CoreError::Retrain(Box::new(e));
        // The paper's "initial execution of the classifier" (Figure 3a)
        // runs over the *base grid*: each individual's location attribute
        // is its enclosing cell. A literal single-region districting would
        // give the level-0 model a constant location column, so its
        // residual field would still contain the linear spatial trend the
        // final model removes — mis-aligning the root cut. We therefore
        // substitute the per-cell districting for the trivial partition.
        let base;
        let effective = if partition.num_regions() == 1 {
            base = crate::methods::per_cell_partition(self.dataset.grid());
            &base
        } else {
            partition
        };
        let design = build_design_matrix(self.dataset, effective, self.encoding)
            .map_err(|e| to_core(PipelineError::Data(e)))?;
        let outcome = train_and_score(self.kind, &design.matrix, self.labels, self.train_idx, None)
            .map_err(to_core)?;
        self.trainings += 1;
        let stats =
            training_cell_stats(self.dataset, &outcome.scores, self.labels, &self.train_mask)
                .map_err(to_core)?;
        self.last_scores = Some(outcome.scores);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::{BuildConfig, FairSplit, IterativeBuilder};
    use fsi_data::synth::city::{CityConfig, CityGenerator};

    fn small_dataset() -> SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 200,
            grid_side: 16,
            seed: 5,
            ..CityConfig::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    #[test]
    fn training_cell_stats_masks_test_rows() {
        let d = small_dataset();
        let labels = d.threshold_labels("avg_act", 22.0).unwrap();
        let scores = vec![0.5; d.len()];
        let all_mask = vec![true; d.len()];
        let half_mask: Vec<bool> = (0..d.len()).map(|i| i % 2 == 0).collect();
        let full = training_cell_stats(&d, &scores, &labels, &all_mask).unwrap();
        let half = training_cell_stats(&d, &scores, &labels, &half_mask).unwrap();
        let all_rect = d.grid().full_rect();
        assert_eq!(full.count(&all_rect), d.len() as f64);
        assert_eq!(half.count(&all_rect), (d.len() as f64 / 2.0).ceil());
        assert!(half.score_sum(&all_rect) < full.score_sum(&all_rect));
    }

    #[test]
    fn training_cell_stats_validates_lengths() {
        let d = small_dataset();
        let labels = d.threshold_labels("avg_act", 22.0).unwrap();
        assert!(training_cell_stats(&d, &[0.5], &labels, &vec![true; d.len()]).is_err());
    }

    #[test]
    fn mask_from_indices_ignores_out_of_range() {
        let m = mask_from_indices(4, &[0, 2, 9]);
        assert_eq!(m, vec![true, false, true, false]);
    }

    #[test]
    fn iterative_build_with_ml_retrainer_runs() {
        let d = small_dataset();
        let labels = d.threshold_labels("avg_act", 22.0).unwrap();
        let train_idx: Vec<usize> = (0..d.len()).collect();
        let mut rt = MlRetrainer::new(
            &d,
            &labels,
            ModelKind::Logistic,
            LocationEncoding::CentroidXY,
            &train_idx,
        );
        let cfg = BuildConfig::with_height(3);
        let tree = IterativeBuilder::new(cfg)
            .unwrap()
            .build(d.grid(), &FairSplit, &mut rt)
            .unwrap();
        assert_eq!(rt.trainings, 3);
        assert!(tree.num_leaves() <= 8);
        assert!(rt.last_scores.is_some());
        let p = tree.partition(d.grid()).unwrap();
        assert_eq!(p.num_regions(), tree.num_leaves());
    }
}
