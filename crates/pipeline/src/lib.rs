//! # fsi-pipeline — the end-to-end fair spatial indexing pipeline
//!
//! Wires the workspace together: datasets (`fsi-data`) are encoded into
//! design matrices, classifiers (`fsi-ml`) produce confidence scores,
//! per-cell aggregates feed the index builders (`fsi-core`), and the
//! resulting partitions are scored with the fairness metrics
//! (`fsi-fairness`).
//!
//! The central entry point is [`run_method`], which executes one
//! `(dataset, task, method, height)` cell of the paper's evaluation matrix
//! and returns a [`MethodRun`] with the partition, the final model's scores
//! and an [`EvalReport`]. [`run_multi_objective`] covers the two-task
//! experiments of Figure 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod methods;
pub mod retrainer;
pub mod runner;
pub mod snapshot;
pub mod trainer;

pub use error::PipelineError;
pub use eval::EvalReport;
pub use methods::Method;
pub use runner::{
    run_method, run_multi_objective, MethodRun, MultiObjectiveRun, RunConfig, TaskSpec,
};
pub use snapshot::{snapshot_for_partition, ModelSnapshot, PartitionModel};
pub use trainer::ModelKind;
