//! # fsi-pipeline — the end-to-end fair spatial indexing pipeline
//!
//! Wires the workspace together: datasets (`fsi-data`) are encoded into
//! design matrices, classifiers (`fsi-ml`) produce confidence scores,
//! per-cell aggregates feed the index builders (`fsi-core`), and the
//! resulting partitions are scored with the fairness metrics
//! (`fsi-fairness`).
//!
//! The central entry point is [`run_spec`], which executes one
//! [`PipelineSpec`] — a serde-round-trippable `(task, method, height,
//! config)` cell of the paper's evaluation matrix — and returns a
//! [`MethodRun`] with the partition, the final model's scores and an
//! [`EvalReport`]. [`run_multi_spec`] covers the two-task experiments of
//! Figure 10 via [`MultiObjectiveSpec`]. Every spec is validated before
//! any work runs.
//!
//! Most callers should not use this crate directly: the `fsi` facade
//! crate wraps these entry points in a fluent `Pipeline` builder that
//! carries the run through freezing (`fsi-serve`) and serving. The
//! historical free functions [`run_method`] and [`run_multi_objective`]
//! are deprecated shims over the spec path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod methods;
pub mod retrainer;
pub mod runner;
pub mod snapshot;
pub mod spec;
pub mod trainer;

pub use error::PipelineError;
pub use eval::EvalReport;
pub use methods::Method;
#[allow(deprecated)]
pub use runner::{run_method, run_multi_objective};
pub use runner::{run_multi_spec, run_spec, MethodRun, MultiObjectiveRun, RunConfig, TaskSpec};
pub use snapshot::{snapshot_for_partition, ModelSnapshot, PartitionModel};
pub use spec::{MultiObjectiveSpec, PipelineSpec};
pub use trainer::ModelKind;
