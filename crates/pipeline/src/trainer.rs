//! Model training and scoring over design matrices.

use crate::error::PipelineError;
use fsi_ml::dtree::DecisionTreeConfig;
use fsi_ml::logreg::LogisticRegressionConfig;
use fsi_ml::naive_bayes::GaussianNbConfig;
use fsi_ml::{Classifier, DecisionTree, GaussianNb, LogisticRegression, Matrix};
use serde::{Deserialize, Serialize};

/// The classifier families evaluated in the paper (§5.3.1): logistic
/// regression, decision tree and naive Bayes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ModelKind {
    /// Logistic regression (the paper's §5.3.2 focus).
    #[default]
    Logistic,
    /// CART decision tree.
    DecisionTree,
    /// Gaussian naive Bayes.
    NaiveBayes,
}

impl ModelKind {
    /// Human-readable name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Logistic => "Logistic Regression",
            ModelKind::DecisionTree => "Decision Tree",
            ModelKind::NaiveBayes => "Naive Bayes",
        }
    }

    /// All three kinds, in the paper's presentation order.
    pub fn all() -> [ModelKind; 3] {
        [
            ModelKind::Logistic,
            ModelKind::DecisionTree,
            ModelKind::NaiveBayes,
        ]
    }
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Confidence scores for **every** row of the full design matrix
    /// (training rows included).
    pub scores: Vec<f64>,
    /// Per-design-column importances when the model exposes them
    /// (logistic regression: |standardized coefficient|; decision tree:
    /// normalized impurity decrease; naive Bayes: none).
    pub importances: Option<Vec<f64>>,
}

/// Trains `kind` on the `train_idx` rows of `design` (with optional
/// per-row weights aligned to `train_idx`) and scores all rows.
pub fn train_and_score(
    kind: ModelKind,
    design: &Matrix,
    labels: &[bool],
    train_idx: &[usize],
    train_weights: Option<&[f64]>,
) -> Result<TrainOutcome, PipelineError> {
    if labels.len() != design.rows() {
        return Err(PipelineError::Ml(fsi_ml::MlError::DimensionMismatch {
            expected: design.rows(),
            got: labels.len(),
            what: "labels",
        }));
    }
    if let Some(w) = train_weights {
        if w.len() != train_idx.len() {
            return Err(PipelineError::Ml(fsi_ml::MlError::DimensionMismatch {
                expected: train_idx.len(),
                got: w.len(),
                what: "training weights",
            }));
        }
    }
    let x_train = design.select_rows(train_idx).map_err(PipelineError::Ml)?;
    let y_train: Vec<bool> = train_idx.iter().map(|&i| labels[i]).collect();

    match kind {
        ModelKind::Logistic => {
            let mut m = LogisticRegression::new(LogisticRegressionConfig::default())
                .map_err(PipelineError::Ml)?;
            m.fit(&x_train, &y_train, train_weights)
                .map_err(PipelineError::Ml)?;
            let scores = m.predict_proba(design).map_err(PipelineError::Ml)?;
            let importances = m.feature_importances().map_err(PipelineError::Ml)?;
            Ok(TrainOutcome {
                scores,
                importances: Some(importances),
            })
        }
        ModelKind::DecisionTree => {
            let mut m =
                DecisionTree::new(DecisionTreeConfig::default()).map_err(PipelineError::Ml)?;
            m.fit(&x_train, &y_train, train_weights)
                .map_err(PipelineError::Ml)?;
            let scores = m.predict_proba(design).map_err(PipelineError::Ml)?;
            let importances = m.feature_importances().map_err(PipelineError::Ml)?;
            Ok(TrainOutcome {
                scores,
                importances: Some(importances),
            })
        }
        ModelKind::NaiveBayes => {
            let mut m = GaussianNb::new(GaussianNbConfig::default()).map_err(PipelineError::Ml)?;
            m.fit(&x_train, &y_train, train_weights)
                .map_err(PipelineError::Ml)?;
            let scores = m.predict_proba(design).map_err(PipelineError::Ml)?;
            Ok(TrainOutcome {
                scores,
                importances: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Vec<bool>) {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let y: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn all_models_score_every_row() {
        let (x, y) = toy();
        let train: Vec<usize> = (0..40).collect();
        for kind in ModelKind::all() {
            let out = train_and_score(kind, &x, &y, &train, None).unwrap();
            assert_eq!(out.scores.len(), 60, "{kind:?}");
            assert!(out.scores.iter().all(|s| (0.0..=1.0).contains(s)));
        }
    }

    #[test]
    fn importances_present_where_expected() {
        let (x, y) = toy();
        let train: Vec<usize> = (0..60).collect();
        let lr = train_and_score(ModelKind::Logistic, &x, &y, &train, None).unwrap();
        assert_eq!(lr.importances.unwrap().len(), 1);
        let dt = train_and_score(ModelKind::DecisionTree, &x, &y, &train, None).unwrap();
        assert_eq!(dt.importances.unwrap().len(), 1);
        let nb = train_and_score(ModelKind::NaiveBayes, &x, &y, &train, None).unwrap();
        assert!(nb.importances.is_none());
    }

    #[test]
    fn weights_must_align_with_train_idx() {
        let (x, y) = toy();
        let train: Vec<usize> = (0..40).collect();
        let w = vec![1.0; 39];
        assert!(train_and_score(ModelKind::Logistic, &x, &y, &train, Some(&w)).is_err());
    }

    #[test]
    fn label_length_checked() {
        let (x, _) = toy();
        let train: Vec<usize> = (0..40).collect();
        assert!(train_and_score(ModelKind::Logistic, &x, &[true; 3], &train, None).is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ModelKind::Logistic.name(), "Logistic Regression");
        assert_eq!(ModelKind::DecisionTree.name(), "Decision Tree");
        assert_eq!(ModelKind::NaiveBayes.name(), "Naive Bayes");
    }
}
