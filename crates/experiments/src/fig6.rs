//! Figure 6 — evidence of model disparity on geospatial neighborhoods.
//!
//! The paper trains logistic regression over zip-code neighborhoods in LA
//! and Houston (ACT threshold 22), observes overall train/test calibration
//! close to 1 — (1.005, 1.033) and (0.999, 0.958) — and then shows the 10
//! most-populated zip codes suffering severe per-neighborhood
//! mis-calibration (ratio panels 6a/6c, 15-bin ECE panels 6b/6d).

use crate::context::ExperimentContext;
use crate::report::{fmt, Table};
use fsi::{FsiError, Method, Pipeline, TaskSpec};
use fsi_fairness::{group_calibration, group_ece, SpatialGroups};
use fsi_ml::calibration::BinningStrategy;

/// Number of zip codes shown per city (the paper's "top 10").
pub const TOP_ZIPS: usize = 10;
/// ECE bin count (the paper uses 15).
pub const ECE_BINS: usize = 15;

/// Runs the Figure-6 reproduction.
pub fn run(ctx: &ExperimentContext) -> Result<Vec<Table>, FsiError> {
    let mut tables = Vec::new();
    let mut overall = Table::new(
        "fig6_overall_calibration",
        "overall train/test calibration ratio of the zip-code model (paper: ~1 overall)",
        vec![
            "city".into(),
            "train_ratio".into(),
            "test_ratio".into(),
            "zip_codes".into(),
        ],
    );

    let task = TaskSpec::act();
    for (city, dataset) in &ctx.cities {
        // Height is irrelevant for the zip-code method.
        let run = Pipeline::on(dataset)
            .task(task.clone())
            .method(Method::ZipCode)
            .height(1)
            .config(ctx.config(ctx.split_seeds[0]))
            .run()?;

        overall.push_row(vec![
            city.clone(),
            run.eval
                .train
                .calibration_ratio
                .map(|r| fmt(r, 3))
                .unwrap_or_else(|| "n/a".into()),
            run.eval
                .test
                .calibration_ratio
                .map(|r| fmt(r, 3))
                .unwrap_or_else(|| "n/a".into()),
            run.eval.occupied_regions.to_string(),
        ]);

        // Per-zip statistics over the full population.
        let groups = SpatialGroups::from_partition(dataset.cells(), &run.partition)?;
        let stats = group_calibration(&run.scores, &run.labels, &groups)?;
        let eces = group_ece(
            &run.scores,
            &run.labels,
            &groups,
            ECE_BINS,
            BinningStrategy::EqualWidth,
        )?;

        let mut ranked: Vec<usize> = (0..stats.len()).collect();
        ranked.sort_by_key(|&g| std::cmp::Reverse(stats[g].count));

        let mut t = Table::new(
            format!("fig6_{}", ExperimentContext::slug(city)),
            format!(
                "{city}: calibration of the {TOP_ZIPS} most-populated zip codes \
                 (ratio far from 1 and large ECE = disparity)"
            ),
            vec![
                "rank".into(),
                "zip".into(),
                "population".into(),
                "calibration_ratio".into(),
                format!("ece_{ECE_BINS}bin"),
                "abs_miscal".into(),
            ],
        );
        for (rank, &g) in ranked.iter().take(TOP_ZIPS).enumerate() {
            t.push_row(vec![
                format!("N{}", rank + 1),
                format!("Z{g:03}"),
                stats[g].count.to_string(),
                stats[g]
                    .ratio
                    .map(|r| fmt(r, 3))
                    .unwrap_or_else(|| "inf".into()),
                eces[g].map(|e| fmt(e, 4)).unwrap_or_else(|| "n/a".into()),
                fmt(stats[g].absolute_error, 4),
            ]);
        }
        tables.push(t);
    }
    tables.insert(0, overall);
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_tables_with_top_zips() {
        let ctx = ExperimentContext::quick().unwrap();
        let tables = run(&ctx).unwrap();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 2); // overall: one row per city
        assert_eq!(tables[1].rows.len(), TOP_ZIPS);
        assert_eq!(tables[2].rows.len(), TOP_ZIPS);
        // Populations are sorted descending.
        let pops: Vec<usize> = tables[1]
            .rows
            .iter()
            .map(|r| r[2].parse::<usize>().unwrap())
            .collect();
        assert!(pops.windows(2).all(|w| w[0] >= w[1]));
    }
}
