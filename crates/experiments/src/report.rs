//! Table formatting and CSV emission for experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A rendered experiment table: the rows/series a paper figure reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Title (e.g. `fig7_los_angeles_logistic`).
    pub name: String,
    /// Human-readable caption.
    pub caption: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, caption: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            name: name.into(),
            caption: caption.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row; pads/truncates to the column count.
    pub fn push_row(&mut self, mut row: Vec<String>) {
        row.resize(self.columns.len(), String::new());
        self.rows.push(row);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.name, self.caption);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells are numeric/simple, quoted when
    /// they contain separators).
    pub fn to_csv(&self) -> String {
        fn quote(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes `<dir>/<name>.csv`, creating the directory if needed.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Prints tables to stdout and writes their CSVs under `reports/`.
pub fn emit(tables: &[Table]) {
    let dir = Path::new("reports");
    for t in tables {
        println!("{}", t.render());
        match t.write_csv(dir) {
            Ok(path) => println!("[csv] {}\n", path.display()),
            Err(e) => eprintln!("[warn] could not write csv for {}: {e}", t.name),
        }
    }
}

/// Formats a float with fixed precision for table cells.
pub fn fmt(v: f64, precision: usize) -> String {
    format!("{v:.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t1", "a test table", vec!["h".into(), "ence".into()]);
        t.push_row(vec!["4".into(), "0.0123".into()]);
        t.push_row(vec!["6".into()]); // short row gets padded
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("## t1 — a test table"));
        assert!(r.contains("ence"));
        assert!(r.contains("0.0123"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "h,ence");
        assert_eq!(lines[1], "4,0.0123");
        assert_eq!(lines[2], "6,");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("q", "", vec!["a".into()]);
        t.push_row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("fsi_report_test");
        let path = sample().write_csv(&dir).unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.123456, 3), "0.123");
        assert_eq!(fmt(2.0, 1), "2.0");
    }
}
