//! Shared experiment context: datasets, seeds and sweep parameters.

use fsi::{FsiError, RunConfig};
use fsi_data::synth::edgap::{generate_houston, generate_los_angeles};
use fsi_data::SpatialDataset;

/// The two evaluation cities, generated once and shared by every figure.
pub struct ExperimentContext {
    /// `(name, dataset)` pairs: Los Angeles then Houston, as in the paper.
    pub cities: Vec<(String, SpatialDataset)>,
    /// Split seeds results are averaged over (the paper plots single runs;
    /// averaging tames the small-dataset variance of our reproduction).
    pub split_seeds: Vec<u64>,
    /// Tree heights swept by Figures 7–9.
    pub heights: Vec<usize>,
}

impl ExperimentContext {
    /// Generates both cities with the default seeds and sweep ranges.
    pub fn standard() -> Result<Self, FsiError> {
        Ok(Self {
            cities: vec![
                ("Los Angeles".into(), generate_los_angeles()?),
                ("Houston".into(), generate_houston()?),
            ],
            split_seeds: vec![7, 17, 27],
            heights: (4..=10).collect(),
        })
    }

    /// A reduced context for smoke tests and the `cargo bench` figure
    /// harness: one split seed, three heights.
    pub fn quick() -> Result<Self, FsiError> {
        Ok(Self {
            cities: vec![
                ("Los Angeles".into(), generate_los_angeles()?),
                ("Houston".into(), generate_houston()?),
            ],
            split_seeds: vec![7],
            heights: vec![4, 6, 8],
        })
    }

    /// The run configuration for a given split seed.
    pub fn config(&self, seed: u64) -> RunConfig {
        RunConfig {
            seed,
            ..RunConfig::default()
        }
    }

    /// City name slug for file names (`Los Angeles` → `los_angeles`).
    pub fn slug(name: &str) -> String {
        name.to_lowercase().replace(' ', "_")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_context_has_both_cities() {
        let ctx = ExperimentContext::standard().unwrap();
        assert_eq!(ctx.cities.len(), 2);
        assert_eq!(ctx.cities[0].1.len(), 1153);
        assert_eq!(ctx.cities[1].1.len(), 966);
        assert_eq!(ctx.heights, vec![4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn slug_normalizes() {
        assert_eq!(ExperimentContext::slug("Los Angeles"), "los_angeles");
        assert_eq!(ExperimentContext::slug("Houston"), "houston");
    }

    #[test]
    fn config_carries_seed() {
        let ctx = ExperimentContext::quick().unwrap();
        assert_eq!(ctx.config(42).seed, 42);
    }
}
