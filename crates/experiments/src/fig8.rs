//! Figure 8 — model accuracy and overall train/test mis-calibration vs
//! tree height (logistic regression, both cities).
//!
//! Paper shape: accuracy rises with height and is similar across methods;
//! the fair methods pay no material calibration penalty overall — their
//! advantage is *where* the calibration error sits, not how much of it
//! there is.

use crate::context::ExperimentContext;
use crate::fig7::mean_cell;
use crate::report::{fmt, Table};
use fsi::{FsiError, Method, ModelKind, TaskSpec};

/// Which Figure-8 panel a table reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Panel {
    Accuracy,
    TrainMiscal,
    TestMiscal,
}

impl Panel {
    fn slug(&self) -> &'static str {
        match self {
            Panel::Accuracy => "accuracy",
            Panel::TrainMiscal => "train_miscalibration",
            Panel::TestMiscal => "test_miscalibration",
        }
    }

    fn caption(&self) -> &'static str {
        match self {
            Panel::Accuracy => "test accuracy vs height (logistic regression)",
            Panel::TrainMiscal => "overall training mis-calibration |e-o| vs height",
            Panel::TestMiscal => "overall test mis-calibration |e-o| vs height",
        }
    }
}

/// Runs the Figure-8 reproduction: three tables per city.
pub fn run(ctx: &ExperimentContext) -> Result<Vec<Table>, FsiError> {
    let task = TaskSpec::act();
    let methods = Method::figure7_set();
    let mut tables = Vec::new();

    for (city, dataset) in &ctx.cities {
        // Compute every cell once, reuse across the three panels.
        let mut cells = Vec::new();
        for &h in &ctx.heights {
            let mut row = Vec::new();
            for &m in &methods {
                row.push(mean_cell(
                    dataset,
                    &task,
                    m,
                    h,
                    ModelKind::Logistic,
                    &ctx.split_seeds,
                )?);
            }
            cells.push((h, row));
        }

        for panel in [Panel::Accuracy, Panel::TrainMiscal, Panel::TestMiscal] {
            let mut t = Table::new(
                format!("fig8_{}_{}", panel.slug(), ExperimentContext::slug(city)),
                format!("{city}: {}", panel.caption()),
                std::iter::once("height".to_string())
                    .chain(methods.iter().map(|m| m.name().to_string()))
                    .collect(),
            );
            for (h, row) in &cells {
                let mut cells_out = vec![h.to_string()];
                for cell in row {
                    let v = match panel {
                        Panel::Accuracy => cell.accuracy_test,
                        Panel::TrainMiscal => cell.miscal_train,
                        Panel::TestMiscal => cell.miscal_test,
                    };
                    cells_out.push(fmt(v, 5));
                }
                t.push_row(cells_out);
            }
            tables.push(t);
        }
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_slugs_are_distinct() {
        let slugs = [
            Panel::Accuracy.slug(),
            Panel::TrainMiscal.slug(),
            Panel::TestMiscal.slug(),
        ];
        assert_eq!(
            slugs.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
