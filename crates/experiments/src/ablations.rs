//! Ablations over this reproduction's documented design choices.
//!
//! Three decisions called out in DESIGN.md deserve quantified evidence:
//!
//! 1. **Tie-break rule** — Eq. 9's objective plateaus on empty or
//!    well-calibrated regions; strict first-index `argmin`
//!    (`TieBreak::FirstIndex`, the literal paper reading) produces sliver
//!    regions, while `PreferBalanced` (our default) falls back to the most
//!    population-balanced cut.
//! 2. **Location encoding** — centroid coordinates vs one-hot region
//!    indicators vs the raw region id.
//! 3. **Index structure** — the future-work fair quadtree vs the fair
//!    KD-tree at (approximately) equal region budgets.

use crate::context::ExperimentContext;
use crate::report::{fmt, Table};
use fsi::{FsiError, Method, Pipeline, TaskSpec, TieBreak};
use fsi_data::LocationEncoding;

/// Runs all three ablations on the Los Angeles preset.
pub fn run(ctx: &ExperimentContext) -> Result<Vec<Table>, FsiError> {
    let (city, dataset) = &ctx.cities[0];
    let task = TaskSpec::act();
    let base = ctx.config(ctx.split_seeds[0]);
    let mut tables = Vec::new();

    // 1. Tie-break rule.
    // ENCE alone is gameable: by Theorem 2, a *coarser* effective
    // districting scores lower. The occupied-region and largest-region
    // columns expose whether a rule delivers real granularity or wins by
    // collapsing into slivers plus a few huge neighborhoods.
    let mut t = Table::new(
        "ablation_tiebreak",
        format!(
            "{city}: Fair KD-tree under the two tie-break rules \
             (first_index lowers ENCE by degenerating granularity)"
        ),
        vec![
            "height".into(),
            "balanced_ence".into(),
            "balanced_occupied".into(),
            "balanced_maxpop".into(),
            "first_ence".into(),
            "first_occupied".into(),
            "first_maxpop".into(),
        ],
    );
    for &h in &ctx.heights {
        let mut cells = vec![h.to_string()];
        for tie_break in [TieBreak::PreferBalanced, TieBreak::FirstIndex] {
            let run = Pipeline::on(dataset)
                .task(task.clone())
                .method(Method::FairKd)
                .height(h)
                .config(base.clone())
                .tie_break(tie_break)
                .run()?;
            let max_pop = run
                .eval
                .per_group
                .iter()
                .map(|g| g.count)
                .max()
                .unwrap_or(0);
            cells.push(fmt(run.eval.full.ence, 5));
            cells.push(run.eval.occupied_regions.to_string());
            cells.push(max_pop.to_string());
        }
        t.push_row(cells);
    }
    tables.push(t);

    // 2. Location encoding.
    let mut t = Table::new(
        "ablation_encoding",
        format!("{city}, height 6: Fair KD-tree under the three neighborhood encodings"),
        vec![
            "encoding".into(),
            "ence".into(),
            "test_accuracy".into(),
            "train_miscal".into(),
        ],
    );
    for (name, encoding) in [
        ("centroid_xy", LocationEncoding::CentroidXY),
        ("one_hot", LocationEncoding::OneHot),
        ("cell_index", LocationEncoding::CellIndex),
    ] {
        let run = Pipeline::on(dataset)
            .task(task.clone())
            .method(Method::FairKd)
            .height(6)
            .config(base.clone())
            .encoding(encoding)
            .run()?;
        t.push_row(vec![
            name.into(),
            fmt(run.eval.full.ence, 5),
            fmt(run.eval.test.accuracy, 3),
            fmt(run.eval.train.miscalibration, 5),
        ]);
    }
    tables.push(t);

    // 3. Index structure: KD-tree vs quadtree at ~equal region budgets.
    let mut t = Table::new(
        "ablation_structure",
        format!(
            "{city}: fair KD-tree vs fair quadtree at equal region budgets \
             (quadtree of L levels ~ KD-tree of height 2L)"
        ),
        vec![
            "height".into(),
            "fair_kd_ence".into(),
            "fair_quad_ence".into(),
            "kd_occupied".into(),
            "quad_occupied".into(),
        ],
    );
    for &h in &[4usize, 6, 8] {
        let cell = |method: Method| {
            Pipeline::on(dataset)
                .task(task.clone())
                .method(method)
                .height(h)
                .config(base.clone())
                .run()
        };
        let kd = cell(Method::FairKd)?;
        let quad = cell(Method::FairQuad)?;
        t.push_row(vec![
            h.to_string(),
            fmt(kd.eval.full.ence, 5),
            fmt(quad.eval.full.ence, 5),
            kd.eval.occupied_regions.to_string(),
            quad.eval.occupied_regions.to_string(),
        ]);
    }
    tables.push(t);

    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_supports_ablation_heights() {
        let ctx = ExperimentContext::quick().unwrap();
        assert!(!ctx.heights.is_empty());
        assert!(!ctx.cities.is_empty());
    }
}
