//! # fsi-experiments — regenerating the paper's evaluation
//!
//! One module per figure of *Fair Spatial Indexing* (EDBT 2024), plus the
//! in-text timing comparison and our own ablations. Each module exposes a
//! `run(&ExperimentContext) -> Vec<Table>` function; the binaries print
//! the tables and write CSV artifacts under `reports/`.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig6`] | Figure 6 — per-zip-code calibration disparity |
//! | [`fig7`] | Figure 7 — ENCE vs tree height, 4 methods × 3 models |
//! | [`fig8`] | Figure 8 — accuracy and train/test mis-calibration |
//! | [`fig9`] | Figure 9 — feature-importance heatmaps |
//! | [`fig10`] | Figure 10 — multi-objective ENCE per task |
//! | [`timing`] | §5.3.1 — Fair vs Iterative construction cost |
//! | [`ablations`] | our design-choice ablations (tie-break, encoding, quadtree) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod context;
pub mod fig10;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod report;
pub mod timing;

pub use context::ExperimentContext;
pub use report::Table;
