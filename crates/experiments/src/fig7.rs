//! Figure 7 — ENCE vs tree height for the four methods and three
//! classifiers, both cities.
//!
//! Paper shape: ENCE grows with height for every method (Theorem 2's
//! refinement effect); Fair KD-tree and Iterative Fair KD-tree sit far
//! below Median KD-tree and Grid re-weighting, with the margin widening at
//! finer granularity.

use crate::context::ExperimentContext;
use crate::report::{fmt, Table};
use fsi::{FsiError, Method, ModelKind, Pipeline, TaskSpec};
use fsi_data::SpatialDataset;

/// Aggregated metrics of one `(method, height)` cell, averaged over split
/// seeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellSummary {
    /// Mean ENCE over the full population.
    pub ence_full: f64,
    /// Mean ENCE over the training slice.
    pub ence_train: f64,
    /// Mean ENCE over the test slice.
    pub ence_test: f64,
    /// Mean test accuracy.
    pub accuracy_test: f64,
    /// Mean overall training mis-calibration.
    pub miscal_train: f64,
    /// Mean overall test mis-calibration.
    pub miscal_test: f64,
}

/// Runs one cell averaged over `seeds`.
pub fn mean_cell(
    dataset: &SpatialDataset,
    task: &TaskSpec,
    method: Method,
    height: usize,
    model: ModelKind,
    seeds: &[u64],
) -> Result<CellSummary, FsiError> {
    let mut acc = CellSummary::default();
    for &seed in seeds {
        let run = Pipeline::on(dataset)
            .task(task.clone())
            .method(method)
            .height(height)
            .model(model)
            .seed(seed)
            .run()?;
        acc.ence_full += run.eval.full.ence;
        acc.ence_train += run.eval.train.ence;
        acc.ence_test += run.eval.test.ence;
        acc.accuracy_test += run.eval.test.accuracy;
        acc.miscal_train += run.eval.train.miscalibration;
        acc.miscal_test += run.eval.test.miscalibration;
    }
    let k = seeds.len() as f64;
    acc.ence_full /= k;
    acc.ence_train /= k;
    acc.ence_test /= k;
    acc.accuracy_test /= k;
    acc.miscal_train /= k;
    acc.miscal_test /= k;
    Ok(acc)
}

fn model_slug(model: ModelKind) -> &'static str {
    match model {
        ModelKind::Logistic => "logistic",
        ModelKind::DecisionTree => "decision_tree",
        ModelKind::NaiveBayes => "naive_bayes",
    }
}

/// Runs the Figure-7 reproduction: one table per (city, model) panel.
/// Panels run in parallel across threads.
pub fn run(ctx: &ExperimentContext) -> Result<Vec<Table>, FsiError> {
    let task = TaskSpec::act();
    let methods = Method::figure7_set();
    let panels: Vec<(usize, ModelKind)> = (0..ctx.cities.len())
        .flat_map(|c| ModelKind::all().map(|m| (c, m)))
        .collect();

    let results: Vec<Result<Table, FsiError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = panels
            .iter()
            .map(|&(city_idx, model)| {
                let task = &task;
                let ctx_ref = ctx;
                scope.spawn(move || -> Result<Table, FsiError> {
                    let (city, dataset) = &ctx_ref.cities[city_idx];
                    let mut t = Table::new(
                        format!(
                            "fig7_{}_{}",
                            ExperimentContext::slug(city),
                            model_slug(model)
                        ),
                        format!("{city} / {}: ENCE vs tree height", model.name()),
                        std::iter::once("height".to_string())
                            .chain(methods.iter().map(|m| m.name().to_string()))
                            .collect(),
                    );
                    for &h in &ctx_ref.heights {
                        let mut row = vec![h.to_string()];
                        for &m in &methods {
                            let cell = mean_cell(dataset, task, m, h, model, &ctx_ref.split_seeds)?;
                            row.push(fmt(cell.ence_full, 5));
                        }
                        t.push_row(row);
                    }
                    Ok(t)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("panel thread panicked"))
            .collect()
    });

    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_cell_averages_over_seeds() {
        let ctx = ExperimentContext::quick().unwrap();
        let (_, dataset) = &ctx.cities[0];
        let a = mean_cell(
            dataset,
            &TaskSpec::act(),
            Method::MedianKd,
            4,
            ModelKind::Logistic,
            &[7],
        )
        .unwrap();
        let b = mean_cell(
            dataset,
            &TaskSpec::act(),
            Method::MedianKd,
            4,
            ModelKind::Logistic,
            &[7, 7],
        )
        .unwrap();
        assert!((a.ence_full - b.ence_full).abs() < 1e-12);
        assert!(a.ence_full > 0.0);
        assert!(a.accuracy_test > 0.5);
    }
}
