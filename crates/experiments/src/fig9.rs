//! Figure 9 — feature-importance heatmaps across tree heights.
//!
//! For each tree-based method and city, the paper renders the relative
//! contribution of each feature (five socio-economic features plus the
//! neighborhood attribute) to the final model's decisions, at heights
//! 1–10. The heatmap explains the calibration fluctuations of Figure 8:
//! the model shifts attention between features as granularity changes.
//! We emit the same matrix numerically: rows = features, columns =
//! heights, values = normalized logistic-regression importances.

use crate::context::ExperimentContext;
use crate::report::{fmt, Table};
use fsi::{FsiError, Method, Pipeline, TaskSpec};

/// Heights of the heatmap columns (the paper uses 1–10).
pub fn heatmap_heights() -> Vec<usize> {
    (1..=10).collect()
}

/// Runs the Figure-9 reproduction: one table per (method, city).
pub fn run(ctx: &ExperimentContext) -> Result<Vec<Table>, FsiError> {
    let task = TaskSpec::act();
    let methods = [Method::MedianKd, Method::FairKd, Method::IterativeFairKd];
    let heights = heatmap_heights();
    let mut tables = Vec::new();

    for (city, dataset) in &ctx.cities {
        for method in methods {
            // One matrix: rows = importance entries, columns = heights.
            let mut matrix: Vec<Vec<f64>> = Vec::new();
            let mut names: Vec<String> = Vec::new();
            for &h in &heights {
                let run = Pipeline::on(dataset)
                    .task(task.clone())
                    .method(method)
                    .height(h)
                    .config(ctx.config(ctx.split_seeds[0]))
                    .run()?
                    .into_inner();
                let imp = run.importances.ok_or_else(|| {
                    FsiError::InvalidSpec("logistic regression must expose importances".into())
                })?;
                if names.is_empty() {
                    names = run.importance_names.clone();
                    matrix = vec![Vec::with_capacity(heights.len()); names.len()];
                }
                for (row, v) in matrix.iter_mut().zip(&imp) {
                    row.push(*v);
                }
            }

            let mut t = Table::new(
                format!(
                    "fig9_{}_{}",
                    match method {
                        Method::MedianKd => "median",
                        Method::FairKd => "fair",
                        Method::IterativeFairKd => "iterative",
                        _ => "other",
                    },
                    ExperimentContext::slug(city)
                ),
                format!(
                    "{city} / {}: normalized feature importance by height",
                    method.name()
                ),
                std::iter::once("feature".to_string())
                    .chain(heights.iter().map(|h| format!("h{h}")))
                    .collect(),
            );
            for (name, row) in names.iter().zip(&matrix) {
                let mut cells = vec![name.clone()];
                cells.extend(row.iter().map(|v| fmt(*v, 3)));
                t.push_row(cells);
            }
            tables.push(t);
        }
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_run_one_to_ten() {
        let h = heatmap_heights();
        assert_eq!(h.first(), Some(&1));
        assert_eq!(h.last(), Some(&10));
    }
}
