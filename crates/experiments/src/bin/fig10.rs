//! Regenerates the paper's fig10 artifact. Run with `--release`.

use fsi_experiments::{fig10, report, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::standard().expect("dataset generation");
    let tables = fig10::run(&ctx).expect("fig10 run");
    report::emit(&tables);
}
