//! Regenerates every table and figure of the paper in one run.
//!
//! ```sh
//! cargo run --release -p fsi-experiments --bin all
//! ```

use fsi_experiments::{
    ablations, fig10, fig6, fig7, fig8, fig9, report, timing, ExperimentContext,
};

type RunFn = fn(&ExperimentContext) -> Result<Vec<fsi_experiments::Table>, fsi::FsiError>;

fn main() {
    let ctx = ExperimentContext::standard().expect("dataset generation");
    let runs: Vec<(&str, RunFn)> = vec![
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig8::run),
        ("fig9", fig9::run),
        ("fig10", fig10::run),
        ("timing", timing::run),
        ("ablations", ablations::run),
    ];
    for (name, f) in runs {
        eprintln!("[all] running {name} ...");
        let started = std::time::Instant::now();
        match f(&ctx) {
            Ok(tables) => {
                report::emit(&tables);
                eprintln!(
                    "[all] {name} done in {:.1}s",
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("[all] {name} FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
