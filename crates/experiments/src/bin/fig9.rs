//! Regenerates the paper's fig9 artifact. Run with `--release`.

use fsi_experiments::{fig9, report, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::standard().expect("dataset generation");
    let tables = fig9::run(&ctx).expect("fig9 run");
    report::emit(&tables);
}
