//! Regenerates the paper's fig8 artifact. Run with `--release`.

use fsi_experiments::{fig8, report, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::standard().expect("dataset generation");
    let tables = fig8::run(&ctx).expect("fig8 run");
    report::emit(&tables);
}
