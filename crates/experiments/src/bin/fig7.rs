//! Regenerates the paper's fig7 artifact. Run with `--release`.

use fsi_experiments::{fig7, report, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::standard().expect("dataset generation");
    let tables = fig7::run(&ctx).expect("fig7 run");
    report::emit(&tables);
}
