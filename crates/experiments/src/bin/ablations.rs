//! Regenerates the paper's ablations artifact. Run with `--release`.

use fsi_experiments::{ablations, report, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::standard().expect("dataset generation");
    let tables = ablations::run(&ctx).expect("ablations run");
    report::emit(&tables);
}
