//! Regenerates the paper's timing artifact. Run with `--release`.

use fsi_experiments::{report, timing, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::standard().expect("dataset generation");
    let tables = timing::run(&ctx).expect("timing run");
    report::emit(&tables);
}
