//! Regenerates the paper's fig6 artifact. Run with `--release`.

use fsi_experiments::{fig6, report, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::standard().expect("dataset generation");
    let tables = fig6::run(&ctx).expect("fig6 run");
    report::emit(&tables);
}
