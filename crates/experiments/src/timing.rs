//! §5.3.1 in-text measurement — construction cost of Fair vs Iterative
//! Fair KD-trees.
//!
//! The paper reports 102 s (Fair) vs 189 s (Iterative) at height 10 — a
//! ratio of ≈1.85, i.e. "Fair KD-tree achieves 45 % better performance in
//! terms of computational complexity". Absolute numbers are
//! hardware/language-bound; the *ratio* follows from Theorems 3 and 4:
//! the iterative variant performs one model training per level instead of
//! one overall.

use crate::context::ExperimentContext;
use crate::report::{fmt, Table};
use fsi::{FsiError, Method, Pipeline, TaskSpec};

/// Height of the timing comparison (the paper's 10-level setting).
pub const HEIGHT: usize = 10;

/// Runs the timing comparison.
pub fn run(ctx: &ExperimentContext) -> Result<Vec<Table>, FsiError> {
    let task = TaskSpec::act();
    let mut t = Table::new(
        "timing_construction",
        format!(
            "construction cost at height {HEIGHT} (paper: 102 s Fair vs 189 s \
             Iterative, ratio 1.85; we compare the ratio, not absolute time)"
        ),
        vec![
            "city".into(),
            "fair_ms".into(),
            "fair_trainings".into(),
            "iterative_ms".into(),
            "iterative_trainings".into(),
            "ratio".into(),
        ],
    );
    for (city, dataset) in &ctx.cities {
        let cell = |method: Method| {
            Pipeline::on(dataset)
                .task(task.clone())
                .method(method)
                .height(HEIGHT)
                .config(ctx.config(ctx.split_seeds[0]))
                .run()
        };
        // Best-of-3 to suppress scheduler noise.
        let mut fair_ms = f64::INFINITY;
        let mut iter_ms = f64::INFINITY;
        let mut fair_trainings = 0;
        let mut iter_trainings = 0;
        for _ in 0..3 {
            let fair = cell(Method::FairKd)?;
            fair_ms = fair_ms.min(fair.build_time.as_secs_f64() * 1e3);
            fair_trainings = fair.trainings;
            let iter = cell(Method::IterativeFairKd)?;
            iter_ms = iter_ms.min(iter.build_time.as_secs_f64() * 1e3);
            iter_trainings = iter.trainings;
        }
        t.push_row(vec![
            city.clone(),
            fmt(fair_ms, 1),
            fair_trainings.to_string(),
            fmt(iter_ms, 1),
            iter_trainings.to_string(),
            fmt(iter_ms / fair_ms, 2),
        ]);
    }
    Ok(vec![t])
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_height_is_ten() {
        assert_eq!(super::HEIGHT, 10);
    }
}
