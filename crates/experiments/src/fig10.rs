//! Figure 10 — multi-objective fairness: one districting serving two
//! tasks.
//!
//! The paper partitions with the Multi-Objective Fair KD-tree (α = 0.5
//! over the ACT and family-employment tasks) and compares per-task ENCE
//! against Median KD-tree and Grid re-weighting at heights 4, 6, 8, 10.
//! Paper shape: the multi-objective tree wins on *both* tasks, with the
//! margin growing with height.

use crate::context::ExperimentContext;
use crate::report::{fmt, Table};
use fsi::{FsiError, Method, MultiPipeline, TaskSpec};
use fsi_data::SpatialDataset;

/// The heights shown in Figure 10.
pub const HEIGHTS: [usize; 4] = [4, 6, 8, 10];

/// Task priority used by the paper (equal weight).
pub const ALPHA: f64 = 0.5;

fn mean_task_ence(
    dataset: &SpatialDataset,
    tasks: &[TaskSpec],
    method: Method,
    height: usize,
    seeds: &[u64],
) -> Result<Vec<f64>, FsiError> {
    let mut sums = vec![0.0; tasks.len()];
    for &seed in seeds {
        let run = MultiPipeline::on(dataset)
            .tasks(tasks.to_vec())
            .alphas(vec![ALPHA, 1.0 - ALPHA])
            .method(method)
            .height(height)
            .seed(seed)
            .run()?;
        for (s, (_, eval)) in sums.iter_mut().zip(&run.per_task) {
            *s += eval.full.ence;
        }
    }
    Ok(sums.into_iter().map(|s| s / seeds.len() as f64).collect())
}

/// Runs the Figure-10 reproduction: one table per (city, height).
pub fn run(ctx: &ExperimentContext) -> Result<Vec<Table>, FsiError> {
    let tasks = [TaskSpec::act(), TaskSpec::employment()];
    let methods = [Method::MedianKd, Method::FairKd, Method::GridReweight];
    let mut tables = Vec::new();

    for (city, dataset) in &ctx.cities {
        for &height in &HEIGHTS {
            let mut t = Table::new(
                format!("fig10_h{}_{}", height, ExperimentContext::slug(city)),
                format!(
                    "{city}, height {height}: per-task ENCE of one shared districting \
                     (Fair KD-tree = multi-objective variant, alpha = {ALPHA})"
                ),
                vec!["method".into(), "ACT".into(), "Employment".into()],
            );
            for &method in &methods {
                let ences = mean_task_ence(dataset, &tasks, method, height, &ctx.split_seeds)?;
                t.push_row(vec![
                    method.name().to_string(),
                    fmt(ences[0], 5),
                    fmt(ences[1], 5),
                ]);
            }
            tables.push(t);
        }
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(HEIGHTS, [4, 6, 8, 10]);
        assert!((ALPHA - 0.5).abs() < 1e-12);
    }
}
