//! `cargo bench -p fsi-experiments` regenerates every figure (reduced
//! sweep: one split seed) so the full benchmark run reproduces the
//! evaluation end-to-end.

use fsi_experiments::{
    ablations, fig10, fig6, fig7, fig8, fig9, report, timing, ExperimentContext,
};

fn main() {
    let ctx = ExperimentContext::quick().expect("dataset generation");
    for (name, f) in [
        ("fig6", fig6::run as fn(&ExperimentContext) -> _),
        ("fig7", fig7::run),
        ("fig8", fig8::run),
        ("fig9", fig9::run),
        ("fig10", fig10::run),
        ("timing", timing::run),
        ("ablations", ablations::run),
    ] {
        eprintln!("[figures] {name}");
        let tables: Vec<fsi_experiments::Table> = f(&ctx).expect(name);
        report::emit(&tables);
    }
}
