//! Deterministic fault injection for tests and benchmarks.

use crate::policy::{splitmix64, unit_f64};
use fsi_obs::Counter;
use fsi_proto::{ErrorCode, Request, Response, ShardHealthBody};
use fsi_serve::{LocalShard, ShardBackend, ShardDescriptor, TransportStats};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A remote-control handle to a [`ChaosShard`]'s kill switch, cloneable
/// and usable after the shard itself moved into a topology.
#[derive(Clone)]
pub struct ChaosSwitch {
    down: Arc<AtomicBool>,
}

impl ChaosSwitch {
    /// Flips the replica dead (`true`) or alive (`false`).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Release);
    }
}

/// A [`ShardBackend`] wrapper that injects faults on a *deterministic*
/// schedule, so distributed tests and the resilience benchmark stop
/// hand-rolling failure scenarios:
///
/// * [`ChaosShard::error_every`] — every Nth dispatch answers an
///   `internal` transport error instead of forwarding.
/// * [`ChaosShard::fail_with_probability`] — a seeded splitmix64 stream
///   decides per dispatch; the same seed replays the same fault
///   pattern.
/// * [`ChaosShard::delay`] — every forwarded dispatch sleeps first
///   (for exercising hedges and deadlines).
/// * [`ChaosShard::switch`] — a shared kill switch: while down, every
///   dispatch fails, simulating a dead replica without tearing down a
///   socket.
///
/// Injected faults are transport-shaped (`ErrorCode::Internal`), so the
/// resilience layer treats them exactly like a dead remote.
pub struct ChaosShard {
    inner: Box<dyn ShardBackend>,
    error_every: Option<u64>,
    fail_probability: f64,
    rng: AtomicU64,
    delay: Option<Duration>,
    down: Arc<AtomicBool>,
    calls: AtomicU64,
    injected: Arc<Counter>,
}

impl ChaosShard {
    /// Wraps `inner` with no faults configured (a transparent proxy
    /// until a builder method or the kill switch says otherwise).
    pub fn new(inner: Box<dyn ShardBackend>) -> Self {
        Self {
            inner,
            error_every: None,
            fail_probability: 0.0,
            rng: AtomicU64::new(0),
            delay: None,
            down: Arc::new(AtomicBool::new(false)),
            calls: AtomicU64::new(0),
            injected: Arc::new(Counter::new()),
        }
    }

    /// Fails every `n`th dispatch (1-based: `n = 3` fails dispatches
    /// 3, 6, 9, …). `n = 0` disables the schedule.
    pub fn error_every(mut self, n: u64) -> Self {
        self.error_every = (n > 0).then_some(n);
        self
    }

    /// Fails each dispatch with probability `p`, drawn from a splitmix64
    /// stream seeded with `seed` — deterministic per construction.
    pub fn fail_with_probability(mut self, p: f64, seed: u64) -> Self {
        self.fail_probability = p.clamp(0.0, 1.0);
        self.rng = AtomicU64::new(seed);
        self
    }

    /// Sleeps `delay` before every forwarded dispatch.
    pub fn delay(mut self, delay: Duration) -> Self {
        self.delay = Some(delay);
        self
    }

    /// The kill switch, safe to hold after the shard moves into a
    /// topology.
    pub fn switch(&self) -> ChaosSwitch {
        ChaosSwitch {
            down: Arc::clone(&self.down),
        }
    }

    /// A counter of injected faults, safe to hold after the shard moves
    /// into a topology.
    pub fn fault_counter(&self) -> Arc<Counter> {
        Arc::clone(&self.injected)
    }

    fn inject(&self, detail: &str) -> Response {
        self.injected.inc();
        Response::error(ErrorCode::Internal, format!("chaos: {detail}"))
    }
}

impl ShardBackend for ChaosShard {
    fn dispatch(&self, request: &Request) -> Response {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.down.load(Ordering::Acquire) {
            return self.inject("replica is down");
        }
        if let Some(n) = self.error_every {
            if call.is_multiple_of(n) {
                return self.inject(&format!("injected error on dispatch #{call}"));
            }
        }
        if self.fail_probability > 0.0 {
            let mut state = self.rng.load(Ordering::Relaxed);
            let draw = splitmix64(&mut state);
            self.rng.store(state, Ordering::Relaxed);
            if unit_f64(draw) < self.fail_probability {
                return self.inject(&format!("seeded failure on dispatch #{call}"));
            }
        }
        if let Some(delay) = self.delay {
            std::thread::sleep(delay);
        }
        self.inner.dispatch(request)
    }

    fn descriptor(&self) -> ShardDescriptor {
        self.inner.descriptor()
    }

    fn generation(&self) -> u64 {
        if self.down.load(Ordering::Acquire) {
            return 0;
        }
        self.inner.generation()
    }

    fn as_local(&self) -> Option<&LocalShard> {
        self.inner.as_local()
    }

    fn transport_stats(&self) -> Option<TransportStats> {
        self.inner.transport_stats()
    }

    fn health(&self) -> Option<ShardHealthBody> {
        self.inner.health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_proto::MetricsBody;

    struct EchoShard;

    impl ShardBackend for EchoShard {
        fn dispatch(&self, _request: &Request) -> Response {
            Response::Metrics {
                metrics: Box::new(MetricsBody::empty()),
            }
        }

        fn descriptor(&self) -> ShardDescriptor {
            ShardDescriptor {
                kind: "local",
                addr: None,
            }
        }

        fn generation(&self) -> u64 {
            11
        }
    }

    #[test]
    fn transparent_until_configured() {
        let shard = ChaosShard::new(Box::new(EchoShard));
        for _ in 0..10 {
            assert!(!shard.dispatch(&Request::Metrics).is_error());
        }
        assert_eq!(shard.fault_counter().get(), 0);
        assert_eq!(shard.generation(), 11);
        assert_eq!(shard.descriptor().kind, "local");
    }

    #[test]
    fn error_every_nth_follows_the_schedule() {
        let shard = ChaosShard::new(Box::new(EchoShard)).error_every(3);
        let outcomes: Vec<bool> = (0..9)
            .map(|_| shard.dispatch(&Request::Metrics).is_error())
            .collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(shard.fault_counter().get(), 3);
    }

    #[test]
    fn seeded_probability_replays_identically() {
        let pattern = |seed: u64| -> Vec<bool> {
            let shard = ChaosShard::new(Box::new(EchoShard)).fail_with_probability(0.5, seed);
            (0..32)
                .map(|_| shard.dispatch(&Request::Metrics).is_error())
                .collect()
        };
        let first = pattern(42);
        assert_eq!(first, pattern(42), "same seed, same fault pattern");
        assert_ne!(first, pattern(43), "different seed, different pattern");
        assert!(first.iter().any(|f| *f) && !first.iter().all(|f| *f));
    }

    #[test]
    fn kill_switch_downs_and_revives_after_the_move() {
        let shard = ChaosShard::new(Box::new(EchoShard));
        let switch = shard.switch();
        let faults = shard.fault_counter();
        let boxed: Box<dyn ShardBackend> = Box::new(shard);
        assert!(!boxed.dispatch(&Request::Metrics).is_error());
        switch.set_down(true);
        let response = boxed.dispatch(&Request::Metrics);
        let Response::Error { error } = response else {
            panic!("downed shard must fail");
        };
        assert_eq!(error.code, ErrorCode::Internal);
        assert!(error.message.contains("chaos"), "{}", error.message);
        assert_eq!(boxed.generation(), 0, "a dead replica reports generation 0");
        switch.set_down(false);
        assert!(!boxed.dispatch(&Request::Metrics).is_error());
        assert_eq!(faults.get(), 1);
    }
}
