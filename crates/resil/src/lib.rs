//! # fsi-resil — resilience for the sharded serving fleet
//!
//! PR 7 gave the serving stack a scatter-gather coordinator over remote
//! shards; this crate makes that fleet answer under partial failure. A
//! single dead `RemoteShard` no longer fails the query — an outage
//! concentrated on one shard is itself a spatial-fairness failure mode
//! (the regions mapped to that shard lose service while everyone else
//! keeps theirs).
//!
//! * [`ResiliencePolicy`] — a validated, serde-round-trippable knob
//!   set: retry budget with exponential backoff and deterministic
//!   seedable jitter, per-attempt deadline, hedge-after threshold, and
//!   the circuit-breaker thresholds.
//! * [`CircuitBreaker`] — per-replica consecutive-failure admission
//!   control with half-open probing; every transition is counted so
//!   breaker cycles are observable post-hoc from `/metrics`.
//! * [`ReplicaSet`] — N backends serving the same clip rectangle
//!   behind the one [`fsi_serve::ShardBackend`] interface, so
//!   `Topology`, `TopologySpec` (the `{"replicas": [...]}` slot form)
//!   and the two-phase rebuild barrier compose unchanged. Idempotent
//!   requests retry/hedge across replicas; writes and barrier messages
//!   broadcast to all with all-must-succeed semantics.
//! * [`ChaosShard`] — deterministic seeded fault injection (kill
//!   switch, every-Nth errors, seeded drop probability, fixed delay)
//!   shared by the distributed tests and the resilience benchmark.
//!
//! Everything is std-only: threads + channels for hedging, atomics for
//! breakers and counters, no external dependencies beyond the
//! workspace's vendored serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod chaos;
mod error;
mod policy;
mod replica;

pub use breaker::CircuitBreaker;
pub use chaos::{ChaosShard, ChaosSwitch};
pub use error::ResilError;
pub use policy::ResiliencePolicy;
pub use replica::ReplicaSet;
