//! The failover replica set: N backends serving the same clip
//! rectangle behind one [`ShardBackend`] facade.

use crate::breaker::CircuitBreaker;
use crate::error::ResilError;
use crate::policy::ResiliencePolicy;
use fsi_obs::{Counter, Histogram};
use fsi_proto::{ErrorCode, ReplicaHealthBody, Request, Response, ShardHealthBody};
use fsi_serve::{LocalShard, ShardBackend, ShardDescriptor, TransportStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sample one per-replica attempt latency out of this many, so the
/// resilience layer's bookkeeping stays off the hot path (same
/// precedent as the service's lookup sampling knob). 64 keeps the two
/// `Instant::now` calls per sample under a nanosecond amortized.
const LATENCY_SAMPLE_EVERY: u64 = 64;

/// One member of a [`ReplicaSet`]: the backend plus its breaker and
/// counters. `Arc`ed so hedged attempts can run on detached threads
/// that outlive the dispatching call.
struct ReplicaSlot {
    backend: Arc<dyn ShardBackend>,
    /// A [`LocalShard::read_twin`] of `backend`, when the member is a
    /// plain in-process shard ([`ShardBackend::as_plain_local`]): the
    /// healthy fast path dispatches pure reads through it *statically*,
    /// sparing the vtable's dependent loads — worth a few nanoseconds
    /// against a ~60 ns local lookup, which the suite's ≤ 1.10x gate
    /// cares about. Rebuild-barrier and ingest traffic always goes
    /// through `backend`, whose staging slot is the real one.
    local: Option<LocalShard>,
    breaker: CircuitBreaker,
    /// Total dispatches, doubling as the latency-sampling tick. Bumped
    /// with a plain load + store (not a locked RMW): a lost increment
    /// under concurrent dispatch skews the attempts gauge and the
    /// sampling cadence by one, which observability tolerates, and it
    /// keeps the healthy hot path free of locked instructions — the
    /// difference between passing and failing the suite's ≤ 1.10x gate
    /// against a ~67 ns bare lookup.
    attempts: AtomicU64,
    failures: Counter,
    retries: Counter,
    hedges: Counter,
    hedge_wins: Counter,
    latency: Histogram,
}

impl ReplicaSlot {
    /// Dispatches once, recording attempt/failure counters, the sampled
    /// latency, and the breaker outcome. Transport-level failures —
    /// [`ErrorCode::Internal`] — feed the breaker; every other
    /// response, *including* semantic errors like `out_of_bounds`, is a
    /// healthy answer.
    #[inline]
    fn dispatch_recorded(&self, request: &Request) -> (Response, bool) {
        let tick = self.attempts.load(Ordering::Relaxed);
        self.attempts.store(tick + 1, Ordering::Relaxed);
        let sampled = tick.is_multiple_of(LATENCY_SAMPLE_EVERY);
        let start = sampled.then(Instant::now);
        let response = self.backend.dispatch(request);
        if let Some(start) = start {
            self.latency
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let failed = is_transport_failure(&response);
        if failed {
            self.failures.inc();
            self.breaker.record_failure();
        } else {
            self.breaker.record_success();
        }
        (response, failed)
    }

    fn health(&self, replica: usize) -> ReplicaHealthBody {
        let descriptor = self.backend.descriptor();
        ReplicaHealthBody {
            replica,
            kind: descriptor.kind.to_string(),
            addr: descriptor.addr,
            state: self.breaker.state_name().to_string(),
            consecutive_failures: self.breaker.consecutive_failures(),
            attempts: self.attempts.load(Ordering::Relaxed),
            failures: self.failures.get(),
            retries: self.retries.get(),
            hedges: self.hedges.get(),
            hedge_wins: self.hedge_wins.get(),
            opens: self.breaker.opens(),
            half_opens: self.breaker.half_opens(),
            closes: self.breaker.closes(),
            latency: self.latency.snapshot(),
        }
    }
}

/// Whether a response is a transport-level failure (the replica itself
/// broke) rather than a semantic answer the client should see.
fn is_transport_failure(response: &Response) -> bool {
    matches!(
        response,
        Response::Error { error } if error.code == ErrorCode::Internal
    )
}

/// Whether a request may be safely re-sent or raced against a
/// duplicate. Reads are; writes (`Ingest*`) and the rebuild barrier
/// messages are not — retrying a prepare against one replica of a
/// barrier the coordinator is already aborting would corrupt the
/// fleet's generation lockstep.
fn is_idempotent(request: &Request) -> bool {
    matches!(
        request,
        Request::Lookup { .. }
            | Request::LookupBatch { .. }
            | Request::RangeQuery { .. }
            | Request::Stats
            | Request::Metrics
            | Request::Health
    )
}

/// N replicas of the same shard behind the one [`ShardBackend`]
/// interface, so [`fsi_serve::Topology`] and the two-phase rebuild
/// barrier compose unchanged:
///
/// * **Idempotent requests** (lookups, range queries, stats scrapes)
///   are routed to the first breaker-admitted replica, retried per the
///   [`ResiliencePolicy`] with exponential backoff and deterministic
///   jitter, failing over to sibling replicas; with a hedge threshold
///   configured, a slow primary is raced against a speculative
///   duplicate and the first answer wins.
/// * **Non-idempotent requests** (ingest, rebuild barrier messages) are
///   broadcast to *every* replica with all-must-succeed semantics: the
///   first failure is returned verbatim, so a coordinator's prepare
///   barrier aborts exactly as it would with a plain dead shard. This
///   keeps replicas in generation lockstep — a replica that missed a
///   commit would answer from a stale index and break bit-identity.
///
/// When the policy neither hedges nor sets a deadline
/// ([`ResiliencePolicy::is_synchronous`]) the whole dispatch stays on
/// the calling thread — no channel, no allocation beyond the response —
/// which is the fast path the `serving/resil_*` bench suite bounds at
/// ≤ 1.10x bare dispatch.
pub struct ReplicaSet {
    /// `Arc<[_]>` rather than `Arc<Vec<_>>`: the slot data sits inline
    /// in the Arc allocation, sparing the fast path a dependent load.
    slots: Arc<[ReplicaSlot]>,
    policy: ResiliencePolicy,
    /// [`ResiliencePolicy::is_synchronous`], cached at construction so
    /// the dispatch fast path reads one bool.
    synchronous: bool,
    rng: AtomicU64,
}

impl ReplicaSet {
    /// Wraps `members` (all serving the same clip rectangle) under
    /// `policy`. Fails on an invalid policy or an empty member list.
    pub fn new(
        members: Vec<Box<dyn ShardBackend>>,
        policy: ResiliencePolicy,
    ) -> Result<Self, ResilError> {
        policy.validate()?;
        if members.is_empty() {
            return Err(ResilError::EmptyReplicaSet);
        }
        let slots = members
            .into_iter()
            .map(|backend| ReplicaSlot {
                local: backend.as_plain_local().map(LocalShard::read_twin),
                backend: Arc::from(backend),
                breaker: CircuitBreaker::new(policy.breaker_threshold, policy.breaker_reset_ms),
                attempts: AtomicU64::new(0),
                failures: Counter::new(),
                retries: Counter::new(),
                hedges: Counter::new(),
                hedge_wins: Counter::new(),
                latency: Histogram::new(),
            })
            .collect::<Vec<_>>();
        Ok(Self {
            slots: Arc::from(slots),
            rng: AtomicU64::new(policy.jitter_seed),
            synchronous: policy.is_synchronous(),
            policy,
        })
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.slots.len()
    }

    /// The policy this set dispatches under.
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    /// The replica to try next: the first breaker-admitted slot,
    /// preferring one different from `avoid` (the slot that just
    /// failed). With every breaker refusing, traffic is forced to the
    /// slot after `avoid` — answering from a possibly-broken replica
    /// beats refusing outright, and the dispatch outcome feeds the
    /// breaker for recovery.
    fn pick(&self, avoid: Option<usize>) -> usize {
        let n = self.slots.len();
        for (i, slot) in self.slots.iter().enumerate() {
            if Some(i) != avoid && slot.breaker.allow() {
                return i;
            }
        }
        if let Some(prev) = avoid {
            if self.slots[prev].breaker.allow() {
                return prev;
            }
            return (prev + 1) % n;
        }
        0
    }

    /// A second replica for a hedged attempt: breaker-admitted and
    /// different from `primary`, or `None` when the set has no
    /// admissible sibling (hedging is skipped, not forced).
    fn pick_hedge(&self, primary: usize) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .find(|(i, slot)| *i != primary && slot.breaker.allow())
            .map(|(i, _)| i)
    }

    /// The retry/hedge path for idempotent requests.
    #[inline]
    fn dispatch_resilient(&self, request: &Request) -> Response {
        // The healthy fast path — synchronous policy, preferred
        // replica's breaker quiet (closed, zero streak), tick not
        // sampled — does one unrecorded inner dispatch: the tick bump
        // is the only bookkeeping, because a success reported to a
        // quiet breaker is a no-op by construction. Everything else
        // (sampling, failures, non-quiet breakers) falls through to the
        // recorded path. Against a ~60 ns local lookup this is the
        // difference between passing and failing the suite's ≤ 1.10x
        // overhead gate.
        if self.synchronous {
            if let Some(first) = self.slots.first() {
                if first.breaker.is_quiet() {
                    let tick = first.attempts.load(Ordering::Relaxed);
                    if !tick.is_multiple_of(LATENCY_SAMPLE_EVERY) {
                        first.attempts.store(tick + 1, Ordering::Relaxed);
                        // Static dispatch through the read twin when the
                        // member is a plain local shard — every request
                        // reaching this path is idempotent, and those all
                        // serve off the shared handle, so the answer is
                        // bit-identical to the member's.
                        let response = match &first.local {
                            Some(local) => local.dispatch(request),
                            None => first.backend.dispatch(request),
                        };
                        if !is_transport_failure(&response) {
                            return response;
                        }
                        first.failures.inc();
                        first.breaker.record_failure();
                        return self.dispatch_retry(request, Some(0), response);
                    }
                }
                if first.breaker.allow() {
                    let (response, failed) = first.dispatch_recorded(request);
                    if !failed {
                        return response;
                    }
                    return self.dispatch_retry(request, Some(0), response);
                }
            }
        }
        let slot = self.pick(None);
        let (response, failed) = if self.policy.is_synchronous() {
            self.slots[slot].dispatch_recorded(request)
        } else {
            self.dispatch_raced(slot, request)
        };
        if !failed {
            return response;
        }
        self.dispatch_retry(request, Some(slot), response)
    }

    /// Attempts 2..N after `failed_slot`'s first attempt came back as a
    /// transport failure (`last_failure`).
    #[cold]
    fn dispatch_retry(
        &self,
        request: &Request,
        failed_slot: Option<usize>,
        last_failure: Response,
    ) -> Response {
        // The jitter stream is only consulted on a retry, so the
        // (locked) draw from the shared seed stays off the
        // first-attempt hot path.
        let mut rng = self.rng.fetch_add(0x9E37_79B9, Ordering::Relaxed);
        let mut last_failure = last_failure;
        let mut avoid = failed_slot;
        for attempt in 1..self.policy.max_attempts {
            let backoff = self.policy.backoff(attempt - 1, &mut rng);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            let slot = self.pick(avoid);
            self.slots[slot].retries.inc();
            let (response, failed) = if self.policy.is_synchronous() {
                self.slots[slot].dispatch_recorded(request)
            } else {
                self.dispatch_raced(slot, request)
            };
            if !failed {
                return response;
            }
            avoid = Some(slot);
            last_failure = response;
        }
        last_failure
    }

    /// One attempt on a helper thread, raced against the policy's hedge
    /// threshold and per-attempt deadline. Returns `(response, failed)`
    /// like the sync path; a deadline expiry counts as a failure for
    /// the retry loop but records nothing on the breaker — the helper
    /// thread reports the attempt's true outcome whenever the transport
    /// finally answers.
    fn dispatch_raced(&self, primary: usize, request: &Request) -> (Response, bool) {
        let (tx, rx) = mpsc::channel();
        self.spawn_attempt(primary, request, tx.clone());
        let started = Instant::now();
        let deadline = self.policy.attempt_deadline_ms.map(Duration::from_millis);
        let mut in_flight = 1usize;
        let mut last_failure: Option<Response> = None;

        // Phase one: give the primary its head start, then hedge. A
        // primary that *fails* within the head start also triggers the
        // hedge — there is no point waiting out the threshold.
        if let Some(hedge_after) = self.policy.hedge_after_ms.map(Duration::from_millis) {
            let wait = match deadline {
                Some(d) => hedge_after.min(d),
                None => hedge_after,
            };
            match rx.recv_timeout(wait) {
                Ok((_, response, failed)) => {
                    if !failed {
                        return (response, false);
                    }
                    in_flight -= 1;
                    last_failure = Some(response);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return (helper_died_error(), true);
                }
            }
            if let Some(hedge) = self.pick_hedge(primary) {
                self.slots[hedge].hedges.inc();
                self.spawn_attempt(hedge, request, tx.clone());
                in_flight += 1;
            }
        }
        drop(tx);

        // Phase two: first healthy answer wins; a failed answer waits
        // for any sibling still in flight.
        while in_flight > 0 {
            let wait = match deadline {
                Some(d) => match d.checked_sub(started.elapsed()) {
                    Some(left) => left,
                    None => break,
                },
                None => Duration::from_secs(3600),
            };
            match rx.recv_timeout(wait) {
                Ok((slot, response, failed)) => {
                    in_flight -= 1;
                    if !failed {
                        if slot != primary {
                            self.slots[slot].hedge_wins.inc();
                        }
                        return (response, false);
                    }
                    last_failure = Some(response);
                }
                Err(_) => break,
            }
        }
        match last_failure {
            Some(response) => (response, true),
            None => (
                Response::error(
                    ErrorCode::Internal,
                    format!(
                        "replica set: attempt deadline of {} ms expired",
                        self.policy.attempt_deadline_ms.unwrap_or(0)
                    ),
                ),
                true,
            ),
        }
    }

    /// Runs one recorded attempt on a detached thread. The thread owns
    /// clones of the slot vector and request, so it can outlive this
    /// dispatch (an abandoned attempt still reports its outcome to the
    /// breaker and counters when the transport answers).
    fn spawn_attempt(
        &self,
        slot: usize,
        request: &Request,
        tx: mpsc::Sender<(usize, Response, bool)>,
    ) {
        let slots = Arc::clone(&self.slots);
        let request = request.clone();
        std::thread::spawn(move || {
            let (response, failed) = slots[slot].dispatch_recorded(&request);
            let _ = tx.send((slot, response, failed));
        });
    }

    /// The all-must-succeed broadcast for non-idempotent requests:
    /// every replica applies the write / barrier message; the first
    /// transport failure is returned verbatim so the coordinator's
    /// two-phase barrier aborts exactly as with a plain dead shard.
    fn dispatch_broadcast(&self, request: &Request) -> Response {
        let mut first: Option<Response> = None;
        for slot in self.slots.iter() {
            let (response, failed) = slot.dispatch_recorded(request);
            if failed {
                return response;
            }
            first.get_or_insert(response);
        }
        first.expect("replica sets are non-empty by construction")
    }

    /// This set's entry for the coordinator's health surface. The
    /// `shard` index is 0 here; the coordinator overwrites it with the
    /// slot's topology position.
    fn health_body(&self) -> ShardHealthBody {
        let replicas: Vec<ReplicaHealthBody> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, slot)| slot.health(i))
            .collect();
        let closed = self
            .slots
            .iter()
            .filter(|slot| slot.breaker.is_closed())
            .count();
        let state = if closed == self.slots.len() {
            "up"
        } else if closed > 0 {
            "degraded"
        } else {
            "down"
        };
        ShardHealthBody {
            shard: 0,
            kind: "replicas".into(),
            addr: self.descriptor().addr,
            state: state.into(),
            replicas,
        }
    }
}

impl ShardBackend for ReplicaSet {
    fn dispatch(&self, request: &Request) -> Response {
        if is_idempotent(request) {
            self.dispatch_resilient(request)
        } else {
            self.dispatch_broadcast(request)
        }
    }

    fn descriptor(&self) -> ShardDescriptor {
        let members: Vec<String> = self
            .slots
            .iter()
            .map(|slot| {
                let d = slot.backend.descriptor();
                d.addr.unwrap_or_else(|| d.kind.to_string())
            })
            .collect();
        ShardDescriptor {
            kind: "replicas",
            addr: Some(members.join(",")),
        }
    }

    /// The highest member generation: any admitted replica serves it
    /// after a commit barrier (members move in lockstep), and a dead
    /// member's 0 must not mask the fleet's progress.
    fn generation(&self) -> u64 {
        self.slots
            .iter()
            .map(|slot| slot.backend.generation())
            .max()
            .unwrap_or(0)
    }

    fn transport_stats(&self) -> Option<TransportStats> {
        let mut total = TransportStats::default();
        let mut any = false;
        for slot in self.slots.iter() {
            if let Some(stats) = slot.backend.transport_stats() {
                total.reconnects += stats.reconnects;
                total.failures += stats.failures;
                any = true;
            }
        }
        any.then_some(total)
    }

    fn health(&self) -> Option<ShardHealthBody> {
        Some(self.health_body())
    }
}

fn helper_died_error() -> Response {
    Response::error(
        ErrorCode::Internal,
        "replica set: attempt helper thread died before answering",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosShard;
    use fsi_proto::StatsBody;
    use std::sync::Mutex;

    /// A scriptable in-process backend: answers `Stats` with a fixed
    /// generation, fails while `down`, and logs every request kind.
    struct StubShard {
        generation: u64,
        down: std::sync::atomic::AtomicBool,
        log: Mutex<Vec<String>>,
    }

    impl StubShard {
        fn new(generation: u64) -> Self {
            Self {
                generation,
                down: std::sync::atomic::AtomicBool::new(false),
                log: Mutex::new(Vec::new()),
            }
        }

        fn kind_of(request: &Request) -> &'static str {
            match request {
                Request::Lookup { .. } => "lookup",
                Request::Stats => "stats",
                Request::RebuildCommit => "commit",
                Request::Ingest { .. } => "ingest",
                _ => "other",
            }
        }
    }

    impl ShardBackend for StubShard {
        fn dispatch(&self, request: &Request) -> Response {
            self.log
                .lock()
                .unwrap()
                .push(Self::kind_of(request).to_string());
            if self.down.load(Ordering::Acquire) {
                return Response::error(ErrorCode::Internal, "stub: down");
            }
            match request {
                Request::Stats => Response::Stats {
                    stats: Box::new(StatsBody {
                        shards: 1,
                        generations: vec![self.generation],
                        num_leaves: 1,
                        heap_bytes: 1,
                        backend: "tree".into(),
                        cache: None,
                        per_shard: None,
                        metrics: None,
                        health: None,
                    }),
                },
                Request::RebuildCommit => Response::Committed {
                    generation: self.generation + 1,
                },
                _ => Response::error(ErrorCode::OutOfBounds, "stub: semantic error"),
            }
        }

        fn descriptor(&self) -> ShardDescriptor {
            ShardDescriptor {
                kind: "local",
                addr: None,
            }
        }

        fn generation(&self) -> u64 {
            self.generation
        }
    }

    fn fast_policy() -> ResiliencePolicy {
        ResiliencePolicy {
            max_attempts: 3,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            jitter_frac: 0.0,
            breaker_threshold: 2,
            breaker_reset_ms: 30,
            ..ResiliencePolicy::default()
        }
    }

    fn set_of(stubs: Vec<Box<dyn ShardBackend>>, policy: ResiliencePolicy) -> ReplicaSet {
        ReplicaSet::new(stubs, policy).unwrap()
    }

    #[test]
    fn construction_validates_policy_and_members() {
        let Err(e) = ReplicaSet::new(Vec::new(), ResiliencePolicy::default()) else {
            panic!("an empty member list must be rejected");
        };
        assert_eq!(e, ResilError::EmptyReplicaSet);
        let bad = ResiliencePolicy {
            max_attempts: 0,
            ..ResiliencePolicy::default()
        };
        assert!(matches!(
            ReplicaSet::new(vec![Box::new(StubShard::new(1))], bad),
            Err(ResilError::InvalidPolicy(_))
        ));
    }

    #[test]
    fn idempotent_requests_fail_over_to_the_sibling() {
        let dead = ChaosShard::new(Box::new(StubShard::new(3)));
        let switch = dead.switch();
        switch.set_down(true);
        let set = set_of(
            vec![Box::new(dead), Box::new(StubShard::new(3))],
            fast_policy(),
        );
        let response = set.dispatch(&Request::Stats);
        let Response::Stats { stats } = response else {
            panic!("failover must surface the healthy replica's answer, got {response:?}");
        };
        assert_eq!(stats.generations, vec![3]);
        let health = ShardBackend::health(&set).unwrap();
        assert_eq!(health.replicas[0].failures, 1);
        assert_eq!(health.replicas[1].retries, 1);
    }

    #[test]
    fn semantic_errors_are_answers_not_failures() {
        let set = set_of(
            vec![Box::new(StubShard::new(1)), Box::new(StubShard::new(1))],
            fast_policy(),
        );
        let response = set.dispatch(&Request::Lookup { x: 9.0, y: 9.0 });
        let Response::Error { error } = response else {
            panic!("expected the semantic error through");
        };
        assert_eq!(error.code, ErrorCode::OutOfBounds);
        let health = ShardBackend::health(&set).unwrap();
        assert_eq!(
            (health.replicas[0].failures, health.replicas[1].attempts),
            (0, 0),
            "a semantic error must not trip retries or the breaker"
        );
    }

    #[test]
    fn breaker_opens_after_streak_and_recovers_through_half_open() {
        let flaky = ChaosShard::new(Box::new(StubShard::new(7)));
        let switch = flaky.switch();
        let set = set_of(
            vec![Box::new(flaky), Box::new(StubShard::new(7))],
            fast_policy(),
        );
        switch.set_down(true);
        // Two failed attempts (threshold) open replica 0's breaker;
        // traffic then routes straight to replica 1.
        for _ in 0..3 {
            assert!(!set.dispatch(&Request::Stats).is_error());
        }
        let health = ShardBackend::health(&set).unwrap();
        assert_eq!(health.state, "degraded");
        assert_eq!(health.replicas[0].state, "open");
        assert_eq!(health.replicas[0].opens, 1);
        let attempts_while_open = health.replicas[0].attempts;
        assert!(!set.dispatch(&Request::Stats).is_error());
        assert_eq!(
            ShardBackend::health(&set).unwrap().replicas[0].attempts,
            attempts_while_open,
            "an open breaker sheds all traffic"
        );
        // Replica heals; after the reset window one probe re-closes it.
        switch.set_down(false);
        std::thread::sleep(Duration::from_millis(40));
        for _ in 0..4 {
            assert!(!set.dispatch(&Request::Stats).is_error());
        }
        let health = ShardBackend::health(&set).unwrap();
        assert_eq!(health.state, "up");
        assert_eq!(health.replicas[0].state, "closed");
        assert_eq!(health.replicas[0].half_opens, 1);
        assert_eq!(health.replicas[0].closes, 1);
    }

    #[test]
    fn non_idempotent_requests_broadcast_to_every_replica() {
        let a = StubShard::new(4);
        let b = StubShard::new(4);
        let set = set_of(vec![Box::new(a), Box::new(b)], fast_policy());
        let response = set.dispatch(&Request::RebuildCommit);
        assert_eq!(response, Response::Committed { generation: 5 });
        let health = ShardBackend::health(&set).unwrap();
        assert_eq!(
            (health.replicas[0].attempts, health.replicas[1].attempts),
            (1, 1),
            "barrier messages must reach every replica"
        );
    }

    #[test]
    fn broadcast_surfaces_the_first_failure_for_the_barrier() {
        let dead = ChaosShard::new(Box::new(StubShard::new(4)));
        dead.switch().set_down(true);
        let set = set_of(
            vec![Box::new(StubShard::new(4)), Box::new(dead)],
            fast_policy(),
        );
        let response = set.dispatch(&Request::RebuildCommit);
        let Response::Error { error } = response else {
            panic!("a dead replica must fail the barrier, got {response:?}");
        };
        assert_eq!(error.code, ErrorCode::Internal);
        let health = ShardBackend::health(&set).unwrap();
        assert_eq!(health.replicas[1].failures, 1);
    }

    #[test]
    fn hedged_dispatch_races_a_slow_primary() {
        let slow = ChaosShard::new(Box::new(StubShard::new(9))).delay(Duration::from_millis(80));
        let policy = ResiliencePolicy {
            hedge_after_ms: Some(5),
            ..fast_policy()
        };
        let set = set_of(vec![Box::new(slow), Box::new(StubShard::new(9))], policy);
        let start = Instant::now();
        let response = set.dispatch(&Request::Stats);
        assert!(!response.is_error());
        assert!(
            start.elapsed() < Duration::from_millis(60),
            "the hedge must answer before the slow primary ({:?})",
            start.elapsed()
        );
        // The late primary still reports back eventually; wait for it
        // so its detached thread finishes before the test ends.
        std::thread::sleep(Duration::from_millis(100));
        let health = ShardBackend::health(&set).unwrap();
        assert_eq!(health.replicas[1].hedges, 1);
        assert_eq!(health.replicas[1].hedge_wins, 1);
    }

    #[test]
    fn attempt_deadline_fails_over_without_hedging() {
        let slow = ChaosShard::new(Box::new(StubShard::new(2))).delay(Duration::from_millis(120));
        let policy = ResiliencePolicy {
            attempt_deadline_ms: Some(10),
            ..fast_policy()
        };
        let set = set_of(vec![Box::new(slow), Box::new(StubShard::new(2))], policy);
        let response = set.dispatch(&Request::Stats);
        let Response::Stats { stats } = response else {
            panic!("deadline expiry must fail over, got {response:?}");
        };
        assert_eq!(stats.generations, vec![2]);
        std::thread::sleep(Duration::from_millis(150));
    }

    #[test]
    fn descriptor_generation_and_health_aggregate_members() {
        let set = set_of(
            vec![Box::new(StubShard::new(3)), Box::new(StubShard::new(5))],
            fast_policy(),
        );
        let descriptor = set.descriptor();
        assert_eq!(descriptor.kind, "replicas");
        assert_eq!(descriptor.addr.as_deref(), Some("local,local"));
        assert_eq!(
            set.generation(),
            5,
            "a lagging member must not mask progress"
        );
        assert_eq!(set.replicas(), 2);
        let health = ShardBackend::health(&set).unwrap();
        assert_eq!(health.kind, "replicas");
        assert_eq!(health.state, "up");
        assert_eq!(health.replicas.len(), 2);
        assert!(set.transport_stats().is_none(), "stubs have no transport");
    }
}
