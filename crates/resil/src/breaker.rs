//! A consecutive-failure circuit breaker with half-open probing.

use fsi_obs::Counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const CLOSED: u64 = 0;
const OPEN: u64 = 1;
const HALF_OPEN: u64 = 2;

/// State lives in the low bits of the packed word, the consecutive
/// failure streak in the high bits.
const STATE_MASK: u64 = 0xFF;
const STREAK_ONE: u64 = 1 << 8;

#[inline]
fn state_of(packed: u64) -> u64 {
    packed & STATE_MASK
}

#[inline]
fn streak_of(packed: u64) -> u64 {
    packed >> 8
}

/// Per-replica admission control: after `threshold` consecutive
/// transport failures the breaker *opens* and traffic is steered away;
/// after `reset_ms` one *half-open* probe is let through, and its
/// outcome either re-closes the breaker or re-opens it for another
/// reset window.
///
/// Lock-free — state and the failure streak share one packed
/// `AtomicU64` (state in the low byte, streak above it), so the healthy
/// hot path answers both "is the breaker closed?" and "is the streak
/// zero?" with a single load: the packed word is `0` exactly when the
/// breaker is quiet. Every transition is counted
/// ([`CircuitBreaker::opens`], [`CircuitBreaker::half_opens`],
/// [`CircuitBreaker::closes`]), which is what lets the kill-a-replica
/// storm test assert the closed→open→half-open→closed cycle post-hoc
/// from a `/metrics` scrape.
pub struct CircuitBreaker {
    threshold: u64,
    reset_ms: u64,
    /// `streak << 8 | state`; `0` = closed with a zero streak.
    packed: AtomicU64,
    /// When the breaker last entered `OPEN` or `HALF_OPEN`, in
    /// milliseconds since `epoch`.
    since_ms: AtomicU64,
    epoch: Instant,
    opens: Counter,
    half_opens: Counter,
    closes: Counter,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures and probes every `reset_ms`.
    pub fn new(threshold: u32, reset_ms: u64) -> Self {
        Self {
            threshold: u64::from(threshold.max(1)),
            reset_ms: reset_ms.max(1),
            packed: AtomicU64::new(CLOSED),
            since_ms: AtomicU64::new(0),
            epoch: Instant::now(),
            opens: Counter::default(),
            half_opens: Counter::default(),
            closes: Counter::default(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Whether a request may be sent to this replica right now. On an
    /// open breaker whose reset window has elapsed, the *calling*
    /// attempt becomes the half-open probe (the transition is
    /// compare-and-swapped, so exactly one concurrent caller wins it).
    #[inline]
    pub fn allow(&self) -> bool {
        let packed = self.packed.load(Ordering::Acquire);
        match state_of(packed) {
            CLOSED => true,
            OPEN => {
                let since = self.since_ms.load(Ordering::Acquire);
                if self.now_ms().saturating_sub(since) < self.reset_ms {
                    return false;
                }
                let won = self
                    .packed
                    .compare_exchange(
                        packed,
                        streak_of(packed) << 8 | HALF_OPEN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                if won {
                    self.since_ms.store(self.now_ms(), Ordering::Release);
                    self.half_opens.inc();
                }
                won
            }
            _ => {
                // Half-open: one probe is in flight. If it never reports
                // back (an abandoned hedge, a killed thread), re-admit a
                // probe after another reset window so the breaker cannot
                // wedge.
                let since = self.since_ms.load(Ordering::Acquire);
                if self.now_ms().saturating_sub(since) < self.reset_ms {
                    return false;
                }
                self.since_ms
                    .compare_exchange(since, self.now_ms(), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            }
        }
    }

    /// Reports a successful attempt: resets the failure streak, and a
    /// half-open probe's success re-closes the breaker. Success while
    /// *open* (a straggler from before the trip, or a forced dispatch
    /// when every replica is open) does not close it — recovery always
    /// goes through the half-open probe, keeping the transition cycle
    /// canonical.
    #[inline]
    pub fn record_success(&self) {
        // Hot path: a healthy replica's packed word is 0 (closed, zero
        // streak) and reporting its success must cost one load — a
        // store (or a failing CAS, still a locked RMW) here would tax
        // every dispatch for the benefit of the rare recovery.
        let packed = self.packed.load(Ordering::Acquire);
        if packed == CLOSED {
            return;
        }
        match state_of(packed) {
            CLOSED => {
                // Non-zero streak: reset it (losing a concurrent
                // failure's increment is fine — streaks are heuristic).
                let _ = self.packed.compare_exchange(
                    packed,
                    CLOSED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
            // A successful probe re-closes the breaker (a lost CAS means
            // a concurrent failure re-opened it first, which wins).
            HALF_OPEN
                if self
                    .packed
                    .compare_exchange(packed, CLOSED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok() =>
            {
                self.closes.inc();
            }
            _ => {}
        }
    }

    /// Reports a failed attempt: a half-open probe's failure re-opens
    /// the breaker immediately; a closed breaker opens once the streak
    /// reaches the threshold.
    pub fn record_failure(&self) {
        let packed = self.packed.load(Ordering::Acquire);
        match state_of(packed) {
            // A failed probe re-opens immediately (a lost CAS means a
            // concurrent success re-closed it first, which wins).
            HALF_OPEN
                if self
                    .packed
                    .compare_exchange(
                        packed,
                        streak_of(packed) << 8 | OPEN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok() =>
            {
                self.since_ms.store(self.now_ms(), Ordering::Release);
                self.opens.inc();
            }
            CLOSED => {
                let streak = streak_of(self.packed.fetch_add(STREAK_ONE, Ordering::AcqRel)) + 1;
                if streak >= self.threshold {
                    let current = self.packed.load(Ordering::Acquire);
                    if state_of(current) == CLOSED
                        && self
                            .packed
                            .compare_exchange(
                                current,
                                streak_of(current) << 8 | OPEN,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                    {
                        self.since_ms.store(self.now_ms(), Ordering::Release);
                        self.opens.inc();
                    }
                }
            }
            _ => {}
        }
    }

    /// Whether the breaker is closed with a zero failure streak — the
    /// steady state of a healthy replica, answerable with one load
    /// (the packed word is `0`). While quiet, reporting a success is a
    /// provable no-op, which lets the dispatch fast path skip breaker
    /// bookkeeping entirely.
    #[inline]
    pub fn is_quiet(&self) -> bool {
        self.packed.load(Ordering::Acquire) == CLOSED
    }

    /// The state's wire name: `"closed"`, `"open"` or `"half_open"`.
    pub fn state_name(&self) -> &'static str {
        match state_of(self.packed.load(Ordering::Acquire)) {
            CLOSED => "closed",
            OPEN => "open",
            _ => "half_open",
        }
    }

    /// Whether the breaker is currently closed (full traffic).
    pub fn is_closed(&self) -> bool {
        state_of(self.packed.load(Ordering::Acquire)) == CLOSED
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self) -> u64 {
        streak_of(self.packed.load(Ordering::Acquire))
    }

    /// Transitions into `open` so far.
    pub fn opens(&self) -> u64 {
        self.opens.get()
    }

    /// Transitions into `half_open` so far.
    pub fn half_opens(&self) -> u64 {
        self.half_opens.get()
    }

    /// Re-closes (successful probes) so far.
    pub fn closes(&self) -> u64 {
        self.closes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, 10_000);
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state_name(), "closed");
        assert!(b.allow(), "still closed below the threshold");
        // A success resets the streak.
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state_name(), "closed");
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert!(!b.allow(), "open breaker sheds traffic");
        assert_eq!(b.opens(), 1);
        assert_eq!(b.consecutive_failures(), 3);
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let b = CircuitBreaker::new(1, 20);
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(25));
        // The reset window elapsed: exactly one caller wins the probe.
        assert!(b.allow());
        assert_eq!(b.state_name(), "half_open");
        assert!(!b.allow(), "only one probe at a time");
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opens(), 2);
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert!(b.is_closed());
        assert!(b.is_quiet());
        assert_eq!((b.half_opens(), b.closes()), (2, 1));
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn success_while_open_does_not_shortcut_the_cycle() {
        let b = CircuitBreaker::new(1, 10_000);
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        b.record_success();
        assert_eq!(
            b.state_name(),
            "open",
            "recovery must go through the half-open probe"
        );
    }

    #[test]
    fn quiet_tracks_state_and_streak() {
        let b = CircuitBreaker::new(3, 10_000);
        assert!(b.is_quiet());
        b.record_failure();
        assert!(b.is_closed(), "one failure under the threshold");
        assert!(!b.is_quiet(), "a non-zero streak is not quiet");
        b.record_success();
        assert!(b.is_quiet(), "a success resets the streak");
    }

    #[test]
    fn wedged_half_open_readmits_a_probe_after_the_reset_window() {
        let b = CircuitBreaker::new(1, 20);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(), "first probe admitted");
        // The probe never reports back; after another window a new
        // probe is admitted instead of wedging forever.
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(), "replacement probe admitted");
    }
}
