//! Error type of the resilience layer.

use std::fmt;

/// Why a resilience component refused to construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilError {
    /// A [`crate::ResiliencePolicy`] knob failed validation.
    InvalidPolicy(String),
    /// A [`crate::ReplicaSet`] was given no members.
    EmptyReplicaSet,
}

impl fmt::Display for ResilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilError::InvalidPolicy(detail) => write!(f, "invalid resilience policy: {detail}"),
            ResilError::EmptyReplicaSet => {
                write!(f, "a replica set needs at least one member backend")
            }
        }
    }
}

impl std::error::Error for ResilError {}
