//! The validated, serde-round-trippable resilience policy.

use crate::error::ResilError;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How a [`crate::ReplicaSet`] treats failures: how often to retry, how
/// long to back off, when to hedge, and when to stop sending traffic to
/// a replica altogether.
///
/// All durations are whole milliseconds so the policy stays a flat,
/// hand-editable JSON object (`redistricting_cli serve --resilience
/// policy.json` reads one). `Option` knobs switch a feature off when
/// absent, which also keeps older policy files decoding as they gain
/// fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// Attempts per idempotent request across the replica set (first
    /// try included). Non-idempotent requests are never retried.
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds. `0` retries
    /// immediately.
    pub backoff_base_ms: u64,
    /// Multiplier applied to the backoff per further retry (≥ 1).
    pub backoff_multiplier: f64,
    /// Upper bound on any single backoff, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Fraction of each backoff added as deterministic jitter, in
    /// `[0, 1]`. Jitter is drawn from a seeded splitmix64 stream, so a
    /// test replays the identical schedule.
    pub jitter_frac: f64,
    /// Seed of the jitter stream.
    pub jitter_seed: u64,
    /// Per-attempt deadline in milliseconds; an attempt that has not
    /// answered by then counts as failed and the next attempt starts.
    /// Absent = wait for the transport. Enabling this moves dispatch
    /// onto a helper thread — see [`crate::ReplicaSet`] for the cost.
    pub attempt_deadline_ms: Option<u64>,
    /// Hedge threshold in milliseconds: when the primary attempt has
    /// not answered by then, a speculative duplicate is sent to another
    /// replica and the first answer wins. Absent = never hedge. Only
    /// idempotent requests are ever hedged.
    pub hedge_after_ms: Option<u64>,
    /// Consecutive transport failures that open a replica's circuit
    /// breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker blocks traffic before letting one
    /// half-open probe through, in milliseconds.
    pub breaker_reset_ms: u64,
}

impl Default for ResiliencePolicy {
    /// Conservative defaults: three attempts with 5 ms → 10 ms → 20 ms
    /// backoff (+20 % jitter), no deadline, no hedging, breaker opens
    /// after 3 consecutive failures and probes every 250 ms.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_ms: 5,
            backoff_multiplier: 2.0,
            backoff_cap_ms: 200,
            jitter_frac: 0.2,
            jitter_seed: 0x5eed_cafe,
            attempt_deadline_ms: None,
            hedge_after_ms: None,
            breaker_threshold: 3,
            breaker_reset_ms: 250,
        }
    }
}

impl ResiliencePolicy {
    /// Checks every knob; [`crate::ReplicaSet::new`] runs this before
    /// accepting a policy, and CLIs run it right after decoding a file.
    pub fn validate(&self) -> Result<(), ResilError> {
        if self.max_attempts == 0 {
            return Err(ResilError::InvalidPolicy(
                "max_attempts must be at least 1".into(),
            ));
        }
        if !self.backoff_multiplier.is_finite() || self.backoff_multiplier < 1.0 {
            return Err(ResilError::InvalidPolicy(format!(
                "backoff_multiplier must be a finite number ≥ 1, got {}",
                self.backoff_multiplier
            )));
        }
        if self.backoff_cap_ms < self.backoff_base_ms {
            return Err(ResilError::InvalidPolicy(format!(
                "backoff_cap_ms ({}) must be ≥ backoff_base_ms ({})",
                self.backoff_cap_ms, self.backoff_base_ms
            )));
        }
        if !self.jitter_frac.is_finite() || !(0.0..=1.0).contains(&self.jitter_frac) {
            return Err(ResilError::InvalidPolicy(format!(
                "jitter_frac must be in [0, 1], got {}",
                self.jitter_frac
            )));
        }
        if self.attempt_deadline_ms == Some(0) {
            return Err(ResilError::InvalidPolicy(
                "attempt_deadline_ms must be positive when set (omit it to disable)".into(),
            ));
        }
        if self.hedge_after_ms == Some(0) {
            return Err(ResilError::InvalidPolicy(
                "hedge_after_ms must be positive when set (omit it to disable)".into(),
            ));
        }
        if self.breaker_threshold == 0 {
            return Err(ResilError::InvalidPolicy(
                "breaker_threshold must be at least 1".into(),
            ));
        }
        if self.breaker_reset_ms == 0 {
            return Err(ResilError::InvalidPolicy(
                "breaker_reset_ms must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Whether dispatch can stay on the calling thread: with no hedge
    /// threshold and no per-attempt deadline there is nothing to race
    /// against, so the replica set skips thread + channel entirely —
    /// the fast path the `serving/resil_overhead` benchmark bounds.
    pub fn is_synchronous(&self) -> bool {
        self.hedge_after_ms.is_none() && self.attempt_deadline_ms.is_none()
    }

    /// The backoff before retry number `retry` (0-based), jittered from
    /// `rng` (a splitmix64 state, advanced in place).
    pub fn backoff(&self, retry: u32, rng: &mut u64) -> Duration {
        let base = self.backoff_base_ms as f64 * self.backoff_multiplier.powi(retry as i32);
        let capped = base.min(self.backoff_cap_ms as f64);
        let jitter = capped * self.jitter_frac * unit_f64(splitmix64(rng));
        Duration::from_nanos(((capped + jitter) * 1e6) as u64)
    }
}

/// One step of the splitmix64 generator — the crate's only randomness,
/// fully determined by its seed so failure schedules replay exactly.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a draw to `[0, 1)` using the top 53 bits.
pub(crate) fn unit_f64(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_validates_and_round_trips() {
        let policy = ResiliencePolicy::default();
        policy.validate().unwrap();
        assert!(policy.is_synchronous());
        let json = serde_json::to_string(&policy).unwrap();
        let back: ResiliencePolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(policy, back);
    }

    #[test]
    fn optional_knobs_decode_when_absent() {
        // A policy file written before deadlines/hedging existed (or
        // simply omitting them) must decode with the features off.
        let wire = r#"{
            "max_attempts": 2,
            "backoff_base_ms": 1,
            "backoff_multiplier": 1.5,
            "backoff_cap_ms": 10,
            "jitter_frac": 0.0,
            "jitter_seed": 7,
            "breaker_threshold": 5,
            "breaker_reset_ms": 100
        }"#;
        let policy: ResiliencePolicy = serde_json::from_str(wire).unwrap();
        policy.validate().unwrap();
        assert_eq!(policy.attempt_deadline_ms, None);
        assert_eq!(policy.hedge_after_ms, None);
        assert!(policy.is_synchronous());
    }

    #[test]
    fn validation_rejects_each_bad_knob() {
        let ok = ResiliencePolicy::default();
        let cases: Vec<(&str, ResiliencePolicy)> = vec![
            (
                "max_attempts",
                ResiliencePolicy {
                    max_attempts: 0,
                    ..ok.clone()
                },
            ),
            (
                "backoff_multiplier",
                ResiliencePolicy {
                    backoff_multiplier: 0.5,
                    ..ok.clone()
                },
            ),
            (
                "backoff_multiplier",
                ResiliencePolicy {
                    backoff_multiplier: f64::NAN,
                    ..ok.clone()
                },
            ),
            (
                "backoff_cap_ms",
                ResiliencePolicy {
                    backoff_base_ms: 50,
                    backoff_cap_ms: 10,
                    ..ok.clone()
                },
            ),
            (
                "jitter_frac",
                ResiliencePolicy {
                    jitter_frac: 1.5,
                    ..ok.clone()
                },
            ),
            (
                "attempt_deadline_ms",
                ResiliencePolicy {
                    attempt_deadline_ms: Some(0),
                    ..ok.clone()
                },
            ),
            (
                "hedge_after_ms",
                ResiliencePolicy {
                    hedge_after_ms: Some(0),
                    ..ok.clone()
                },
            ),
            (
                "breaker_threshold",
                ResiliencePolicy {
                    breaker_threshold: 0,
                    ..ok.clone()
                },
            ),
            (
                "breaker_reset_ms",
                ResiliencePolicy {
                    breaker_reset_ms: 0,
                    ..ok.clone()
                },
            ),
        ];
        for (knob, policy) in cases {
            let err = policy.validate().unwrap_err();
            assert!(err.to_string().contains(knob), "{knob}: {err}");
        }
    }

    #[test]
    fn backoff_grows_caps_and_replays_deterministically() {
        let policy = ResiliencePolicy {
            backoff_base_ms: 10,
            backoff_multiplier: 2.0,
            backoff_cap_ms: 40,
            jitter_frac: 0.0,
            ..ResiliencePolicy::default()
        };
        let mut rng = policy.jitter_seed;
        assert_eq!(policy.backoff(0, &mut rng), Duration::from_millis(10));
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(20));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(40));
        assert_eq!(
            policy.backoff(5, &mut rng),
            Duration::from_millis(40),
            "cap bounds every later retry"
        );
        // With jitter on, the same seed replays the same schedule and
        // stays within the jitter fraction of the base backoff.
        let jittered = ResiliencePolicy {
            jitter_frac: 0.2,
            ..policy
        };
        let (mut a, mut b) = (jittered.jitter_seed, jittered.jitter_seed);
        for retry in 0..4 {
            let first = jittered.backoff(retry, &mut a);
            let second = jittered.backoff(retry, &mut b);
            assert_eq!(first, second, "retry {retry}: same seed, same schedule");
            let flat = policy.backoff(retry, &mut { 0 });
            assert!(first >= flat && first <= flat.mul_f64(1.2), "retry {retry}");
        }
    }
}
