//! Isotonic-regression calibration (pool-adjacent-violators).
//!
//! The second classic post-processing calibrator next to Platt scaling
//! (§3's post-processing family): fit the best *monotone* map from raw
//! scores to probabilities by the PAV algorithm, then interpolate
//! piecewise-linearly between block centers. Non-parametric, so it fixes
//! calibration distortions a sigmoid cannot.

use crate::error::MlError;
use crate::metrics::validate_scores;
use serde::{Deserialize, Serialize};

/// A fitted isotonic calibration map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IsotonicCalibrator {
    /// Block centers in score space (ascending).
    xs: Vec<f64>,
    /// Calibrated values per block (non-decreasing).
    ys: Vec<f64>,
    fitted: bool,
}

impl Default for IsotonicCalibrator {
    fn default() -> Self {
        Self::new()
    }
}

impl IsotonicCalibrator {
    /// Creates an unfitted calibrator.
    pub fn new() -> Self {
        Self {
            xs: Vec::new(),
            ys: Vec::new(),
            fitted: false,
        }
    }

    /// Fits the monotone map with pool-adjacent-violators.
    pub fn fit(&mut self, scores: &[f64], labels: &[bool]) -> Result<(), MlError> {
        validate_scores(scores, labels)?;
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("validated finite"));

        // Blocks: (sum_y, weight, x_sum). Merge while monotonicity is
        // violated.
        struct Block {
            sum_y: f64,
            weight: f64,
            sum_x: f64,
        }
        let mut blocks: Vec<Block> = Vec::with_capacity(order.len());
        for &i in &order {
            blocks.push(Block {
                sum_y: f64::from(u8::from(labels[i])),
                weight: 1.0,
                sum_x: scores[i],
            });
            while blocks.len() >= 2 {
                let n = blocks.len();
                let mean_last = blocks[n - 1].sum_y / blocks[n - 1].weight;
                let mean_prev = blocks[n - 2].sum_y / blocks[n - 2].weight;
                if mean_prev <= mean_last {
                    break;
                }
                let last = blocks.pop().expect("len >= 2");
                let prev = blocks.last_mut().expect("len >= 1");
                prev.sum_y += last.sum_y;
                prev.weight += last.weight;
                prev.sum_x += last.sum_x;
            }
        }
        self.xs = blocks.iter().map(|b| b.sum_x / b.weight).collect();
        self.ys = blocks.iter().map(|b| b.sum_y / b.weight).collect();
        self.fitted = true;
        Ok(())
    }

    /// Applies the fitted map with piecewise-linear interpolation between
    /// block centers (clamped at the ends).
    pub fn transform(&self, scores: &[f64]) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        Ok(scores.iter().map(|&s| self.transform_one(s)).collect())
    }

    fn transform_one(&self, s: f64) -> f64 {
        let xs = &self.xs;
        let ys = &self.ys;
        if xs.is_empty() {
            return s;
        }
        if s <= xs[0] {
            return ys[0];
        }
        if s >= xs[xs.len() - 1] {
            return ys[ys.len() - 1];
        }
        // Binary search for the straddling pair.
        let mut lo = 0;
        let mut hi = xs.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if xs[mid] <= s {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = if xs[hi] > xs[lo] {
            (s - xs[lo]) / (xs[hi] - xs[lo])
        } else {
            0.0
        };
        ys[lo] + t * (ys[hi] - ys[lo])
    }

    /// Number of monotone blocks after pooling.
    pub fn num_blocks(&self) -> usize {
        self.xs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::miscalibration;

    #[test]
    fn transform_before_fit_errors() {
        let c = IsotonicCalibrator::new();
        assert!(matches!(c.transform(&[0.5]), Err(MlError::NotFitted)));
    }

    #[test]
    fn already_monotone_data_is_preserved() {
        // Scores perfectly ordered with labels: blocks stay separate at
        // the extremes.
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        let mut c = IsotonicCalibrator::new();
        c.fit(&scores, &labels).unwrap();
        let out = c.transform(&scores).unwrap();
        assert!(out[0] < 0.5 && out[3] > 0.5);
        assert!(out.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn violators_are_pooled() {
        // Decreasing label means violate monotonicity and must merge:
        // means 1.0 then 0.0 pool into a single block of 0.5.
        let scores = [0.2, 0.8];
        let labels = [true, false];
        let mut c = IsotonicCalibrator::new();
        c.fit(&scores, &labels).unwrap();
        assert_eq!(c.num_blocks(), 1);
        assert!(c
            .transform(&scores)
            .unwrap()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-12));
        // Constant labels produce constant output regardless of pooling.
        let mut c = IsotonicCalibrator::new();
        c.fit(&[0.1, 0.5, 0.9], &[true, true, true]).unwrap();
        assert!(c
            .transform(&[0.0, 0.3, 1.0])
            .unwrap()
            .iter()
            .all(|&v| v == 1.0));
    }

    #[test]
    fn output_is_monotone_in_input() {
        // Noisy labels: calibrated outputs must still be monotone in the
        // raw score.
        let scores: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let labels: Vec<bool> = (0..100).map(|i| (i * 7) % 10 < i / 12).collect();
        let mut c = IsotonicCalibrator::new();
        c.fit(&scores, &labels).unwrap();
        let out = c.transform(&scores).unwrap();
        assert!(out.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn improves_miscalibrated_scores() {
        // Systematically over-confident scores.
        let scores: Vec<f64> = (0..200)
            .map(|i| 0.6 + 0.35 * ((i % 20) as f64 / 20.0))
            .collect();
        let labels: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        let before = miscalibration(&scores, &labels).unwrap();
        let mut c = IsotonicCalibrator::new();
        c.fit(&scores, &labels).unwrap();
        let after = miscalibration(&c.transform(&scores).unwrap(), &labels).unwrap();
        assert!(after < before / 4.0, "before {before} after {after}");
    }

    #[test]
    fn extremes_are_clamped() {
        let scores = [0.4, 0.6];
        let labels = [false, true];
        let mut c = IsotonicCalibrator::new();
        c.fit(&scores, &labels).unwrap();
        let out = c.transform(&[0.0, 1.0]).unwrap();
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 1.0);
    }
}
