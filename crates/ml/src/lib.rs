//! # fsi-ml — from-scratch ML substrate for fair spatial indexing
//!
//! The paper evaluates its partitioners with three scikit-learn
//! classifiers: logistic regression, a decision tree, and naive Bayes. This
//! crate implements those model families from scratch, deterministic and
//! dependency-free, together with the supporting machinery:
//!
//! * [`Matrix`] — a dense row-major `f64` design matrix.
//! * [`StandardScaler`] — z-score standardization.
//! * [`Classifier`] — the common fit/score interface;
//!   every trainer supports **per-sample weights**, which is what the
//!   re-weighting baseline (Kamiran–Calders) requires.
//! * [`LogisticRegression`] — weighted batch
//!   gradient descent with L2 regularization.
//! * [`DecisionTree`] — weighted CART with Gini
//!   impurity; leaf scores are (Laplace-smoothed) positive fractions.
//! * [`GaussianNb`] — weighted Gaussian naive
//!   Bayes.
//! * [`metrics`] — accuracy, precision/recall/F1, ROC-AUC, Brier, log-loss.
//! * [`calibration`] — mis-calibration `|e−o|`, calibration ratio `e/o`,
//!   binned ECE (the paper's Appendix A.1, 15 bins), reliability curves,
//!   and Platt scaling (the post-processing baseline of §3).
//! * [`split`] — seeded train/test and k-fold splitting.
//!
//! Determinism: every stochastic routine takes an explicit seed; repeated
//! runs produce bit-identical models and scores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod dtree;
pub mod error;
pub mod isotonic;
pub mod logreg;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod naive_bayes;
pub mod rand_util;
pub mod scaler;
pub mod split;

pub use dtree::DecisionTree;
pub use error::MlError;
pub use logreg::LogisticRegression;
pub use matrix::Matrix;
pub use model::{Classifier, FittedModel};
pub use naive_bayes::GaussianNb;
pub use scaler::StandardScaler;
