//! Weighted Gaussian naive Bayes.

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::model::{validate_fit_inputs, Classifier};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`GaussianNb`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianNbConfig {
    /// Portion of the largest feature variance added to every variance for
    /// numerical stability (sklearn's `var_smoothing`).
    pub var_smoothing: f64,
}

impl Default for GaussianNbConfig {
    fn default() -> Self {
        Self {
            var_smoothing: 1e-9,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClassStats {
    log_prior: f64,
    means: Vec<f64>,
    vars: Vec<f64>,
}

/// Gaussian naive Bayes with per-sample weights.
///
/// Each feature is modeled as an independent Gaussian per class with
/// weighted means/variances; scores are posterior probabilities of the
/// positive class. If the training data contains a single class the model
/// degrades to a constant prior score rather than erroring, matching how
/// the iterative pipeline must behave on degenerate re-districting states.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianNb {
    config: GaussianNbConfig,
    /// `stats[0]` = negative class, `stats[1]` = positive class; a missing
    /// entry means the class was absent from training data.
    stats: [Option<ClassStats>; 2],
    n_features: usize,
    fitted: bool,
}

impl GaussianNb {
    /// Creates an unfitted model.
    pub fn new(config: GaussianNbConfig) -> Result<Self, MlError> {
        if !(config.var_smoothing >= 0.0 && config.var_smoothing.is_finite()) {
            return Err(MlError::InvalidHyperparameter(
                "var_smoothing must be non-negative".into(),
            ));
        }
        Ok(Self {
            config,
            stats: [None, None],
            n_features: 0,
            fitted: false,
        })
    }

    /// Creates an unfitted model with default hyper-parameters.
    pub fn with_defaults() -> Self {
        Self::new(GaussianNbConfig::default()).expect("default config is valid")
    }

    fn class_stats(
        x: &Matrix,
        members: &[usize],
        w: &[f64],
        log_prior: f64,
        floor: f64,
    ) -> ClassStats {
        let d = x.cols();
        let total_w: f64 = members.iter().map(|&i| w[i]).sum();
        let mut means = vec![0.0; d];
        for &i in members {
            for (m, v) in means.iter_mut().zip(x.row(i)) {
                *m += w[i] * v;
            }
        }
        for m in &mut means {
            *m /= total_w;
        }
        let mut vars = vec![0.0; d];
        for &i in members {
            for ((s, m), v) in vars.iter_mut().zip(&means).zip(x.row(i)) {
                let diff = v - m;
                *s += w[i] * diff * diff;
            }
        }
        for s in &mut vars {
            *s = *s / total_w + floor;
        }
        ClassStats {
            log_prior,
            means,
            vars,
        }
    }

    fn log_likelihood(stats: &ClassStats, row: &[f64]) -> f64 {
        let mut ll = stats.log_prior;
        for ((v, m), var) in row.iter().zip(&stats.means).zip(&stats.vars) {
            let diff = v - m;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn fit(
        &mut self,
        x: &Matrix,
        y: &[bool],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), MlError> {
        let w = validate_fit_inputs(x, y, sample_weight)?;
        let (mut neg, mut pos) = (Vec::new(), Vec::new());
        for (i, &label) in y.iter().enumerate() {
            if label {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        let total_w: f64 = w.iter().sum();
        let pos_w: f64 = pos.iter().map(|&i| w[i]).sum();
        let neg_w = total_w - pos_w;

        // Variance floor: var_smoothing times the largest overall variance.
        let n = x.rows() as f64;
        let mut max_var = 0.0f64;
        for c in 0..x.cols() {
            let col = x.column(c);
            let mean: f64 = col.iter().sum::<f64>() / n;
            let var: f64 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            max_var = max_var.max(var);
        }
        let floor = (self.config.var_smoothing * max_var).max(1e-12);

        self.stats = [None, None];
        if !neg.is_empty() && neg_w > 0.0 {
            self.stats[0] = Some(Self::class_stats(
                x,
                &neg,
                &w,
                (neg_w / total_w).ln(),
                floor,
            ));
        }
        if !pos.is_empty() && pos_w > 0.0 {
            self.stats[1] = Some(Self::class_stats(
                x,
                &pos,
                &w,
                (pos_w / total_w).ln(),
                floor,
            ));
        }
        self.n_features = x.cols();
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.cols(),
                what: "feature columns",
            });
        }
        x.ensure_finite()?;
        let scores = x
            .iter_rows()
            .map(|row| match (&self.stats[0], &self.stats[1]) {
                (Some(neg), Some(pos)) => {
                    let ln = Self::log_likelihood(neg, row);
                    let lp = Self::log_likelihood(pos, row);
                    // Softmax over two log-likelihoods, stable form.
                    let m = ln.max(lp);
                    let en = (ln - m).exp();
                    let ep = (lp - m).exp();
                    ep / (en + ep)
                }
                (None, Some(_)) => 1.0,
                (Some(_), None) => 0.0,
                (None, None) => 0.5,
            })
            .collect();
        Ok(scores)
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 2-D.
    fn blobs() -> (Matrix, Vec<bool>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let jitter = (i as f64 * 0.618).fract() - 0.5;
            rows.push(vec![-2.0 + jitter, -2.0 - jitter]);
            y.push(false);
            rows.push(vec![2.0 - jitter, 2.0 + jitter]);
            y.push(true);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn config_validation() {
        let cfg = GaussianNbConfig {
            var_smoothing: -1.0,
        };
        assert!(GaussianNb::new(cfg).is_err());
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs();
        let mut m = GaussianNb::with_defaults();
        m.fit(&x, &y, None).unwrap();
        let preds = m.predict(&x, 0.5).unwrap();
        assert_eq!(preds, y);
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = blobs();
        let mut m = GaussianNb::with_defaults();
        m.fit(&x, &y, None).unwrap();
        assert!(m
            .predict_proba(&x)
            .unwrap()
            .iter()
            .all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn single_class_returns_constant_prior() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut m = GaussianNb::with_defaults();
        m.fit(&x, &[true, true], None).unwrap();
        assert_eq!(m.predict_proba(&x).unwrap(), vec![1.0, 1.0]);
        let mut m = GaussianNb::with_defaults();
        m.fit(&x, &[false, false], None).unwrap();
        assert_eq!(m.predict_proba(&x).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn weights_shift_the_prior() {
        // Same feature value for both classes: posterior = prior.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        let y = vec![true, false, false, false];
        let mut m = GaussianNb::with_defaults();
        m.fit(&x, &y, Some(&[9.0, 3.0, 3.0, 3.0])).unwrap();
        let s = m.predict_proba(&x).unwrap();
        // prior(pos) = 9/18 = 0.5
        assert!((s[0] - 0.5).abs() < 1e-9, "score {}", s[0]);
    }

    #[test]
    fn deterministic_across_runs() {
        let (x, y) = blobs();
        let mut a = GaussianNb::with_defaults();
        let mut b = GaussianNb::with_defaults();
        a.fit(&x, &y, None).unwrap();
        b.fit(&x, &y, None).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn predict_errors() {
        let m = GaussianNb::with_defaults();
        assert!(matches!(
            m.predict_proba(&Matrix::zeros(1, 1)),
            Err(MlError::NotFitted)
        ));
        let (x, y) = blobs();
        let mut m = GaussianNb::with_defaults();
        m.fit(&x, &y, None).unwrap();
        assert!(m.predict_proba(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn zero_variance_feature_is_floored_not_nan() {
        let x = Matrix::from_rows(&[
            vec![1.0, 5.0],
            vec![1.0, -5.0],
            vec![1.0, 5.0],
            vec![1.0, -5.0],
        ])
        .unwrap();
        let y = vec![true, false, true, false];
        let mut m = GaussianNb::with_defaults();
        m.fit(&x, &y, None).unwrap();
        let s = m.predict_proba(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
        assert!(s[0] > 0.5 && s[1] < 0.5);
    }
}
