//! Classification metrics: accuracy, precision/recall/F1, ROC-AUC, Brier
//! score and log-loss.

use crate::error::MlError;

/// Validates that scores and labels have equal, non-zero length and that
/// every score lies in `[0, 1]`.
pub fn validate_scores(scores: &[f64], labels: &[bool]) -> Result<(), MlError> {
    if scores.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    if scores.len() != labels.len() {
        return Err(MlError::DimensionMismatch {
            expected: scores.len(),
            got: labels.len(),
            what: "labels",
        });
    }
    for (i, &s) in scores.iter().enumerate() {
        if !s.is_finite() || !(0.0..=1.0).contains(&s) {
            return Err(MlError::InvalidScore { index: i, value: s });
        }
    }
    Ok(())
}

/// A 2×2 confusion matrix at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds a confusion matrix from scores at `threshold`.
    pub fn at_threshold(scores: &[f64], labels: &[bool], threshold: f64) -> Result<Self, MlError> {
        validate_scores(scores, labels)?;
        let mut c = Confusion::default();
        for (&s, &y) in scores.iter().zip(labels) {
            match (s >= threshold, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        Ok(c)
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        (self.tp + self.tn) as f64 / total as f64
    }

    /// Precision (`tp / (tp + fp)`); 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall (`tp / (tp + fn)`); 0 when no positive labels.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Accuracy at a 0.5 threshold.
pub fn accuracy(scores: &[f64], labels: &[bool]) -> Result<f64, MlError> {
    Ok(Confusion::at_threshold(scores, labels, 0.5)?.accuracy())
}

/// Area under the ROC curve via the Mann–Whitney U statistic with average
/// ranks for ties. Returns an error when only one class is present.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> Result<f64, MlError> {
    validate_scores(scores, labels)?;
    let n_pos = labels.iter().filter(|&&y| y).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(MlError::SingleClass);
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("validated finite"));
    // Average ranks over tie groups (1-based ranks).
    let mut rank = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            rank[idx] = avg;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&rank)
        .filter(|(&y, _)| y)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Ok(u / (n_pos as f64 * n_neg as f64))
}

/// Mean squared error between scores and 0/1 labels.
pub fn brier_score(scores: &[f64], labels: &[bool]) -> Result<f64, MlError> {
    validate_scores(scores, labels)?;
    let sum: f64 = scores
        .iter()
        .zip(labels)
        .map(|(&s, &y)| {
            let t = f64::from(u8::from(y));
            (s - t) * (s - t)
        })
        .sum();
    Ok(sum / scores.len() as f64)
}

/// Negative log-likelihood with scores clamped to `[eps, 1-eps]`.
pub fn log_loss(scores: &[f64], labels: &[bool]) -> Result<f64, MlError> {
    validate_scores(scores, labels)?;
    const EPS: f64 = 1e-15;
    let sum: f64 = scores
        .iter()
        .zip(labels)
        .map(|(&s, &y)| {
            let s = s.clamp(EPS, 1.0 - EPS);
            if y {
                -s.ln()
            } else {
                -(1.0 - s).ln()
            }
        })
        .sum();
    Ok(sum / scores.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_problems() {
        assert!(validate_scores(&[], &[]).is_err());
        assert!(validate_scores(&[0.5], &[true, false]).is_err());
        assert!(validate_scores(&[1.5], &[true]).is_err());
        assert!(validate_scores(&[f64::NAN], &[true]).is_err());
        assert!(validate_scores(&[0.0, 1.0], &[true, false]).is_ok());
    }

    #[test]
    fn confusion_counts() {
        let scores = [0.9, 0.8, 0.3, 0.2];
        let labels = [true, false, true, false];
        let c = Confusion::at_threshold(&scores, &labels, 0.5).unwrap();
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (1, 1, 1, 1));
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn degenerate_precision_recall() {
        let c = Confusion {
            tp: 0,
            fp: 0,
            tn: 5,
            fn_: 0,
        };
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&[0.1, 0.2, 0.8, 0.9], &labels).unwrap(), 1.0);
        assert_eq!(roc_auc(&[0.9, 0.8, 0.2, 0.1], &labels).unwrap(), 0.0);
    }

    #[test]
    fn auc_handles_ties_as_half() {
        let labels = [false, true, false, true];
        let auc = roc_auc(&[0.5, 0.5, 0.5, 0.5], &labels).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_errors() {
        assert!(matches!(
            roc_auc(&[0.5, 0.6], &[true, true]),
            Err(MlError::SingleClass)
        ));
    }

    #[test]
    fn brier_bounds() {
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]).unwrap(), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &[true, false]).unwrap(), 1.0);
        let mid = brier_score(&[0.5, 0.5], &[true, false]).unwrap();
        assert!((mid - 0.25).abs() < 1e-12);
    }

    #[test]
    fn log_loss_is_finite_at_extremes() {
        let l = log_loss(&[0.0, 1.0], &[true, false]).unwrap();
        assert!(l.is_finite());
        assert!(l > 10.0); // confidently wrong is heavily penalized
        let good = log_loss(&[0.99, 0.01], &[true, false]).unwrap();
        assert!(good < 0.05);
    }

    #[test]
    fn accuracy_matches_confusion() {
        let scores = [0.7, 0.6, 0.4, 0.3];
        let labels = [true, true, false, false];
        assert_eq!(accuracy(&scores, &labels).unwrap(), 1.0);
    }
}
