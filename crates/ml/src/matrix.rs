//! Dense row-major design matrix.

use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f64`, stored row-major.
///
/// This is intentionally a small, purpose-built type: the workspace needs
/// design-matrix assembly, row access and a handful of reductions — not a
/// linear-algebra library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a matrix from row-major data; `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MlError> {
        if data.len() != rows * cols {
            return Err(MlError::DimensionMismatch {
                expected: rows * cols,
                got: data.len(),
                what: "matrix data",
            });
        }
        Ok(Self { data, rows, cols })
    }

    /// Creates a matrix from a slice of equal-length rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(MlError::DimensionMismatch {
                    expected: cols,
                    got: r.len(),
                    what: "row length",
                });
            }
            let _ = i;
            data.extend_from_slice(r);
        }
        Ok(Self {
            data,
            rows: rows.len(),
            cols,
        })
    }

    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of rows (samples).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable access to row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let start = i * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.cols + col] = value;
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `c` out of the matrix.
    pub fn column(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the index of the first non-finite entry, if any.
    pub fn find_non_finite(&self) -> Option<(usize, usize)> {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if !self.get(r, c).is_finite() {
                    return Some((r, c));
                }
            }
        }
        None
    }

    /// Validates that every entry is finite.
    pub fn ensure_finite(&self) -> Result<(), MlError> {
        match self.find_non_finite() {
            Some((row, col)) => Err(MlError::NonFiniteValue { row, col }),
            None => Ok(()),
        }
    }

    /// Horizontally concatenates two matrices with equal row counts.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, MlError> {
        if self.rows != other.rows {
            return Err(MlError::DimensionMismatch {
                expected: self.rows,
                got: other.rows,
                what: "hstack rows",
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix {
            data,
            rows: self.rows,
            cols,
        })
    }

    /// Selects a subset of rows by index (indices may repeat).
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix, MlError> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(MlError::DimensionMismatch {
                    expected: self.rows,
                    got: i,
                    what: "row index",
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            data,
            rows: indices.len(),
            cols: self.cols,
        })
    }

    /// Dot product of row `i` with `weights` (`weights.len() == cols`).
    #[inline]
    pub fn row_dot(&self, i: usize, weights: &[f64]) -> f64 {
        debug_assert_eq!(weights.len(), self.cols);
        self.row(i).iter().zip(weights).map(|(a, b)| a * b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_shape_checked() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_rows_checks_lengths() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn column_extraction() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.column(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 7.0);
        m.row_mut(0)[1] = 3.0;
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.get(0, 1), 3.0);
    }

    #[test]
    fn finite_validation() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.ensure_finite().is_ok());
        m.set(1, 0, f64::NAN);
        assert_eq!(m.find_non_finite(), Some((1, 0)));
        assert!(matches!(
            m.ensure_finite(),
            Err(MlError::NonFiniteValue { row: 1, col: 0 })
        ));
    }

    #[test]
    fn hstack_concatenates_columns() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let c = a.hstack(&b).unwrap();
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
        let bad = Matrix::zeros(3, 1);
        assert!(a.hstack(&bad).is_err());
    }

    #[test]
    fn select_rows_subsets_and_repeats() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let s = m.select_rows(&[2, 0, 2]).unwrap();
        assert_eq!(s.column(0), vec![3.0, 1.0, 3.0]);
        assert!(m.select_rows(&[3]).is_err());
    }

    #[test]
    fn row_dot_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(m.row_dot(0, &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn iter_rows_yields_all() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[3.0, 4.0]);
    }
}
