//! Error type for the ML substrate.
//!
//! Part of the workspace error hierarchy: each crate keeps a focused
//! enum, and the `fsi` facade unifies them all under `fsi::FsiError`
//! (with source-chaining back to this type). Application code should
//! match on `FsiError`; match here only when using this crate directly.

use std::fmt;

/// Errors produced by model training, scoring and metric computation.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// A dataset with zero rows (or zero columns where features are
    /// required) was supplied.
    EmptyDataset,
    /// Two inputs that must agree in length/shape do not.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was received.
        got: usize,
        /// Which input disagreed.
        what: &'static str,
    },
    /// A feature value is NaN or infinite.
    NonFiniteValue {
        /// Row of the offending value.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
    /// A sample weight is negative, NaN or infinite, or all weights are zero.
    InvalidWeights,
    /// A hyper-parameter is out of its valid range.
    InvalidHyperparameter(String),
    /// `predict`/`transform` called before `fit`.
    NotFitted,
    /// Training data contains a single class, so a discriminative score is
    /// undefined for some models.
    SingleClass,
    /// A probability/score outside `[0, 1]` was passed to a calibration or
    /// metric routine.
    InvalidScore {
        /// Index of the offending score.
        index: usize,
        /// The score value.
        value: f64,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "dataset must contain at least one sample"),
            MlError::DimensionMismatch {
                expected,
                got,
                what,
            } => write!(f, "{what}: expected length {expected}, got {got}"),
            MlError::NonFiniteValue { row, col } => {
                write!(f, "non-finite feature value at row {row}, column {col}")
            }
            MlError::InvalidWeights => {
                write!(
                    f,
                    "sample weights must be finite, non-negative, not all zero"
                )
            }
            MlError::InvalidHyperparameter(msg) => write!(f, "invalid hyper-parameter: {msg}"),
            MlError::NotFitted => write!(f, "model must be fitted before use"),
            MlError::SingleClass => write!(f, "training data contains a single class"),
            MlError::InvalidScore { index, value } => {
                write!(f, "score at index {index} is {value}, outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_details() {
        let e = MlError::DimensionMismatch {
            expected: 10,
            got: 7,
            what: "labels",
        };
        let s = e.to_string();
        assert!(s.contains("labels") && s.contains("10") && s.contains('7'));
        assert!(MlError::NotFitted.to_string().contains("fitted"));
    }
}
