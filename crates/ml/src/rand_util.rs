//! Deterministic random-number helpers shared across the workspace.
//!
//! `rand` 0.10 no longer ships a normal distribution (it moved to the
//! `rand_distr` crate, which is not part of our dependency budget), so we
//! provide a Box–Muller implementation here, plus a seeded shuffle.

use rand::{Rng, RngExt, SeedableRng};

/// The workspace's deterministic RNG.
pub type SeededRng = rand::rngs::StdRng;

/// Creates the workspace RNG from a `u64` seed.
pub fn rng_from_seed(seed: u64) -> SeededRng {
    SeededRng::seed_from_u64(seed)
}

/// Draws one standard-normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so ln(u1) is finite; u2 ∈ [0, 1).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal deviate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Fisher–Yates shuffle of `indices` in place.
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rng_from_seed(7);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = rng_from_seed(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn draws_are_finite() {
        let mut rng = rng_from_seed(0);
        assert!((0..10_000).all(|_| standard_normal(&mut rng).is_finite()));
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        shuffle(&mut rng_from_seed(3), &mut a);
        shuffle(&mut rng_from_seed(3), &mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // A different seed gives a different order (overwhelmingly likely).
        let mut c: Vec<u32> = (0..50).collect();
        shuffle(&mut rng_from_seed(4), &mut c);
        assert_ne!(a, c);
    }
}
