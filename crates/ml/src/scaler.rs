//! Z-score standardization of design matrices.

use crate::error::MlError;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Standardizes each column to zero mean and unit variance.
///
/// Constant columns (zero variance) are centered but left unscaled, so
/// one-hot blocks and intercept-like columns pass through safely.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learns per-column means and standard deviations.
    pub fn fit(&mut self, x: &Matrix) -> Result<(), MlError> {
        if x.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        x.ensure_finite()?;
        let n = x.rows() as f64;
        let cols = x.cols();
        let mut means = vec![0.0; cols];
        for row in x.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; cols];
        for row in x.iter_rows() {
            for ((v, m), x) in vars.iter_mut().zip(&means).zip(row) {
                let d = x - m;
                *v += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        self.means = means;
        self.stds = stds;
        Ok(())
    }

    /// Applies the learned transform.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if self.means.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.means.len(),
                got: x.cols(),
                what: "scaler columns",
            });
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.means[c]) / self.stds[c];
            }
        }
        Ok(out)
    }

    /// Fits and transforms in one step.
    pub fn fit_transform(&mut self, x: &Matrix) -> Result<Matrix, MlError> {
        self.fit(x)?;
        self.transform(x)
    }

    /// Learned means (empty before fitting).
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Learned standard deviations (empty before fitting).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]).unwrap();
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&x).unwrap();
        for c in 0..2 {
            let col = t.column(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_is_centered_not_scaled() {
        let x = Matrix::from_rows(&[vec![4.0], vec![4.0], vec![4.0]]).unwrap();
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&x).unwrap();
        assert!(t.column(0).iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn transform_before_fit_errors() {
        let s = StandardScaler::new();
        assert!(matches!(
            s.transform(&Matrix::zeros(1, 1)),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn transform_checks_columns() {
        let mut s = StandardScaler::new();
        s.fit(&Matrix::zeros(2, 3)).unwrap();
        assert!(s.transform(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn transform_applies_training_statistics_to_new_data() {
        let train = Matrix::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        let mut s = StandardScaler::new();
        s.fit(&train).unwrap();
        // mean 1, std 1
        let test = Matrix::from_rows(&[vec![3.0]]).unwrap();
        let t = s.transform(&test).unwrap();
        assert!((t.get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_finite() {
        let x = Matrix::from_rows(&[vec![f64::NAN]]).unwrap();
        let mut s = StandardScaler::new();
        assert!(s.fit(&x).is_err());
    }
}
