//! Calibration measurement and post-processing.
//!
//! Implements the paper's calibration notions (§2.2, Appendix A.1):
//!
//! * `e(h)` — expected confidence score ([`mean_score`]).
//! * `o(h)` — true fraction of positives ([`positive_fraction`]).
//! * `|e − o|` — absolute mis-calibration ([`miscalibration`]), the form the
//!   paper adopts because it "eliminates the division by zero problem".
//! * `e / o` — the ratio form ([`calibration_ratio`]), used in Figure 6.
//! * ECE over `M` score bins ([`expected_calibration_error`], Eq. 15; the
//!   paper uses 15 bins).
//! * Reliability curves ([`reliability_curve`]).
//! * Platt scaling ([`PlattScaler`]) — the post-processing mitigation cited
//!   in the related work (§3).

use crate::error::MlError;
use crate::metrics::validate_scores;
use serde::{Deserialize, Serialize};

/// Mean confidence score: `e(h)` in the paper.
pub fn mean_score(scores: &[f64]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().sum::<f64>() / scores.len() as f64
}

/// Fraction of positive labels: `o(h)` in the paper.
pub fn positive_fraction(labels: &[bool]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    labels.iter().filter(|&&y| y).count() as f64 / labels.len() as f64
}

/// Absolute mis-calibration `|e(h) − o(h)|` (paper §2.2, second form).
pub fn miscalibration(scores: &[f64], labels: &[bool]) -> Result<f64, MlError> {
    validate_scores(scores, labels)?;
    Ok((mean_score(scores) - positive_fraction(labels)).abs())
}

/// Calibration ratio `e(h) / o(h)` (paper Eq. 2); `None` when there are no
/// positive labels (the division-by-zero case the paper calls out).
pub fn calibration_ratio(scores: &[f64], labels: &[bool]) -> Result<Option<f64>, MlError> {
    validate_scores(scores, labels)?;
    let o = positive_fraction(labels);
    if o == 0.0 {
        return Ok(None);
    }
    Ok(Some(mean_score(scores) / o))
}

/// How scores are assigned to ECE bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinningStrategy {
    /// `M` equal-width bins over `[0, 1]` (the paper's setting).
    EqualWidth,
    /// `M` bins each holding (nearly) the same number of samples.
    EqualFrequency,
}

/// One bin of a reliability analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationBin {
    /// Number of samples in the bin.
    pub count: usize,
    /// Mean confidence score in the bin (`e(B)`).
    pub mean_score: f64,
    /// Positive-label fraction in the bin (`o(B)`).
    pub positive_fraction: f64,
}

/// Assigns each sample to a bin and summarizes the bins. Empty bins are
/// retained (with `count == 0`) so bin indices are stable.
pub fn reliability_curve(
    scores: &[f64],
    labels: &[bool],
    bins: usize,
    strategy: BinningStrategy,
) -> Result<Vec<CalibrationBin>, MlError> {
    validate_scores(scores, labels)?;
    if bins == 0 {
        return Err(MlError::InvalidHyperparameter(
            "number of bins must be at least 1".into(),
        ));
    }
    let n = scores.len();
    let mut count = vec![0usize; bins];
    let mut sum_s = vec![0.0f64; bins];
    let mut sum_y = vec![0.0f64; bins];

    match strategy {
        BinningStrategy::EqualWidth => {
            for (&s, &y) in scores.iter().zip(labels) {
                let b = ((s * bins as f64) as usize).min(bins - 1);
                count[b] += 1;
                sum_s[b] += s;
                sum_y[b] += f64::from(u8::from(y));
            }
        }
        BinningStrategy::EqualFrequency => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("validated finite"));
            for (pos, &idx) in order.iter().enumerate() {
                let b = (pos * bins) / n;
                count[b] += 1;
                sum_s[b] += scores[idx];
                sum_y[b] += f64::from(u8::from(labels[idx]));
            }
        }
    }

    Ok((0..bins)
        .map(|b| CalibrationBin {
            count: count[b],
            mean_score: if count[b] == 0 {
                0.0
            } else {
                sum_s[b] / count[b] as f64
            },
            positive_fraction: if count[b] == 0 {
                0.0
            } else {
                sum_y[b] / count[b] as f64
            },
        })
        .collect())
}

/// Expected Calibration Error over `M` bins (paper Eq. 15):
/// `ECE = Σ_m (|B_m|/n) · |o(B_m) − e(B_m)|`.
pub fn expected_calibration_error(
    scores: &[f64],
    labels: &[bool],
    bins: usize,
    strategy: BinningStrategy,
) -> Result<f64, MlError> {
    let curve = reliability_curve(scores, labels, bins, strategy)?;
    let n: usize = curve.iter().map(|b| b.count).sum();
    Ok(curve
        .iter()
        .map(|b| (b.count as f64 / n as f64) * (b.positive_fraction - b.mean_score).abs())
        .sum())
}

/// Maximum Calibration Error: the worst per-bin gap.
pub fn max_calibration_error(
    scores: &[f64],
    labels: &[bool],
    bins: usize,
    strategy: BinningStrategy,
) -> Result<f64, MlError> {
    let curve = reliability_curve(scores, labels, bins, strategy)?;
    Ok(curve
        .iter()
        .filter(|b| b.count > 0)
        .map(|b| (b.positive_fraction - b.mean_score).abs())
        .fold(0.0, f64::max))
}

/// Platt scaling: fits `sigmoid(a·logit(s) + b)` to labels by gradient
/// descent on log-loss, mapping raw scores to calibrated probabilities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlattScaler {
    a: f64,
    b: f64,
    fitted: bool,
}

impl Default for PlattScaler {
    fn default() -> Self {
        Self::new()
    }
}

impl PlattScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self {
            a: 1.0,
            b: 0.0,
            fitted: false,
        }
    }

    fn logit(s: f64) -> f64 {
        let s = s.clamp(1e-7, 1.0 - 1e-7);
        (s / (1.0 - s)).ln()
    }

    /// Fits the two scaling parameters.
    pub fn fit(&mut self, scores: &[f64], labels: &[bool]) -> Result<(), MlError> {
        validate_scores(scores, labels)?;
        let z: Vec<f64> = scores.iter().map(|&s| Self::logit(s)).collect();
        let n = z.len() as f64;
        let (mut a, mut b) = (1.0f64, 0.0f64);
        let lr = 0.1;
        for _ in 0..2000 {
            let mut ga = 0.0;
            let mut gb = 0.0;
            for (&zi, &yi) in z.iter().zip(labels) {
                let p = 1.0 / (1.0 + (-(a * zi + b)).exp());
                let err = p - f64::from(u8::from(yi));
                ga += err * zi;
                gb += err;
            }
            ga /= n;
            gb /= n;
            a -= lr * ga;
            b -= lr * gb;
            if ga.abs().max(gb.abs()) < 1e-9 {
                break;
            }
        }
        self.a = a;
        self.b = b;
        self.fitted = true;
        Ok(())
    }

    /// Applies the learned mapping.
    pub fn transform(&self, scores: &[f64]) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        Ok(scores
            .iter()
            .map(|&s| 1.0 / (1.0 + (-(self.a * Self::logit(s) + self.b)).exp()))
            .collect())
    }

    /// Learned `(a, b)` parameters.
    pub fn parameters(&self) -> (f64, f64) {
        (self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_fractions() {
        assert!((mean_score(&[0.2, 0.4, 0.6]) - 0.4).abs() < 1e-12);
        assert_eq!(positive_fraction(&[true, false, true, true]), 0.75);
        assert_eq!(mean_score(&[]), 0.0);
        assert_eq!(positive_fraction(&[]), 0.0);
    }

    #[test]
    fn paper_equation_2_example() {
        // Figure 1b: Σŝ = 5.2 over 11 individuals, 7 positives.
        // e/o = (5.2/11) / (7/11) ≈ 0.742.
        let mut scores = vec![0.4727272727; 11]; // sums to 5.2
        scores[0] = 5.2 - 0.4727272727 * 10.0;
        let labels: Vec<bool> = (0..11).map(|i| i < 7).collect();
        let r = calibration_ratio(&scores, &labels).unwrap().unwrap();
        assert!((r - 5.2 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_none_when_no_positives() {
        assert_eq!(
            calibration_ratio(&[0.5, 0.5], &[false, false]).unwrap(),
            None
        );
    }

    #[test]
    fn miscalibration_of_perfect_scores_is_zero() {
        let scores = [1.0, 1.0, 0.0, 0.0];
        let labels = [true, true, false, false];
        assert_eq!(miscalibration(&scores, &labels).unwrap(), 0.0);
    }

    #[test]
    fn ece_zero_for_perfectly_calibrated_bins() {
        // Bin [0.6, 0.667): 10 samples at 0.6, 6 positive.
        let scores = vec![0.6; 10];
        let labels: Vec<bool> = (0..10).map(|i| i < 6).collect();
        let ece =
            expected_calibration_error(&scores, &labels, 15, BinningStrategy::EqualWidth).unwrap();
        assert!(ece < 1e-12);
    }

    #[test]
    fn ece_detects_overconfidence() {
        let scores = vec![0.9; 10];
        let labels: Vec<bool> = (0..10).map(|i| i < 5).collect();
        let ece =
            expected_calibration_error(&scores, &labels, 15, BinningStrategy::EqualWidth).unwrap();
        assert!((ece - 0.4).abs() < 1e-12);
    }

    #[test]
    fn score_of_one_lands_in_last_bin() {
        let scores = [1.0, 0.999];
        let labels = [true, true];
        let curve = reliability_curve(&scores, &labels, 15, BinningStrategy::EqualWidth).unwrap();
        assert_eq!(curve.last().unwrap().count, 2);
    }

    #[test]
    fn equal_frequency_bins_balance_counts() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let labels = vec![true; 100];
        let curve =
            reliability_curve(&scores, &labels, 4, BinningStrategy::EqualFrequency).unwrap();
        assert!(curve.iter().all(|b| b.count == 25));
    }

    #[test]
    fn zero_bins_rejected() {
        assert!(reliability_curve(&[0.5], &[true], 0, BinningStrategy::EqualWidth).is_err());
    }

    #[test]
    fn mce_at_least_ece() {
        let scores = [0.9, 0.9, 0.1, 0.1, 0.5, 0.5];
        let labels = [true, false, false, false, true, false];
        let ece =
            expected_calibration_error(&scores, &labels, 5, BinningStrategy::EqualWidth).unwrap();
        let mce = max_calibration_error(&scores, &labels, 5, BinningStrategy::EqualWidth).unwrap();
        assert!(mce >= ece);
    }

    #[test]
    fn platt_improves_miscalibrated_scores() {
        // Systematically over-confident scores for a 30%-positive stream.
        let scores: Vec<f64> = (0..200)
            .map(|i| 0.7 + 0.2 * ((i % 10) as f64 / 10.0))
            .collect();
        let labels: Vec<bool> = (0..200).map(|i| i % 10 < 3).collect();
        let before = miscalibration(&scores, &labels).unwrap();
        let mut p = PlattScaler::new();
        p.fit(&scores, &labels).unwrap();
        let after = miscalibration(&p.transform(&scores).unwrap(), &labels).unwrap();
        assert!(after < before / 2.0, "before {before} after {after}");
    }

    #[test]
    fn platt_transform_before_fit_errors() {
        let p = PlattScaler::new();
        assert!(matches!(p.transform(&[0.5]), Err(MlError::NotFitted)));
    }
}
