//! Weighted CART decision tree with Gini impurity.

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::model::{validate_fit_inputs, Classifier};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child.
    pub min_samples_leaf: usize,
    /// Minimum weighted impurity decrease to accept a split. The default of
    /// `0.0` matches scikit-learn: zero-gain splits are accepted, which lets
    /// the tree work through XOR-like patterns where no single split helps
    /// immediately.
    pub min_impurity_decrease: f64,
    /// Laplace smoothing added to leaf positive/total counts when turning a
    /// leaf into a confidence score; keeps scores off the hard 0/1 edges.
    pub leaf_smoothing: f64,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_split: 10,
            min_samples_leaf: 5,
            min_impurity_decrease: 0.0,
            leaf_smoothing: 1.0,
        }
    }
}

impl DecisionTreeConfig {
    fn validate(&self) -> Result<(), MlError> {
        if self.min_samples_leaf == 0 {
            return Err(MlError::InvalidHyperparameter(
                "min_samples_leaf must be at least 1".into(),
            ));
        }
        if self.min_samples_split < 2 {
            return Err(MlError::InvalidHyperparameter(
                "min_samples_split must be at least 2".into(),
            ));
        }
        if !(self.leaf_smoothing >= 0.0 && self.leaf_smoothing.is_finite()) {
            return Err(MlError::InvalidHyperparameter(
                "leaf_smoothing must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        score: f64,
    },
    Internal {
        feature: usize,
        /// Samples with `value <= threshold` go left.
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A CART binary classifier. Splits maximize weighted Gini impurity
/// decrease; leaf scores are Laplace-smoothed weighted positive fractions.
///
/// Tie-breaking is deterministic: the lowest feature index, then the lowest
/// threshold, wins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    config: DecisionTreeConfig,
    nodes: Vec<Node>,
    n_features: usize,
    /// Accumulated weighted impurity decrease per feature.
    importances: Vec<f64>,
}

struct BuildCtx<'a> {
    x: &'a Matrix,
    y: &'a [bool],
    w: &'a [f64],
    config: &'a DecisionTreeConfig,
    importances: Vec<f64>,
}

/// Gini impurity of a weighted binary sample: `2·p·(1−p)` scaled to the
/// usual `1 − Σ p²` form for two classes.
#[inline]
fn gini(pos_w: f64, total_w: f64) -> f64 {
    if total_w <= 0.0 {
        return 0.0;
    }
    let p = pos_w / total_w;
    2.0 * p * (1.0 - p)
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    decrease: f64,
    left: Vec<usize>,
    right: Vec<usize>,
}

impl<'a> BuildCtx<'a> {
    fn leaf_score(&self, indices: &[usize]) -> f64 {
        let alpha = self.config.leaf_smoothing;
        let mut pos = 0.0;
        let mut tot = 0.0;
        for &i in indices {
            tot += self.w[i];
            if self.y[i] {
                pos += self.w[i];
            }
        }
        (pos + alpha) / (tot + 2.0 * alpha)
    }

    fn best_split(&self, indices: &[usize]) -> Option<BestSplit> {
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, decrease)
        let total_w: f64 = indices.iter().map(|&i| self.w[i]).sum();
        let total_pos: f64 = indices
            .iter()
            .filter(|&&i| self.y[i])
            .map(|&i| self.w[i])
            .sum();
        let parent_impurity = gini(total_pos, total_w);
        if parent_impurity <= 0.0 {
            return None; // pure node
        }

        // Reusable sort buffer: (value, weight, weighted label).
        let mut order: Vec<usize> = Vec::with_capacity(indices.len());
        for feature in 0..self.x.cols() {
            order.clear();
            order.extend_from_slice(indices);
            order.sort_by(|&a, &b| {
                self.x
                    .get(a, feature)
                    .partial_cmp(&self.x.get(b, feature))
                    .expect("features validated finite")
            });

            let mut left_w = 0.0;
            let mut left_pos = 0.0;
            let mut left_n = 0usize;
            for k in 0..order.len() - 1 {
                let i = order[k];
                left_w += self.w[i];
                if self.y[i] {
                    left_pos += self.w[i];
                }
                left_n += 1;
                let v = self.x.get(i, feature);
                let v_next = self.x.get(order[k + 1], feature);
                if v == v_next {
                    continue; // can't split between equal values
                }
                let right_n = order.len() - left_n;
                if left_n < self.config.min_samples_leaf || right_n < self.config.min_samples_leaf {
                    continue;
                }
                let right_w = total_w - left_w;
                let right_pos = total_pos - left_pos;
                let weighted_child = (left_w * gini(left_pos, left_w)
                    + right_w * gini(right_pos, right_w))
                    / total_w;
                let decrease = parent_impurity - weighted_child;
                let threshold = v.midpoint(v_next);
                let better = match &best {
                    None => decrease >= self.config.min_impurity_decrease,
                    Some((_, _, best_dec)) => decrease > *best_dec + 1e-15,
                };
                if better {
                    best = Some((feature, threshold, decrease));
                }
            }
        }

        best.map(|(feature, threshold, decrease)| {
            let mut left = Vec::new();
            let mut right = Vec::new();
            for &i in indices {
                if self.x.get(i, feature) <= threshold {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            BestSplit {
                feature,
                threshold,
                decrease: decrease * total_w,
                left,
                right,
            }
        })
    }

    fn build(&mut self, nodes: &mut Vec<Node>, indices: &[usize], depth: usize) -> u32 {
        let make_leaf = |nodes: &mut Vec<Node>, score: f64| -> u32 {
            nodes.push(Node::Leaf { score });
            (nodes.len() - 1) as u32
        };

        if depth >= self.config.max_depth || indices.len() < self.config.min_samples_split {
            return make_leaf(nodes, self.leaf_score(indices));
        }
        match self.best_split(indices) {
            None => make_leaf(nodes, self.leaf_score(indices)),
            Some(split) => {
                self.importances[split.feature] += split.decrease;
                let id = nodes.len();
                nodes.push(Node::Leaf { score: 0.0 }); // placeholder
                let left = self.build(nodes, &split.left, depth + 1);
                let right = self.build(nodes, &split.right, depth + 1);
                nodes[id] = Node::Internal {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                id as u32
            }
        }
    }
}

impl DecisionTree {
    /// Creates an unfitted tree with the given configuration.
    pub fn new(config: DecisionTreeConfig) -> Result<Self, MlError> {
        config.validate()?;
        Ok(Self {
            config,
            nodes: Vec::new(),
            n_features: 0,
            importances: Vec::new(),
        })
    }

    /// Creates an unfitted tree with default hyper-parameters.
    pub fn with_defaults() -> Self {
        Self::new(DecisionTreeConfig::default()).expect("default config is valid")
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: u32) -> usize {
            match &nodes[id as usize] {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Normalized total weighted impurity decrease per feature (sums to 1
    /// when any split occurred).
    pub fn feature_importances(&self) -> Result<Vec<f64>, MlError> {
        if self.nodes.is_empty() {
            return Err(MlError::NotFitted);
        }
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return Ok(vec![0.0; self.n_features]);
        }
        Ok(self.importances.iter().map(|v| v / total).collect())
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        let mut id = 0u32;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { score } => return *score,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(
        &mut self,
        x: &Matrix,
        y: &[bool],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), MlError> {
        let w = validate_fit_inputs(x, y, sample_weight)?;
        let indices: Vec<usize> = (0..x.rows()).collect();
        let mut ctx = BuildCtx {
            x,
            y,
            w: &w,
            config: &self.config,
            importances: vec![0.0; x.cols()],
        };
        let mut nodes = Vec::new();
        ctx.build(&mut nodes, &indices, 0);
        self.nodes = nodes;
        self.n_features = x.cols();
        self.importances = ctx.importances;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        if self.nodes.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.cols(),
                what: "feature columns",
            });
        }
        x.ensure_finite()?;
        Ok(x.iter_rows().map(|row| self.score_row(row)).collect())
    }

    fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<bool>) {
        // XOR-ish 2-D pattern, 25 points per quadrant cluster.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let x0 = i as f64 / 10.0;
                let x1 = j as f64 / 10.0;
                rows.push(vec![x0, x1]);
                y.push((x0 < 0.5) != (x1 < 0.5));
            }
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn config_validation() {
        let c = DecisionTreeConfig {
            min_samples_leaf: 0,
            ..DecisionTreeConfig::default()
        };
        assert!(DecisionTree::new(c).is_err());
        let c = DecisionTreeConfig {
            min_samples_split: 1,
            ..DecisionTreeConfig::default()
        };
        assert!(DecisionTree::new(c).is_err());
        let c = DecisionTreeConfig {
            leaf_smoothing: -1.0,
            ..DecisionTreeConfig::default()
        };
        assert!(DecisionTree::new(c).is_err());
    }

    #[test]
    fn learns_xor_unlike_a_linear_model() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::with_defaults();
        t.fit(&x, &y, None).unwrap();
        let preds = t.predict(&x, 0.5).unwrap();
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc >= 0.95, "accuracy {acc}");
        assert!(t.depth() >= 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![true, true, true, true];
        let mut t = DecisionTree::with_defaults();
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.node_count(), 1);
        let s = t.predict_proba(&x).unwrap();
        // Laplace smoothing keeps the score off 1.0: (4+1)/(4+2).
        assert!((s[0] - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (x, y) = xor_data();
        let cfg = DecisionTreeConfig {
            min_samples_leaf: 30,
            max_depth: 10,
            ..DecisionTreeConfig::default()
        };
        let mut t = DecisionTree::new(cfg).unwrap();
        t.fit(&x, &y, None).unwrap();
        // Count samples reaching each leaf.
        let scores = t.predict_proba(&x).unwrap();
        let _ = scores;
        fn leaf_counts(t: &DecisionTree, x: &Matrix) -> std::collections::HashMap<usize, usize> {
            let mut counts = std::collections::HashMap::new();
            for r in 0..x.rows() {
                let mut id = 0u32;
                loop {
                    match &t.nodes[id as usize] {
                        Node::Leaf { .. } => {
                            *counts.entry(id as usize).or_insert(0) += 1;
                            break;
                        }
                        Node::Internal {
                            feature,
                            threshold,
                            left,
                            right,
                        } => {
                            id = if x.get(r, *feature) <= *threshold {
                                *left
                            } else {
                                *right
                            };
                        }
                    }
                }
            }
            counts
        }
        for (_, c) in leaf_counts(&t, &x) {
            assert!(c >= 30);
        }
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let (x, y) = xor_data();
        let cfg = DecisionTreeConfig {
            max_depth: 0,
            ..DecisionTreeConfig::default()
        };
        let mut t = DecisionTree::new(cfg).unwrap();
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn weights_tilt_leaf_scores() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        let y = vec![true, true, false, false];
        let cfg = DecisionTreeConfig {
            leaf_smoothing: 0.0,
            ..DecisionTreeConfig::default()
        };
        let mut t = DecisionTree::new(cfg).unwrap();
        t.fit(&x, &y, Some(&[3.0, 3.0, 1.0, 1.0])).unwrap();
        let s = t.predict_proba(&x).unwrap();
        assert!((s[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn importances_concentrate_on_informative_feature() {
        // Feature 0 decides the label, feature 1 is constant noise.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            rows.push(vec![i as f64, 0.5]);
            y.push(i >= 30);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut t = DecisionTree::with_defaults();
        t.fit(&x, &y, None).unwrap();
        let imp = t.feature_importances().unwrap();
        assert!(imp[0] > 0.99);
        assert!(imp[1] < 0.01);
    }

    #[test]
    fn deterministic_across_runs() {
        let (x, y) = xor_data();
        let mut a = DecisionTree::with_defaults();
        let mut b = DecisionTree::with_defaults();
        a.fit(&x, &y, None).unwrap();
        b.fit(&x, &y, None).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn predict_errors() {
        let t = DecisionTree::with_defaults();
        assert!(matches!(
            t.predict_proba(&Matrix::zeros(1, 1)),
            Err(MlError::NotFitted)
        ));
        let (x, y) = xor_data();
        let mut t = DecisionTree::with_defaults();
        t.fit(&x, &y, None).unwrap();
        assert!(t.predict_proba(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::with_defaults();
        t.fit(&x, &y, None).unwrap();
        assert!(t
            .predict_proba(&x)
            .unwrap()
            .iter()
            .all(|s| (0.0..=1.0).contains(s)));
    }
}
