//! Seeded dataset splitting: train/test and k-fold.

use crate::error::MlError;
use crate::rand_util::{rng_from_seed, shuffle};

/// Index sets of a train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Row indices of the training set.
    pub train: Vec<usize>,
    /// Row indices of the test set.
    pub test: Vec<usize>,
}

/// Splits `n` samples into train/test index sets with the given test
/// fraction, shuffled deterministically by `seed`. The test set receives
/// `round(n · test_fraction)` samples, but both sides always get at least
/// one sample when `n >= 2`.
pub fn train_test_split(
    n: usize,
    test_fraction: f64,
    seed: u64,
) -> Result<TrainTestSplit, MlError> {
    if n == 0 {
        return Err(MlError::EmptyDataset);
    }
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(MlError::InvalidHyperparameter(format!(
            "test_fraction must be in [0, 1), got {test_fraction}"
        )));
    }
    let mut indices: Vec<usize> = (0..n).collect();
    shuffle(&mut rng_from_seed(seed), &mut indices);
    let mut n_test = (n as f64 * test_fraction).round() as usize;
    if n >= 2 {
        n_test = n_test.clamp(usize::from(test_fraction > 0.0), n - 1);
    } else {
        n_test = 0;
    }
    let test = indices.split_off(n - n_test);
    Ok(TrainTestSplit {
        train: indices,
        test,
    })
}

/// Yields `k` (train, validation) folds over `n` samples, shuffled by
/// `seed`. Fold sizes differ by at most one.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Result<Vec<TrainTestSplit>, MlError> {
    if n == 0 {
        return Err(MlError::EmptyDataset);
    }
    if k < 2 || k > n {
        return Err(MlError::InvalidHyperparameter(format!(
            "k must be in [2, n={n}], got {k}"
        )));
    }
    let mut indices: Vec<usize> = (0..n).collect();
    shuffle(&mut rng_from_seed(seed), &mut indices);
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test: Vec<usize> = indices[start..start + size].to_vec();
        let train: Vec<usize> = indices[..start]
            .iter()
            .chain(&indices[start + size..])
            .copied()
            .collect();
        folds.push(TrainTestSplit { train, test });
        start += size;
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_covers_all_indices_once() {
        let s = train_test_split(100, 0.3, 42).unwrap();
        assert_eq!(s.test.len(), 30);
        assert_eq!(s.train.len(), 70);
        let all: HashSet<usize> = s.train.iter().chain(&s.test).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = train_test_split(50, 0.2, 7).unwrap();
        let b = train_test_split(50, 0.2, 7).unwrap();
        let c = train_test_split(50, 0.2, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn split_validates_inputs() {
        assert!(train_test_split(0, 0.3, 1).is_err());
        assert!(train_test_split(10, 1.0, 1).is_err());
        assert!(train_test_split(10, -0.1, 1).is_err());
    }

    #[test]
    fn tiny_datasets_keep_a_training_sample() {
        let s = train_test_split(2, 0.9, 1).unwrap();
        assert_eq!(s.train.len(), 1);
        assert_eq!(s.test.len(), 1);
        let s = train_test_split(1, 0.5, 1).unwrap();
        assert_eq!(s.train.len(), 1);
        assert!(s.test.is_empty());
    }

    #[test]
    fn zero_fraction_gives_empty_test() {
        let s = train_test_split(10, 0.0, 3).unwrap();
        assert!(s.test.is_empty());
        assert_eq!(s.train.len(), 10);
    }

    #[test]
    fn k_fold_partitions_validation_sets() {
        let folds = k_fold(10, 3, 5).unwrap();
        assert_eq!(folds.len(), 3);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        let mut seen = HashSet::new();
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 10);
            for &i in &f.test {
                assert!(seen.insert(i), "index {i} appears in two validation sets");
            }
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn k_fold_validates_inputs() {
        assert!(k_fold(0, 2, 1).is_err());
        assert!(k_fold(10, 1, 1).is_err());
        assert!(k_fold(10, 11, 1).is_err());
    }
}
