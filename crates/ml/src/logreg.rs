//! Weighted logistic regression trained by batch gradient descent.

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::model::{validate_fit_inputs, Classifier};
use crate::scaler::StandardScaler;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Maximum number of full-batch epochs.
    pub max_epochs: usize,
    /// L2 penalty on the non-intercept weights.
    pub l2: f64,
    /// Convergence tolerance on the gradient max-norm.
    pub tol: f64,
    /// Standardize features internally before fitting (recommended; makes
    /// coefficient magnitudes comparable for the Figure-9 importances).
    pub standardize: bool,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.5,
            max_epochs: 2000,
            l2: 1e-4,
            tol: 1e-7,
            standardize: true,
        }
    }
}

impl LogisticRegressionConfig {
    fn validate(&self) -> Result<(), MlError> {
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(MlError::InvalidHyperparameter(format!(
                "learning_rate must be positive, got {}",
                self.learning_rate
            )));
        }
        if self.max_epochs == 0 {
            return Err(MlError::InvalidHyperparameter(
                "max_epochs must be at least 1".into(),
            ));
        }
        if !(self.l2 >= 0.0 && self.l2.is_finite()) {
            return Err(MlError::InvalidHyperparameter(format!(
                "l2 must be non-negative, got {}",
                self.l2
            )));
        }
        Ok(())
    }
}

/// Binary logistic regression with sample weights and L2 regularization.
///
/// Training is deterministic: weights start at zero and full-batch
/// gradient descent runs until the gradient max-norm drops below `tol` or
/// `max_epochs` is reached. With an intercept and no regularization the
/// converged model satisfies `Σ w·(p − y) = 0`, i.e. it is calibrated *on
/// average* over the training set — the property the paper's Theorem 1
/// bounds ENCE against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    config: LogisticRegressionConfig,
    /// `[intercept, w_1, ..., w_d]` in (possibly standardized) feature space.
    theta: Vec<f64>,
    scaler: Option<StandardScaler>,
    epochs_run: usize,
    converged: bool,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Creates an unfitted model with the given configuration.
    pub fn new(config: LogisticRegressionConfig) -> Result<Self, MlError> {
        config.validate()?;
        Ok(Self {
            config,
            theta: Vec::new(),
            scaler: None,
            epochs_run: 0,
            converged: false,
        })
    }

    /// Creates an unfitted model with default hyper-parameters.
    pub fn with_defaults() -> Self {
        Self::new(LogisticRegressionConfig::default()).expect("default config is valid")
    }

    /// Intercept term (in standardized space when `standardize` is on).
    pub fn intercept(&self) -> Result<f64, MlError> {
        self.theta.first().copied().ok_or(MlError::NotFitted)
    }

    /// Non-intercept coefficients (in standardized space when
    /// `standardize` is on).
    pub fn coefficients(&self) -> Result<&[f64], MlError> {
        if self.theta.is_empty() {
            return Err(MlError::NotFitted);
        }
        Ok(&self.theta[1..])
    }

    /// Absolute standardized coefficients — the per-feature importance used
    /// by the Figure-9 heatmaps.
    pub fn feature_importances(&self) -> Result<Vec<f64>, MlError> {
        Ok(self.coefficients()?.iter().map(|c| c.abs()).collect())
    }

    /// Number of epochs the last fit ran.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Whether the last fit hit the gradient tolerance before `max_epochs`.
    pub fn converged(&self) -> bool {
        self.converged
    }

    fn design(&self, x: &Matrix) -> Result<Matrix, MlError> {
        match &self.scaler {
            Some(s) => s.transform(x),
            None => Ok(x.clone()),
        }
    }
}

impl Classifier for LogisticRegression {
    fn fit(
        &mut self,
        x: &Matrix,
        y: &[bool],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), MlError> {
        let w = validate_fit_inputs(x, y, sample_weight)?;
        let xs = if self.config.standardize {
            let mut scaler = StandardScaler::new();
            let xs = scaler.fit_transform(x)?;
            self.scaler = Some(scaler);
            xs
        } else {
            self.scaler = None;
            x.clone()
        };

        let n = xs.rows();
        let d = xs.cols();
        let sum_w: f64 = w.iter().sum();
        let mut theta = vec![0.0f64; d + 1];
        let mut grad = vec![0.0f64; d + 1];
        let mut epochs_run = 0;
        let mut converged = false;

        for _ in 0..self.config.max_epochs {
            epochs_run += 1;
            grad.iter_mut().for_each(|g| *g = 0.0);
            for i in 0..n {
                let row = xs.row(i);
                let z = theta[0] + row.iter().zip(&theta[1..]).map(|(a, b)| a * b).sum::<f64>();
                let err = (sigmoid(z) - f64::from(u8::from(y[i]))) * w[i];
                grad[0] += err;
                for (g, v) in grad[1..].iter_mut().zip(row) {
                    *g += err * v;
                }
            }
            let mut max_grad: f64 = 0.0;
            for (j, g) in grad.iter_mut().enumerate() {
                *g /= sum_w;
                if j > 0 {
                    *g += self.config.l2 * theta[j];
                }
                max_grad = max_grad.max(g.abs());
            }
            for (t, g) in theta.iter_mut().zip(&grad) {
                *t -= self.config.learning_rate * g;
            }
            if max_grad < self.config.tol {
                converged = true;
                break;
            }
        }

        self.theta = theta;
        self.epochs_run = epochs_run;
        self.converged = converged;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        if self.theta.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() + 1 != self.theta.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.theta.len() - 1,
                got: x.cols(),
                what: "feature columns",
            });
        }
        x.ensure_finite()?;
        let xs = self.design(x)?;
        Ok((0..xs.rows())
            .map(|i| {
                let z = self.theta[0]
                    + xs.row(i)
                        .iter()
                        .zip(&self.theta[1..])
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                sigmoid(z)
            })
            .collect())
    }

    fn is_fitted(&self) -> bool {
        !self.theta.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable toy problem in one dimension.
    fn toy() -> (Matrix, Vec<bool>) {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        (Matrix::from_rows(&xs).unwrap(), y)
    }

    #[test]
    fn config_validation() {
        let c = LogisticRegressionConfig {
            learning_rate: 0.0,
            ..LogisticRegressionConfig::default()
        };
        assert!(LogisticRegression::new(c).is_err());
        let c = LogisticRegressionConfig {
            max_epochs: 0,
            ..LogisticRegressionConfig::default()
        };
        assert!(LogisticRegression::new(c).is_err());
        let c = LogisticRegressionConfig {
            l2: -1.0,
            ..LogisticRegressionConfig::default()
        };
        assert!(LogisticRegression::new(c).is_err());
    }

    #[test]
    fn learns_separable_problem() {
        let (x, y) = toy();
        let mut m = LogisticRegression::with_defaults();
        m.fit(&x, &y, None).unwrap();
        let acc = m
            .predict(&x, 0.5)
            .unwrap()
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count() as f64
            / y.len() as f64;
        assert!(acc >= 0.95, "accuracy {acc}");
        // Positive slope: larger x -> higher score.
        assert!(m.coefficients().unwrap()[0] > 0.0);
    }

    #[test]
    fn training_scores_are_calibrated_on_average() {
        // With an intercept, converged logistic regression satisfies
        // mean(score) ~= mean(label) on the training set.
        let (x, y) = toy();
        let cfg = LogisticRegressionConfig {
            max_epochs: 5000,
            l2: 0.0,
            ..LogisticRegressionConfig::default()
        };
        let mut m = LogisticRegression::new(cfg).unwrap();
        m.fit(&x, &y, None).unwrap();
        let scores = m.predict_proba(&x).unwrap();
        let e: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        let o: f64 = y.iter().filter(|&&b| b).count() as f64 / y.len() as f64;
        assert!((e - o).abs() < 5e-3, "e={e} o={o}");
    }

    #[test]
    fn sample_weights_shift_the_boundary() {
        let (x, y) = toy();
        // Heavily up-weight the negative class: scores should drop.
        let w: Vec<f64> = y.iter().map(|&b| if b { 1.0 } else { 10.0 }).collect();
        let mut unweighted = LogisticRegression::with_defaults();
        unweighted.fit(&x, &y, None).unwrap();
        let mut weighted = LogisticRegression::with_defaults();
        weighted.fit(&x, &y, Some(&w)).unwrap();
        let mean_u: f64 = unweighted.predict_proba(&x).unwrap().iter().sum::<f64>() / 40.0;
        let mean_w: f64 = weighted.predict_proba(&x).unwrap().iter().sum::<f64>() / 40.0;
        assert!(mean_w < mean_u, "weighted {mean_w} unweighted {mean_u}");
    }

    #[test]
    fn deterministic_across_runs() {
        let (x, y) = toy();
        let mut a = LogisticRegression::with_defaults();
        let mut b = LogisticRegression::with_defaults();
        a.fit(&x, &y, None).unwrap();
        b.fit(&x, &y, None).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = LogisticRegression::with_defaults();
        assert!(matches!(
            m.predict_proba(&Matrix::zeros(1, 1)),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn predict_checks_feature_count() {
        let (x, y) = toy();
        let mut m = LogisticRegression::with_defaults();
        m.fit(&x, &y, None).unwrap();
        assert!(m.predict_proba(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = toy();
        let mut m = LogisticRegression::with_defaults();
        m.fit(&x, &y, None).unwrap();
        assert!(m
            .predict_proba(&x)
            .unwrap()
            .iter()
            .all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn single_class_degrades_gracefully() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.4], vec![0.9]]).unwrap();
        let y = vec![true, true, true];
        let mut m = LogisticRegression::with_defaults();
        m.fit(&x, &y, None).unwrap();
        let scores = m.predict_proba(&x).unwrap();
        assert!(scores.iter().all(|s| *s > 0.5));
    }

    #[test]
    fn importances_are_absolute_coefficients() {
        let (x, y) = toy();
        let mut m = LogisticRegression::with_defaults();
        m.fit(&x, &y, None).unwrap();
        let imp = m.feature_importances().unwrap();
        assert_eq!(imp.len(), 1);
        assert!(imp[0] > 0.0);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0).abs() < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
