//! The common classifier interface.

use crate::error::MlError;
use crate::matrix::Matrix;

/// A binary classifier that produces confidence scores in `[0, 1]`.
///
/// All trainers accept optional per-sample weights: `None` means uniform.
/// Weights are what the Kamiran–Calders re-weighting baseline feeds in, so
/// supporting them everywhere is a hard requirement of the reproduction.
pub trait Classifier {
    /// Fits the model on a design matrix, boolean labels and optional
    /// sample weights.
    fn fit(&mut self, x: &Matrix, y: &[bool], sample_weight: Option<&[f64]>)
        -> Result<(), MlError>;

    /// Confidence score (estimated probability of the positive class) per
    /// row of `x`.
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError>;

    /// Hard labels at the given decision threshold.
    fn predict(&self, x: &Matrix, threshold: f64) -> Result<Vec<bool>, MlError> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|s| s >= threshold)
            .collect())
    }

    /// `true` once `fit` has succeeded.
    fn is_fitted(&self) -> bool;
}

/// A fitted model together with its training scores — the `(Ŷ, Ŝ)` pair of
/// paper §2.1.
#[derive(Debug, Clone)]
pub struct FittedModel<M> {
    /// The trained classifier.
    pub model: M,
    /// Confidence scores on the training design matrix.
    pub train_scores: Vec<f64>,
}

/// Validates labels/weights against the design matrix and produces an
/// owned, normalized weight vector (mean 1). Shared by every trainer.
pub(crate) fn validate_fit_inputs(
    x: &Matrix,
    y: &[bool],
    sample_weight: Option<&[f64]>,
) -> Result<Vec<f64>, MlError> {
    if x.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    x.ensure_finite()?;
    if y.len() != x.rows() {
        return Err(MlError::DimensionMismatch {
            expected: x.rows(),
            got: y.len(),
            what: "labels",
        });
    }
    let w = match sample_weight {
        None => vec![1.0; x.rows()],
        Some(w) => {
            if w.len() != x.rows() {
                return Err(MlError::DimensionMismatch {
                    expected: x.rows(),
                    got: w.len(),
                    what: "sample weights",
                });
            }
            if w.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(MlError::InvalidWeights);
            }
            let total: f64 = w.iter().sum();
            if total <= 0.0 {
                return Err(MlError::InvalidWeights);
            }
            let scale = w.len() as f64 / total;
            w.iter().map(|v| v * scale).collect()
        }
    };
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_inputs() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let y = [true, false];
        assert!(validate_fit_inputs(&x, &y, None).is_ok());
        assert!(validate_fit_inputs(&x, &[true], None).is_err());
        assert!(validate_fit_inputs(&x, &y, Some(&[1.0])).is_err());
        assert!(validate_fit_inputs(&x, &y, Some(&[1.0, -2.0])).is_err());
        assert!(validate_fit_inputs(&x, &y, Some(&[0.0, 0.0])).is_err());
        assert!(validate_fit_inputs(&x, &y, Some(&[f64::NAN, 1.0])).is_err());
        let empty = Matrix::zeros(0, 1);
        assert!(matches!(
            validate_fit_inputs(&empty, &[], None),
            Err(MlError::EmptyDataset)
        ));
    }

    #[test]
    fn weights_are_normalized_to_mean_one() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = [true, false, true, false];
        let w = validate_fit_inputs(&x, &y, Some(&[2.0, 2.0, 2.0, 2.0])).unwrap();
        assert_eq!(w, vec![1.0, 1.0, 1.0, 1.0]);
        let w = validate_fit_inputs(&x, &y, Some(&[1.0, 3.0, 0.0, 0.0])).unwrap();
        assert!((w.iter().sum::<f64>() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_features_rejected() {
        let x = Matrix::from_rows(&[vec![f64::INFINITY]]).unwrap();
        assert!(matches!(
            validate_fit_inputs(&x, &[true], None),
            Err(MlError::NonFiniteValue { .. })
        ));
    }
}
