//! Property tests: the LRU implementations against an executable
//! reference model.
//!
//! The model is the textbook definition — an MRU-first vector with the
//! capacity enforced by popping the back — and every random op sequence
//! must keep the real cache observationally identical to it: same get
//! results, same length, same eviction count, and (because a final
//! full-domain probe sweep compares hit/miss per key) same surviving
//! entries, which pins the eviction *order* too.

use fsi_cache::{
    CacheKey, CacheScope, CacheSpec, CacheStats, DecisionCache, FrontedLru, LruCore, ShardedLru,
};
use proptest::collection;
use proptest::prelude::*;
use std::collections::HashMap;

const CAPACITY: usize = 8;
const CELLS: u64 = 16;

/// MRU-first reference LRU.
struct Model {
    entries: Vec<(CacheKey, u64)>,
    capacity: usize,
    evictions: u64,
}

impl Model {
    fn new(capacity: usize) -> Self {
        Model {
            entries: Vec::new(),
            capacity,
            evictions: 0,
        }
    }

    fn get(&mut self, key: CacheKey) -> Option<u64> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let hit = self.entries.remove(pos);
        let value = hit.1;
        self.entries.insert(0, hit);
        Some(value)
    }

    fn insert(&mut self, key: CacheKey, value: u64) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (key, value));
        if self.entries.len() > self.capacity {
            self.entries.pop();
            self.evictions += 1;
        }
    }
}

/// One randomized op: `kind` selects insert / get / generation bump,
/// `cell` the key within the domain, `value` the inserted payload.
type Op = (usize, u64, u64);

/// Drives `cache` and the model through `ops`, asserting observational
/// equivalence after every step.
fn run_ops<C: DecisionCache<u64>>(cache: &mut C, ops: &[Op], capacity: usize) {
    let mut model = Model::new(capacity);
    let mut generation: u64 = 1;
    for &(kind, cell, value) in ops {
        let key = CacheKey::new(cell % CELLS, generation);
        match kind % 8 {
            // Inserts dominate so the capacity bound is actually hit.
            0..=4 => {
                cache.insert(key, value);
                model.insert(key, value);
            }
            5 | 6 => {
                prop_assert_eq!(cache.get(key), model.get(key), "get {:?}", key);
            }
            _ => {
                // Generation bump: every prior entry must be
                // unreachable under the new generation — before any
                // new-generation insert, probing the whole cell domain
                // can only miss.
                generation += 1;
                for probe in 0..CELLS {
                    let stale = CacheKey::new(probe, generation);
                    prop_assert_eq!(cache.get(stale), None, "stale {:?}", stale);
                    prop_assert!(model.get(stale).is_none());
                }
            }
        }
        let stats = cache.stats();
        prop_assert!(
            stats.len <= capacity,
            "len {} exceeds capacity {}",
            stats.len,
            capacity
        );
        prop_assert_eq!(stats.len, model.entries.len());
        prop_assert_eq!(stats.evictions, model.evictions);
    }
    // Final sweep over every key the run could have touched: hit/miss
    // must agree per key, so the surviving sets — and therefore the
    // whole eviction history — are identical.
    for g in 1..=generation {
        for cell in 0..CELLS {
            let key = CacheKey::new(cell, g);
            prop_assert_eq!(cache.get(key), model.get(key), "sweep {:?}", key);
        }
    }
}

fn assert_counter_sanity(stats: CacheStats) {
    assert!(stats.hits + stats.misses > 0);
    assert!(stats.hit_rate() >= 0.0 && stats.hit_rate() <= 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lru_core_matches_the_reference_model(
        ops in collection::vec((0usize..8, 0u64..CELLS, 0u64..1000), 1..200),
    ) {
        let mut cache: LruCore<u64> = LruCore::new(CAPACITY).unwrap();
        run_ops(&mut cache, &ops, CAPACITY);
        assert_counter_sanity(cache.stats());
    }

    #[test]
    fn single_shard_sharded_lru_matches_the_reference_model(
        ops in collection::vec((0usize..8, 0u64..CELLS, 0u64..1000), 1..200),
    ) {
        // With one shard the sharded placement must behave exactly like
        // the core — the mutex is the only difference.
        let spec = CacheSpec {
            capacity: CAPACITY,
            shards: 1,
            scope: CacheScope::Shared,
        };
        let mut cache: ShardedLru<u64> = ShardedLru::new(&spec).unwrap();
        run_ops(&mut cache, &ops, CAPACITY);
        assert_counter_sanity(cache.stats());
    }

    #[test]
    fn fronted_lru_never_serves_a_wrong_value(
        ops in collection::vec((0usize..8, 0u64..CELLS, 0u64..1000), 1..300),
    ) {
        // The direct-mapped front may serve an entry the LRU has already
        // evicted (front hits skip the recency refresh, so the eviction
        // order diverges from the pure model on purpose). What must
        // never happen: a get returning anything but the value most
        // recently inserted for that exact key. A ground-truth map pins
        // that, plus the capacity bound and counter balance.
        let mut cache: FrontedLru<u64> = FrontedLru::new(CAPACITY).unwrap();
        let mut truth: HashMap<CacheKey, u64> = HashMap::new();
        let mut generation: u64 = 1;
        let mut gets: u64 = 0;
        for &(kind, cell, value) in &ops {
            let key = CacheKey::new(cell % CELLS, generation);
            match kind % 8 {
                0..=4 => {
                    cache.insert(key, value);
                    truth.insert(key, value);
                    prop_assert_eq!(cache.get(key), Some(value));
                    gets += 1;
                }
                5 | 6 => {
                    if let Some(got) = cache.get(key) {
                        prop_assert_eq!(Some(got), truth.get(&key).copied(), "{:?}", key);
                    }
                    gets += 1;
                }
                _ => {
                    // Generation bump: nothing keyed to the new
                    // generation can be served from either tier.
                    generation += 1;
                    for probe in 0..CELLS {
                        let stale = CacheKey::new(probe, generation);
                        prop_assert_eq!(cache.get(stale), None, "stale {:?}", stale);
                        gets += 1;
                    }
                }
            }
            let stats = cache.stats();
            prop_assert!(stats.len <= CAPACITY, "len {} exceeds capacity", stats.len);
            prop_assert_eq!(stats.hits + stats.misses, gets);
        }
    }

    #[test]
    fn multi_shard_lru_never_exceeds_capacity_and_serves_what_it_stores(
        ops in collection::vec((0usize..8, 0u64..64, 0u64..1000), 1..300),
    ) {
        // Across shards the global recency order interleaves, so the
        // model comparison is per-invariant instead: the capacity bound
        // holds, counters balance, and an insert immediately followed
        // by a get returns the inserted value.
        let spec = CacheSpec {
            capacity: 16,
            shards: 4,
            scope: CacheScope::Shared,
        };
        let cache: ShardedLru<u64> = ShardedLru::new(&spec).unwrap();
        let mut generation: u64 = 1;
        let mut gets: u64 = 0;
        for &(kind, cell, value) in &ops {
            let key = CacheKey::new(cell, generation);
            match kind % 8 {
                0..=4 => {
                    cache.insert(key, value);
                    prop_assert_eq!(cache.get(key), Some(value));
                    gets += 1;
                }
                5 | 6 => {
                    let _ = cache.get(key);
                    gets += 1;
                }
                _ => generation += 1,
            }
            let stats = cache.stats();
            prop_assert!(stats.len <= 16, "len {} exceeds capacity 16", stats.len);
            prop_assert_eq!(stats.hits + stats.misses, gets);
        }
    }
}
