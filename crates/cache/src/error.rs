//! Structured cache configuration errors.

use std::fmt;

/// Why a [`crate::CacheSpec`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// The capacity must hold at least one entry.
    ZeroCapacity,
    /// The shard count must be at least one.
    ZeroShards,
    /// The shard count must be a power of two (shard selection is a
    /// mask, not a division, on the hot path).
    ShardsNotPowerOfTwo {
        /// The rejected shard count.
        shards: usize,
    },
    /// The capacity must divide evenly across the shards so every shard
    /// bounds exactly `capacity / shards` entries.
    CapacityNotDivisible {
        /// The rejected capacity.
        capacity: usize,
        /// The shard count it does not divide by.
        shards: usize,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::ZeroCapacity => {
                write!(f, "cache capacity must be at least 1 entry")
            }
            CacheError::ZeroShards => {
                write!(f, "cache shard count must be at least 1")
            }
            CacheError::ShardsNotPowerOfTwo { shards } => {
                write!(f, "cache shard count must be a power of two, got {shards}")
            }
            CacheError::CapacityNotDivisible { capacity, shards } => {
                write!(
                    f,
                    "cache capacity {capacity} must be divisible by the shard count {shards}"
                )
            }
        }
    }
}

impl std::error::Error for CacheError {}
