//! Generation-invalidated decision caching for the serving layer.
//!
//! Lookups against a frozen index are deterministic per *(cell,
//! generation)*: the index assigns one calibrated decision per leaf per
//! trained generation, and a cell never straddles leaves. That makes a
//! decision cache safe by construction — as long as the generation is
//! part of the key. This crate provides exactly that shape:
//!
//! * [`CacheKey`] — a `(cell, generation)` pair. Every hot-swap rebuild
//!   bumps the publisher's generation, so all previously cached entries
//!   become unreachable *implicitly*: no flush, no epoch tracking, no
//!   coordination with readers. Stale entries simply age out of the LRU.
//! * [`DecisionCache`] — the minimal trait every cache placement speaks:
//!   `get`, `insert`, and a [`CacheStats`] snapshot of hit/miss/eviction
//!   counters.
//! * [`LruCore`] — the single-shard, capacity-bounded, exact-LRU core.
//!   No locking: a per-worker cache is owned by its worker and accessed
//!   through `&mut self`, so the hot path pays a hash probe and nothing
//!   else.
//! * [`ShardedLru`] — the concurrent placement: cores behind per-shard
//!   mutexes, selected by cell hash, shared across workers via `Arc`.
//!   The read path takes exactly one lock — its shard's — and the
//!   counters aggregate across shards on demand.
//! * [`CacheSpec`] — the serde-round-trippable configuration
//!   (capacity, shard count, [`CacheScope`]), validated up front like
//!   the other specs in this workspace ([`CacheSpec::validate`]).

#![forbid(unsafe_code)]

mod error;
mod lru;
mod spec;

pub use error::CacheError;
pub use lru::{FrontedLru, LruCore, ShardedLru};
pub use spec::{CacheScope, CacheSpec};

/// The cache key: which cell, under which published index.
///
/// `cell` identifies the spatial cell the query point maps to (callers
/// serving several shards fold the shard id into the high bits — the
/// cache does not interpret the value). `generation` is the publisher's
/// snapshot generation; because publishes only ever raise it, a rebuild
/// strands every older entry behind keys no future lookup constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Opaque cell identity (plus any caller-folded routing bits).
    pub cell: u64,
    /// Snapshot generation the cached decision was computed under.
    pub generation: u64,
}

impl CacheKey {
    /// Creates a key.
    #[inline]
    pub fn new(cell: u64, generation: u64) -> Self {
        Self { cell, generation }
    }
}

/// Counter snapshot of a cache: how the hit rate is reported everywhere
/// (`StatsBody`, the REPL `stats` line, benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the index.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Live entries right now.
    pub len: usize,
    /// Maximum entries the cache will hold.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache, in `[0, 1]`; `0.0`
    /// before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What every decision-cache placement can do.
///
/// Methods take `&mut self` so the zero-lock per-worker placement
/// ([`LruCore`]) and the mutex-sharded shared placement ([`ShardedLru`],
/// whose interior mutability makes `&mut` a formality) implement one
/// trait; workers own their placement either way.
pub trait DecisionCache<V> {
    /// Returns the cached value for `key`, refreshing its recency;
    /// counts a hit or a miss.
    fn get(&mut self, key: CacheKey) -> Option<V>;

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when at capacity.
    fn insert(&mut self, key: CacheKey, value: V);

    /// Counter snapshot.
    fn stats(&self) -> CacheStats;
}
