//! The capacity-bounded, exact-LRU store: a slot arena threaded by an
//! intrusive recency list, indexed by a hash map with a cheap
//! multiply-xor hasher (the default SipHash would cost more than the
//! tree traversal the cache is there to skip).

use crate::{CacheError, CacheKey, CacheSpec, CacheStats, DecisionCache};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex};

/// Null slot reference in the recency list.
const NIL: u32 = u32::MAX;

/// fxhash-style multiply-xor mixer — two u64 writes per [`CacheKey`],
/// a few arithmetic ops each.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// The fxhash multiplier (golden-ratio derived, odd).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// One arena slot: the entry plus its recency-list links.
struct Slot<V> {
    key: CacheKey,
    value: V,
    prev: u32,
    next: u32,
}

/// The single-shard LRU core: exact recency order, hard capacity bound,
/// hit/miss/eviction counters. No interior locking — a per-worker cache
/// is owned by its worker, and [`ShardedLru`] wraps cores in mutexes
/// for the shared placement.
pub struct LruCore<V> {
    map: HashMap<CacheKey, u32, BuildHasherDefault<FxHasher>>,
    slots: Vec<Slot<V>>,
    /// Most-recently-used slot (`NIL` when empty).
    head: u32,
    /// Least-recently-used slot — the eviction victim (`NIL` when empty).
    tail: u32,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V: Clone> LruCore<V> {
    /// An empty core bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        // The arena never outgrows the capacity, so slot indexes must
        // fit the u32 links (the map would be ≥ 96 GiB before this
        // fires, but the invariant is load-bearing for the links).
        let capacity = capacity.min(NIL as usize - 1);
        Ok(Self {
            map: HashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default()),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        })
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.len(),
            capacity: self.capacity,
        }
    }

    /// Returns and recency-refreshes the entry for `key`.
    #[inline]
    pub fn get(&mut self, key: CacheKey) -> Option<V> {
        match self.map.get(&key) {
            Some(&i) => {
                self.hits += 1;
                self.move_to_front(i);
                Some(self.slots[i as usize].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the LRU tail at capacity.
    pub fn insert(&mut self, key: CacheKey, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i as usize].value = value;
            self.move_to_front(i);
            return;
        }
        let i = if self.slots.len() < self.capacity {
            let i = self.slots.len() as u32;
            self.slots.push(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            i
        } else {
            // Full: the tail slot is the victim; reuse it in place.
            let i = self.tail;
            self.unlink(i);
            let slot = &mut self.slots[i as usize];
            let victim = slot.key;
            slot.key = key;
            slot.value = value;
            self.map.remove(&victim);
            self.evictions += 1;
            i
        };
        self.push_front(i);
        self.map.insert(key, i);
    }

    /// Splices slot `i` out of the recency list.
    #[inline]
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Links slot `i` in as the MRU head.
    #[inline]
    fn push_front(&mut self, i: u32) {
        let old = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old;
        }
        if old == NIL {
            self.tail = i;
        } else {
            self.slots[old as usize].prev = i;
        }
        self.head = i;
    }

    /// Recency refresh; a no-op when `i` is already the MRU head (the
    /// common case under skewed traffic — the hottest key pays nothing).
    #[inline]
    fn move_to_front(&mut self, i: u32) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }
}

impl<V> std::fmt::Debug for LruCore<V> {
    /// Summarizes shape and counters; entries are not enumerated.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCore")
            .field("len", &self.slots.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl<V: Clone> DecisionCache<V> for LruCore<V> {
    #[inline]
    fn get(&mut self, key: CacheKey) -> Option<V> {
        LruCore::get(self, key)
    }

    fn insert(&mut self, key: CacheKey, value: V) {
        LruCore::insert(self, key, value)
    }

    fn stats(&self) -> CacheStats {
        LruCore::stats(self)
    }
}

/// A direct-mapped front over [`LruCore`]: the fast path of the
/// per-worker placement.
///
/// Each front slot memoizes the last entry its hash bucket served, so a
/// front hit costs one indexed load and a 16-byte key compare — no hash
/// map probe and no recency splice. Correctness needs no coupling to
/// the LRU's residency: values are deterministic per [`CacheKey`] and
/// the generation rides *in* the key, so a memoized entry is either
/// byte-correct or fails the key compare (e.g. after a hot-swap bumps
/// the generation). The LRU underneath keeps the exact capacity bound,
/// eviction order and counters; front hits are counted separately and
/// folded into [`CacheStats::hits`].
///
/// The trade: front hits do not refresh LRU recency, so the eviction
/// order under mixed traffic is driven by the slower path only — an
/// accuracy-for-speed trade that never changes which value a key maps
/// to, only how long it stays resident.
pub struct FrontedLru<V> {
    /// `front.len()` is a power of two; slot = mixed cell bits & mask.
    front: Vec<Option<(CacheKey, V)>>,
    mask: usize,
    front_hits: u64,
    lru: LruCore<V>,
}

/// Front slots are clamped to this many entries (×48 B for decision
/// values ≈ 48 KiB) so the memo stays cache-resident regardless of the
/// configured LRU capacity.
const MAX_FRONT_SLOTS: usize = 1024;

impl<V: Copy> FrontedLru<V> {
    /// An empty fronted cache bounded to `capacity` LRU entries.
    pub fn new(capacity: usize) -> Result<Self, CacheError> {
        let lru = LruCore::new(capacity)?;
        let slots = lru
            .capacity()
            .next_power_of_two()
            .clamp(64, MAX_FRONT_SLOTS);
        Ok(Self {
            front: vec![None; slots],
            mask: slots - 1,
            front_hits: 0,
            lru,
        })
    }

    #[inline]
    fn slot_of(&self, key: CacheKey) -> usize {
        // Same mix as the shard selector: cell only, so a generation
        // bump re-uses the slot (and the stale memo loses the compare).
        ((key.cell.wrapping_mul(FX_SEED) >> 32) as usize) & self.mask
    }

    /// Returns the entry for `key`; LRU recency is refreshed only when
    /// the front misses (see the type docs for the trade).
    #[inline]
    pub fn get(&mut self, key: CacheKey) -> Option<V> {
        let slot = self.slot_of(key);
        if let Some((k, v)) = self.front[slot] {
            if k == key {
                self.front_hits += 1;
                return Some(v);
            }
        }
        let value = self.lru.get(key)?;
        self.front[slot] = Some((key, value));
        Some(value)
    }

    /// Inserts (or refreshes) `key` in both tiers.
    pub fn insert(&mut self, key: CacheKey, value: V) {
        self.lru.insert(key, value);
        let slot = self.slot_of(key);
        self.front[slot] = Some((key, value));
    }

    /// Counter snapshot: the LRU's bounds and eviction counters, with
    /// front hits folded into the hit count.
    pub fn stats(&self) -> CacheStats {
        let mut stats = self.lru.stats();
        stats.hits += self.front_hits;
        stats
    }
}

impl<V> std::fmt::Debug for FrontedLru<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontedLru")
            .field("front_slots", &self.front.len())
            .field("front_hits", &self.front_hits)
            .field("lru", &self.lru)
            .finish()
    }
}

impl<V: Copy> DecisionCache<V> for FrontedLru<V> {
    #[inline]
    fn get(&mut self, key: CacheKey) -> Option<V> {
        FrontedLru::get(self, key)
    }

    fn insert(&mut self, key: CacheKey, value: V) {
        FrontedLru::insert(self, key, value)
    }

    fn stats(&self) -> CacheStats {
        FrontedLru::stats(self)
    }
}

/// The shared placement: [`LruCore`] shards behind per-shard mutexes,
/// selected by cell hash. A lookup takes exactly one lock — its
/// shard's — and a cell stays on its shard across generations (the
/// generation is deliberately excluded from shard selection), so a
/// rebuild shifts no traffic between shards.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<LruCore<V>>>,
    mask: u64,
}

impl<V> std::fmt::Debug for ShardedLru<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<V: Clone> ShardedLru<V> {
    /// Builds the sharded cache a validated `spec` describes, with
    /// `capacity / shards` entries per shard.
    pub fn new(spec: &CacheSpec) -> Result<Self, CacheError> {
        spec.validate()?;
        let per_shard = spec.capacity / spec.shards;
        let shards = (0..spec.shards)
            .map(|_| LruCore::new(per_shard).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shards,
            mask: (spec.shards - 1) as u64,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard(&self, key: CacheKey) -> &Mutex<LruCore<V>> {
        // Multiply-mix the cell and take high-entropy bits; validation
        // guarantees a power-of-two shard count, so this is a mask.
        let mixed = key.cell.wrapping_mul(FX_SEED);
        &self.shards[((mixed >> 32) & self.mask) as usize]
    }

    /// Returns and recency-refreshes the entry for `key` (locks the
    /// key's shard only).
    #[inline]
    pub fn get(&self, key: CacheKey) -> Option<V> {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
    }

    /// Inserts (or refreshes) `key` in its shard.
    pub fn insert(&self, key: CacheKey, value: V) {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, value)
    }

    /// Counter snapshot aggregated across shards. Shards are locked one
    /// at a time, so concurrent traffic can land between shard reads;
    /// each per-shard count is exact, and any per-shard counter (and
    /// therefore the total) is monotone across snapshots.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(|e| e.into_inner()).stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.len += s.len;
            total.capacity += s.capacity;
        }
        total
    }
}

impl<V: Clone> DecisionCache<V> for ShardedLru<V> {
    #[inline]
    fn get(&mut self, key: CacheKey) -> Option<V> {
        ShardedLru::get(self, key)
    }

    fn insert(&mut self, key: CacheKey, value: V) {
        ShardedLru::insert(self, key, value)
    }

    fn stats(&self) -> CacheStats {
        ShardedLru::stats(self)
    }
}

impl<V: Clone> DecisionCache<V> for Arc<ShardedLru<V>> {
    #[inline]
    fn get(&mut self, key: CacheKey) -> Option<V> {
        ShardedLru::get(self, key)
    }

    fn insert(&mut self, key: CacheKey, value: V) {
        ShardedLru::insert(self, key, value)
    }

    fn stats(&self) -> CacheStats {
        ShardedLru::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(cell: u64, generation: u64) -> CacheKey {
        CacheKey::new(cell, generation)
    }

    #[test]
    fn core_hits_misses_and_evicts_in_lru_order() {
        let mut c: LruCore<u64> = LruCore::new(2).unwrap();
        assert_eq!(c.get(k(1, 1)), None);
        c.insert(k(1, 1), 10);
        c.insert(k(2, 1), 20);
        assert_eq!(c.get(k(1, 1)), Some(10)); // 1 is now MRU
        c.insert(k(3, 1), 30); // evicts 2, the LRU
        assert_eq!(c.get(k(2, 1)), None);
        assert_eq!(c.get(k(1, 1)), Some(10));
        assert_eq!(c.get(k(3, 1)), Some(30));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 2, 1));
        assert_eq!((s.len, s.capacity), (2, 2));
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency_without_growing() {
        let mut c: LruCore<u64> = LruCore::new(2).unwrap();
        c.insert(k(1, 1), 10);
        c.insert(k(2, 1), 20);
        c.insert(k(1, 1), 11); // refresh: 2 becomes LRU
        c.insert(k(3, 1), 30); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(k(1, 1)), Some(11));
        assert_eq!(c.get(k(2, 1)), None);
    }

    #[test]
    fn generation_bump_changes_the_key_so_old_entries_miss() {
        let mut c: LruCore<u64> = LruCore::new(8).unwrap();
        for cell in 0..4 {
            c.insert(k(cell, 1), cell);
        }
        for cell in 0..4 {
            assert_eq!(c.get(k(cell, 2)), None, "generation 2 must miss");
            assert_eq!(c.get(k(cell, 1)), Some(cell), "generation 1 still keyed");
        }
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert_eq!(
            LruCore::<u64>::new(0).unwrap_err(),
            CacheError::ZeroCapacity
        );
        let spec = CacheSpec::per_worker(0);
        assert!(ShardedLru::<u64>::new(&spec).is_err());
    }

    #[test]
    fn sharded_cache_bounds_each_shard_and_aggregates_counters() {
        let spec = CacheSpec {
            capacity: 16,
            shards: 4,
            scope: crate::CacheScope::Shared,
        };
        let c: ShardedLru<u64> = ShardedLru::new(&spec).unwrap();
        assert_eq!(c.shards(), 4);
        for cell in 0..200 {
            c.insert(k(cell, 1), cell);
        }
        let s = c.stats();
        assert_eq!(s.capacity, 16);
        assert!(s.len <= 16, "total {} exceeds capacity", s.len);
        assert_eq!(s.evictions, 200 - s.len as u64);
        // The last-inserted key of some shard is definitely resident.
        assert_eq!(c.get(k(199, 1)), Some(199));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn sharded_cache_works_through_the_trait_and_arc() {
        fn exercise<C: DecisionCache<u64>>(c: &mut C) {
            c.insert(k(7, 3), 42);
            assert_eq!(c.get(k(7, 3)), Some(42));
            assert_eq!(c.get(k(7, 4)), None);
            let s = c.stats();
            assert_eq!((s.hits, s.misses), (1, 1));
        }
        exercise(&mut LruCore::new(4).unwrap());
        exercise(&mut FrontedLru::new(4).unwrap());
        exercise(&mut ShardedLru::new(&CacheSpec::shared(64)).unwrap());
        exercise(&mut Arc::new(
            ShardedLru::new(&CacheSpec::shared(64)).unwrap(),
        ));
    }

    #[test]
    fn front_serves_memoized_entries_and_counts_them_as_hits() {
        let mut c: FrontedLru<u64> = FrontedLru::new(2).unwrap();
        c.insert(k(1, 1), 10);
        // First get fills the front from the LRU; second is a front hit.
        assert_eq!(c.get(k(1, 1)), Some(10));
        assert_eq!(c.get(k(1, 1)), Some(10));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 0));
        assert_eq!((s.len, s.capacity), (1, 2));
        // A generation bump loses the front's key compare and misses.
        assert_eq!(c.get(k(1, 2)), None);
        assert_eq!(c.stats().misses, 1);
        // The memo may outlive LRU residency — and must still be the
        // key's own (deterministic) value, never another key's.
        c.insert(k(2, 1), 20);
        c.insert(k(3, 1), 30); // capacity 2: evicts 1 from the LRU
        let s = c.stats();
        assert_eq!((s.len, s.evictions), (2, 1));
        let revived = c.get(k(1, 1));
        assert!(revived == Some(10) || revived.is_none(), "{revived:?}");
    }
}
