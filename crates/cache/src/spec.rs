//! Cache configuration: a plain serde-round-trippable spec, validated
//! up front like every other spec in this workspace.

use crate::CacheError;
use serde::{Deserialize, Serialize};

/// Where a decision cache lives relative to the transport workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheScope {
    /// Each worker owns a private cache: zero locking on the hot path,
    /// at the cost of one warm-up (and one capacity) per worker.
    PerWorker,
    /// All workers share one sharded cache: one warm-up and one
    /// capacity, at the cost of a per-shard mutex on the hot path.
    Shared,
}

/// Configuration for a decision cache behind a query service.
///
/// A spec is inert data — build one, [`validate`](CacheSpec::validate)
/// it, then hand it to the service layer, which turns it into a
/// [`crate::LruCore`] (per worker) or a shared [`crate::ShardedLru`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Total entries the cache holds (split evenly across shards).
    pub capacity: usize,
    /// Shard count of the [`CacheScope::Shared`] placement. Must be a
    /// power of two dividing `capacity`. Ignored by
    /// [`CacheScope::PerWorker`], which is its own single shard.
    pub shards: usize,
    /// Per-worker or shared placement.
    pub scope: CacheScope,
}

impl CacheSpec {
    /// Default shard count of [`CacheSpec::shared`].
    pub const DEFAULT_SHARDS: usize = 8;

    /// A per-worker cache of `capacity` entries.
    pub fn per_worker(capacity: usize) -> Self {
        Self {
            capacity,
            shards: 1,
            scope: CacheScope::PerWorker,
        }
    }

    /// A shared cache of `capacity` total entries over
    /// [`CacheSpec::DEFAULT_SHARDS`] shards.
    pub fn shared(capacity: usize) -> Self {
        Self {
            capacity,
            shards: Self::DEFAULT_SHARDS,
            scope: CacheScope::Shared,
        }
    }

    /// Rejects configurations the cache cannot honor exactly: zero
    /// capacity or shards, a non-power-of-two shard count, or a
    /// capacity that does not divide evenly across the shards.
    pub fn validate(&self) -> Result<(), CacheError> {
        if self.capacity == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        if self.shards == 0 {
            return Err(CacheError::ZeroShards);
        }
        if !self.shards.is_power_of_two() {
            return Err(CacheError::ShardsNotPowerOfTwo {
                shards: self.shards,
            });
        }
        if !self.capacity.is_multiple_of(self.shards) {
            return Err(CacheError::CapacityNotDivisible {
                capacity: self.capacity,
                shards: self.shards,
            });
        }
        Ok(())
    }
}

impl Default for CacheSpec {
    /// Per-worker, 4096 entries — a whole 64×64 grid per worker.
    fn default() -> Self {
        Self::per_worker(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_each_bad_shape() {
        assert!(CacheSpec::default().validate().is_ok());
        assert!(CacheSpec::per_worker(1).validate().is_ok());
        assert!(CacheSpec::shared(4096).validate().is_ok());
        assert_eq!(
            CacheSpec::per_worker(0).validate(),
            Err(CacheError::ZeroCapacity)
        );
        let mut spec = CacheSpec::shared(64);
        spec.shards = 0;
        assert_eq!(spec.validate(), Err(CacheError::ZeroShards));
        spec.shards = 6;
        assert_eq!(
            spec.validate(),
            Err(CacheError::ShardsNotPowerOfTwo { shards: 6 })
        );
        spec.shards = 16;
        spec.capacity = 40;
        assert_eq!(
            spec.validate(),
            Err(CacheError::CapacityNotDivisible {
                capacity: 40,
                shards: 16
            })
        );
    }

    #[test]
    fn specs_round_trip_through_json() {
        for spec in [
            CacheSpec::default(),
            CacheSpec::shared(1024),
            CacheSpec {
                capacity: 32,
                shards: 4,
                scope: CacheScope::Shared,
            },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: CacheSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }
}
