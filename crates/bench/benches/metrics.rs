//! `cargo bench` harness for the fairness-metric throughput suite at
//! full size; the measurement code lives in [`fsi_bench::suites::metrics`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{metrics, Profile};

fn benches_full(c: &mut Criterion) {
    metrics::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
