//! Fairness-metric throughput: ENCE, grouped calibration, grouped ECE.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsi_bench::bench_dataset;
use fsi_fairness::{ence, group_calibration, group_ece, SpatialGroups};
use fsi_geo::Partition;
use fsi_ml::calibration::BinningStrategy;
use std::hint::black_box;

fn metrics(c: &mut Criterion) {
    let dataset = bench_dataset(1153, 64);
    let labels = dataset.threshold_labels("avg_act", 22.0).unwrap();
    let scores: Vec<f64> = dataset
        .locations()
        .iter()
        .map(|p| (0.3 + 0.4 * p.x + 0.2 * p.y).clamp(0.0, 1.0))
        .collect();

    let mut group = c.benchmark_group("fairness_metrics");
    for regions in [16usize, 256, 1024] {
        let side = (regions as f64).sqrt() as usize;
        let partition = Partition::uniform(dataset.grid(), side, side).unwrap();
        let groups = SpatialGroups::from_partition(dataset.cells(), &partition).unwrap();
        group.bench_with_input(BenchmarkId::new("ence", regions), &groups, |b, g| {
            b.iter(|| black_box(ence(&scores, &labels, g).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("group_calibration", regions),
            &groups,
            |b, g| b.iter(|| black_box(group_calibration(&scores, &labels, g).unwrap().len())),
        );
        group.bench_with_input(
            BenchmarkId::new("group_ece_15bin", regions),
            &groups,
            |b, g| {
                b.iter(|| {
                    black_box(
                        group_ece(&scores, &labels, g, 15, BinningStrategy::EqualWidth)
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, metrics);
criterion_main!(benches);
