//! `cargo bench` harness for the distributed-serving suite at full
//! size; the measurement code lives in [`fsi_bench::suites::dist`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{dist, Profile};

fn benches_full(c: &mut Criterion) {
    dist::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
