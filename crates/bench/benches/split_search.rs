//! `cargo bench` harness for the SAT-vs-naive split-scan suite at full
//! size; the measurement code lives in [`fsi_bench::suites::split_search`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{split_search, Profile};

fn benches_full(c: &mut Criterion) {
    split_search::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
