//! Classifier fit/score throughput on the paper-scale workload
//! (1153 rows, 7 design columns under the centroid encoding).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsi_bench::bench_dataset;
use fsi_data::{build_design_matrix, LocationEncoding};
use fsi_geo::Partition;
use fsi_pipeline::trainer::{train_and_score, ModelKind};
use std::hint::black_box;

fn ml_training(c: &mut Criterion) {
    let dataset = bench_dataset(1153, 64);
    let labels = dataset.threshold_labels("avg_act", 22.0).unwrap();
    let partition = Partition::uniform(dataset.grid(), 8, 8).unwrap();
    let design = build_design_matrix(&dataset, &partition, LocationEncoding::CentroidXY).unwrap();
    let train_idx: Vec<usize> = (0..dataset.len()).collect();

    let mut group = c.benchmark_group("fit_and_score_1153x7");
    group.sample_size(10);
    for kind in ModelKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &k| {
                b.iter(|| {
                    let out = train_and_score(k, &design.matrix, &labels, &train_idx, None)
                        .expect("training succeeds");
                    black_box(out.scores.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ml_training);
criterion_main!(benches);
