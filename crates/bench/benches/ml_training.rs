//! `cargo bench` harness for the classifier-training suite at full size;
//! the measurement code lives in [`fsi_bench::suites::ml_training`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{ml_training, Profile};

fn benches_full(c: &mut Criterion) {
    ml_training::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
