//! `cargo bench` harness for the decision-cache suite at full size; the
//! measurement code lives in [`fsi_bench::suites::cache`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{cache, Profile};

fn benches_full(c: &mut Criterion) {
    cache::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
