//! `cargo bench` harness for the resilience suite at full size; the
//! measurement code lives in [`fsi_bench::suites::resil`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{resil, Profile};

fn benches_full(c: &mut Criterion) {
    resil::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
