//! `cargo bench` harness for the query-protocol suite (wire
//! encode/decode, `QueryService` dispatch, HTTP loopback) at full size;
//! the measurement code lives in [`fsi_bench::suites::proto`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{proto, Profile};

fn benches_full(c: &mut Criterion) {
    proto::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
