//! End-to-end partition construction cost per method.
//!
//! Reproduces the paper's §5.3.1 comparison: Fair KD-tree construction
//! (one model training) vs Iterative Fair KD-tree (one training per
//! level). The paper measured 102 s vs 189 s at height 10 in Python; we
//! compare the same ratio on the Rust pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsi_bench::bench_dataset;
use fsi_pipeline::{run_method, Method, RunConfig, TaskSpec};
use std::hint::black_box;

fn construction(c: &mut Criterion) {
    let dataset = bench_dataset(1153, 64);
    let task = TaskSpec::act();
    let config = RunConfig::default();

    let mut group = c.benchmark_group("construction_h10");
    group.sample_size(10);
    for method in [
        Method::MedianKd,
        Method::FairKd,
        Method::IterativeFairKd,
        Method::GridReweight,
        Method::FairQuad,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{method:?}")),
            &method,
            |b, &m| {
                b.iter(|| {
                    let run = run_method(&dataset, &task, m, 10, &config).expect("run");
                    black_box(run.eval.full.ence)
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fair_kd_by_height");
    group.sample_size(10);
    for height in [4usize, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(height), &height, |b, &h| {
            b.iter(|| {
                let run = run_method(&dataset, &task, Method::FairKd, h, &config).expect("run");
                black_box(run.eval.full.ence)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
