//! `cargo bench` harness for the construction suite at full size; the
//! measurement code lives in [`fsi_bench::suites::construction`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{construction, Profile};

fn benches_full(c: &mut Criterion) {
    construction::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
