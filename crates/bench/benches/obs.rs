//! `cargo bench` harness for the observability suite at full size; the
//! measurement code lives in [`fsi_bench::suites::obs`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{obs, Profile};

fn benches_full(c: &mut Criterion) {
    obs::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
