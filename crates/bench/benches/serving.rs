//! `cargo bench` harness for the online-serving throughput suite at
//! full size; the measurement code lives in [`fsi_bench::suites::serving`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{serving, Profile};

fn benches_full(c: &mut Criterion) {
    serving::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
