//! `cargo bench` harness for the streaming-ingestion suite at full
//! size; the measurement code lives in [`fsi_bench::suites::ingest`].

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::suites::{ingest, Profile};

fn benches_full(c: &mut Criterion) {
    ingest::register(c, &Profile::full());
}

criterion_group!(benches, benches_full);
criterion_main!(benches);
