//! # fsi-bench — benchmark fixtures, suites, and the perf-gate runner
//!
//! The measurement code for all ten suites lives in [`suites`], driven
//! from two entry points:
//!
//! * the classic per-suite `cargo bench` harnesses in `benches/*.rs`;
//! * the `runner` binary (`cargo run -p fsi-bench --release --bin runner
//!   -- --smoke|--full`), which runs everything in one process and
//!   saves/compares the repo-root `BENCH_baseline.json` perf baseline.
//!
//! The suites:
//!
//! * [`suites::construction`] — end-to-end partition construction per
//!   method (reproduces the §5.3.1 Fair-vs-Iterative cost comparison as
//!   a ratio) plus a Fair KD-tree height sweep.
//! * [`suites::split_search`] — the Eq. 9 split scan: summed-area-table
//!   O(extent) implementation vs a naive per-cell rescan.
//! * [`suites::ml_training`] — classifier fit/score throughput.
//! * [`suites::metrics`] — ENCE and grouped-calibration throughput.
//! * [`suites::serving`] — online `FrozenIndex` serving: compile, point
//!   and batch lookups, range queries, hot-swap publishing, and
//!   multi-threaded driver scaling.
//! * [`suites::proto`] — the typed query protocol: wire encode/decode,
//!   `QueryService` dispatch overhead, and HTTP loopback throughput.
//! * [`suites::cache`] — the LRU decision cache in front of the
//!   service: cold, hot and Zipf-skewed dispatch throughput plus the
//!   uncached twin the ≥ 3x acceptance bar divides against.
//! * [`suites::dist`] — distributed serving: the scatter-gather
//!   coordinator vs a single box, and keep-alive HTTP round-trips to a
//!   remote shard.
//! * [`suites::obs`] — the telemetry layer's cost: instrumented vs
//!   uninstrumented dispatch (with the in-suite ≤ 1.10x overhead gate),
//!   snapshot folding, and Prometheus text rendering.
//! * [`suites::ingest`] — the streaming-ingestion layer: end-to-end
//!   `Request::Ingest` throughput, the per-poll drift-check cost, and
//!   the live-vs-frozen lookup twins (with the in-suite ≤ 1.10x
//!   ingest-while-serving gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod suites;

use fsi_core::CellStats;
use fsi_data::synth::city::{CityConfig, CityGenerator};
use fsi_data::SpatialDataset;

/// A deterministic mid-size dataset for benches (LA-like, 16k grid).
pub fn bench_dataset(n: usize, grid_side: usize) -> SpatialDataset {
    CityGenerator::new(CityConfig {
        n_individuals: n,
        grid_side,
        seed: 99,
        ..CityConfig::default()
    })
    .expect("valid bench config")
    .generate()
    .expect("bench dataset generates")
}

/// Cell statistics with a plausible residual field for split benches.
pub fn bench_stats(dataset: &SpatialDataset) -> CellStats {
    let labels = dataset
        .threshold_labels("avg_act", 22.0)
        .expect("act outcome exists");
    // A crude score proxy: positive rate blended with location, enough to
    // create non-trivial residual structure without training a model.
    let scores: Vec<f64> = dataset
        .locations()
        .iter()
        .map(|p| (0.3 + 0.4 * p.x + 0.2 * p.y).clamp(0.0, 1.0))
        .collect();
    let counts = dataset.cell_populations();
    let score_sums = dataset.cell_sums(&scores).expect("lengths match");
    let label_sums = dataset.cell_label_sums(&labels).expect("lengths match");
    CellStats::new(dataset.grid(), &counts, &score_sums, &label_sums).expect("stats build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let d = bench_dataset(300, 32);
        assert_eq!(d.len(), 300);
        let s = bench_stats(&d);
        assert_eq!(s.shape(), (32, 32));
        assert_eq!(s.count(&d.grid().full_rect()), 300.0);
    }
}
