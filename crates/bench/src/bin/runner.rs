//! `fsi-bench` runner: all ten benchmark suites in one process, with a
//! machine-readable perf baseline at the repo root.
//!
//! ```text
//! cargo run -p fsi-bench --release --bin runner -- --smoke|--full [OPTIONS]
//!
//!   --smoke                 tiny datasets, seconds end-to-end (CI profile)
//!   --full                  paper-scale datasets (the recorded baseline)
//!   --save-baseline [PATH]  merge results into PATH
//!                           (default <repo root>/BENCH_baseline.json;
//!                           this is also the default action when
//!                           --baseline is not given)
//!   --baseline [PATH]       compare against PATH instead of saving; exit
//!                           1 when any benchmark regressed past the
//!                           threshold. Current results are still written
//!                           to target/criterion/BENCH_current.json.
//!   --threshold-pct N       regression threshold in percent (default 15;
//!                           CI uses 200, i.e. fail only beyond 3x)
//!   --filter SUBSTR         only run benchmarks whose id contains SUBSTR
//! ```
//!
//! Per-bench JSON artifacts always land under `target/criterion/<group>/`.
//! Smoke and full benchmark ids encode their dataset sizes, so one
//! baseline file can hold both profiles side by side; comparison is
//! strictly by id, and ids absent from the baseline are reported as new,
//! never as failures.

use criterion::report::BenchRecord;
use criterion::Criterion;
use fsi_bench::suites::{register_all, Profile};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    profile: Profile,
    baseline: Option<PathBuf>,
    save_baseline: PathBuf,
    explicit_save: bool,
    threshold_pct: f64,
    filter: Option<String>,
}

fn usage(err: &str) -> ! {
    eprintln!("runner: {err}");
    eprintln!(
        "usage: runner --smoke|--full [--save-baseline [PATH]] [--baseline [PATH]] \
         [--threshold-pct N] [--filter SUBSTR]"
    );
    std::process::exit(2);
}

/// The workspace root: the parent of the `target` directory the runner
/// executable lives in.
fn repo_root() -> PathBuf {
    criterion::target_dir()
        .parent()
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn parse_args() -> Args {
    let default_baseline = repo_root().join("BENCH_baseline.json");
    let mut profile: Option<Profile> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut save_baseline = default_baseline.clone();
    let mut explicit_save = false;
    let mut threshold_pct = 15.0;
    let mut filter = None;

    let mut args = std::env::args().skip(1).peekable();
    // A PATH following --baseline / --save-baseline is optional; a bare
    // flag (or one followed by another flag) means the default path.
    let optional_path = |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>| {
        if args.peek().is_some_and(|v| !v.starts_with("--")) {
            args.next().map(PathBuf::from)
        } else {
            None
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Some(Profile::smoke()),
            "--full" => profile = Some(Profile::full()),
            "--baseline" => {
                baseline =
                    Some(optional_path(&mut args).unwrap_or_else(|| default_baseline.clone()))
            }
            "--save-baseline" => {
                if let Some(path) = optional_path(&mut args) {
                    save_baseline = path;
                }
                explicit_save = true;
            }
            "--threshold-pct" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--threshold-pct requires a value"));
                threshold_pct = value
                    .parse()
                    .unwrap_or_else(|_| usage("--threshold-pct takes a percentage"));
            }
            "--filter" => {
                filter = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--filter requires a value")),
                );
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let profile = profile.unwrap_or_else(|| usage("pick a profile: --smoke or --full"));
    if explicit_save && baseline.is_some() {
        usage("--save-baseline and --baseline are mutually exclusive");
    }
    Args {
        profile,
        baseline,
        save_baseline,
        explicit_save,
        threshold_pct,
        filter,
    }
}

fn run_suites(args: &Args) -> Vec<BenchRecord> {
    let mut criterion = args.profile.configure(Criterion::default());
    if let Some(filter) = &args.filter {
        criterion = criterion.filter(filter.clone());
    }
    println!(
        "fsi-bench runner — profile {} (n={}, grid={}x{}, h={})",
        args.profile.name,
        args.profile.n_individuals,
        args.profile.grid_side,
        args.profile.grid_side,
        args.profile.method_height,
    );
    let started = std::time::Instant::now();
    register_all(&mut criterion, &args.profile);
    let records = criterion::take_records();
    println!(
        "{} benchmarks measured in {:.1?} (artifacts under {})",
        records.len(),
        started.elapsed(),
        criterion::default_output_dir().display(),
    );
    records
}

fn main() -> ExitCode {
    let args = parse_args();
    let records = run_suites(&args);
    if records.is_empty() {
        eprintln!("runner: no benchmarks matched");
        return ExitCode::from(2);
    }

    let code = match &args.baseline {
        Some(baseline_path) => {
            // Keep this run's numbers inspectable (CI uploads the whole
            // target/criterion directory) without touching the baseline.
            // Written fresh — never merged — so it only ever holds this
            // run's results even when target/ was restored from a cache.
            let current_path = criterion::default_output_dir().join("BENCH_current.json");
            let mut current = criterion::report::Baseline::default();
            current.merge_records(&records);
            if let Err(err) = current.save(&current_path) {
                eprintln!("runner: cannot write {}: {err}", current_path.display());
            }
            // Unfiltered runs must also account for every baseline entry
            // of this profile: a vanished benchmark fails the gate.
            let expected_profile = if args.filter.is_none() {
                Some(args.profile.name)
            } else {
                None
            };
            criterion::compare_against(
                baseline_path,
                &records,
                args.threshold_pct,
                expected_profile,
            )
        }
        None => {
            let _ = args.explicit_save; // saving is also the default action
            criterion::save_baseline_at(&args.save_baseline, &records)
        }
    };
    ExitCode::from(u8::try_from(code).unwrap_or(2))
}
