//! End-to-end partition construction cost per method.
//!
//! Reproduces the paper's §5.3.1 comparison: Fair KD-tree construction
//! (one model training) vs Iterative Fair KD-tree (one training per
//! level). The paper measured 102 s vs 189 s at height 10 in Python; we
//! compare the same ratio on the Rust pipeline, plus a height sweep for
//! the Fair KD-tree.

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, BenchmarkId, Criterion};
use fsi::{Method, Pipeline, TaskSpec};

/// The construction methods compared at the profile's full height.
pub const METHODS: [Method; 5] = [
    Method::MedianKd,
    Method::FairKd,
    Method::IterativeFairKd,
    Method::GridReweight,
    Method::FairQuad,
];

/// Registers the construction suite under `construction/…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);

    let mut group = c.benchmark_group(format!(
        "construction/n{}_h{}",
        p.n_individuals, p.method_height
    ));
    for method in METHODS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{method:?}")),
            &method,
            |b, &m| {
                b.iter(|| {
                    let run = Pipeline::on(&dataset)
                        .task(TaskSpec::act())
                        .method(m)
                        .height(p.method_height)
                        .run()
                        .expect("run");
                    black_box(run.eval.full.ence)
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group(format!("construction/fair_kd_heights_n{}", p.n_individuals));
    for &height in p.heights {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{height}")),
            &height,
            |b, &h| {
                b.iter(|| {
                    let run = Pipeline::on(&dataset)
                        .task(TaskSpec::act())
                        .method(Method::FairKd)
                        .height(h)
                        .run()
                        .expect("run");
                    black_box(run.eval.full.ence)
                })
            },
        );
    }
    group.finish();
}
