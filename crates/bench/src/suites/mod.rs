//! The eleven benchmark suites, parameterized by a size [`Profile`].
//!
//! Each suite exposes `register(c, profile)` so the same measurement code
//! drives both entry points:
//!
//! * the classic `cargo bench` harnesses in `benches/*.rs` (one binary
//!   per suite, full-size datasets);
//! * the `fsi-bench` runner binary (`cargo run -p fsi-bench --bin
//!   runner`), which runs all eleven suites in one process under either
//!   the `--smoke` or `--full` profile and records the repo's perf
//!   baseline.
//!
//! Benchmark ids encode the dataset size (`construction/n1153_h10/FairKd`),
//! so smoke and full results never collide in artifacts or baselines.

use criterion::Criterion;
use std::time::Duration;

pub mod cache;
pub mod construction;
pub mod dist;
pub mod ingest;
pub mod metrics;
pub mod ml_training;
pub mod obs;
pub mod proto;
pub mod resil;
pub mod serving;
pub mod split_search;

/// Dataset sizes and measurement settings for one benchmark run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Label recorded into artifacts and baselines (`smoke` / `full`).
    pub name: &'static str,
    /// Individuals in the synthetic city.
    pub n_individuals: usize,
    /// Base grid side (the paper's `U = V`).
    pub grid_side: usize,
    /// Tree height for the per-method construction comparison.
    pub method_height: usize,
    /// Heights swept in the Fair KD-tree height scaling group.
    pub heights: &'static [usize],
    /// Region counts swept in the metrics suite (must be perfect squares
    /// whose side divides into the grid).
    pub metric_regions: &'static [usize],
    /// Timed samples per benchmark.
    pub sample_size: usize,
    /// Warm-up duration per benchmark.
    pub warm_up: Duration,
    /// Measurement-time budget per benchmark.
    pub measurement_time: Duration,
    /// Query points per iteration in the serving lookup benchmarks.
    pub serve_batch: usize,
    /// Query points swept per multi-threaded serving iteration.
    pub serve_points: usize,
    /// Worker-thread counts for the serving scaling benchmarks.
    pub serve_threads: &'static [usize],
}

impl Profile {
    /// Paper-scale sizes (1153 individuals on a 64×64 grid, height 10):
    /// the profile behind the recorded `BENCH_baseline.json` numbers.
    pub fn full() -> Self {
        Profile {
            name: "full",
            n_individuals: 1153,
            grid_side: 64,
            method_height: 10,
            heights: &[4, 6, 8, 10],
            metric_regions: &[16, 256, 1024],
            sample_size: 15,
            warm_up: Duration::from_millis(200),
            measurement_time: Duration::from_millis(1000),
            serve_batch: 4096,
            serve_points: 262_144,
            serve_threads: &[1, 2, 4],
        }
    }

    /// Tiny sizes for CI: the whole run takes seconds, not minutes.
    pub fn smoke() -> Self {
        Profile {
            name: "smoke",
            n_individuals: 300,
            grid_side: 16,
            method_height: 4,
            heights: &[2, 3, 4],
            metric_regions: &[16, 64],
            sample_size: 10,
            warm_up: Duration::from_millis(20),
            measurement_time: Duration::from_millis(100),
            serve_batch: 1024,
            serve_points: 16_384,
            serve_threads: &[2],
        }
    }

    /// Applies this profile's measurement settings and label to a
    /// [`Criterion`] driver (used by the runner; the `cargo bench`
    /// harnesses keep the CLI-configurable defaults instead).
    #[must_use]
    pub fn configure(&self, c: Criterion) -> Criterion {
        c.profile(self.name)
            .sample_size(self.sample_size)
            .warm_up_time(self.warm_up)
            .measurement_time(self.measurement_time)
    }
}

/// Registers all eleven suites on one driver, in baseline order.
pub fn register_all(c: &mut Criterion, profile: &Profile) {
    construction::register(c, profile);
    split_search::register(c, profile);
    ml_training::register(c, profile);
    metrics::register(c, profile);
    serving::register(c, profile);
    proto::register(c, profile);
    cache::register(c, profile);
    dist::register(c, profile);
    obs::register(c, profile);
    ingest::register(c, profile);
    resil::register(c, profile);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_internally_consistent() {
        for p in [Profile::smoke(), Profile::full()] {
            assert!(p.sample_size >= 2);
            assert!(p.heights.contains(&p.method_height));
            assert!(p.serve_batch > 0 && p.serve_points >= p.serve_batch);
            assert!(!p.serve_threads.is_empty());
            assert!(p.serve_threads.windows(2).all(|w| w[0] < w[1]));
            for &r in p.metric_regions {
                let side = (r as f64).sqrt() as usize;
                assert_eq!(side * side, r, "{}: {r} is not a perfect square", p.name);
                assert!(
                    side <= p.grid_side,
                    "{}: {r} regions do not fit a {} grid",
                    p.name,
                    p.grid_side
                );
            }
        }
    }
}
