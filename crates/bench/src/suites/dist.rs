//! Distributed-serving costs: what the scatter-gather coordinator adds
//! on top of a single-box service, and what a wire hop to a remote
//! shard costs.
//!
//! * `coordinator_*` vs `single_box_*` — the same queries through a 2×2
//!   partial-index topology (routing + gather) and through one
//!   unsharded `QueryService`; the gap is the coordination overhead.
//! * `remote_lookup_http_*` — keep-alive HTTP round-trips through a
//!   `RemoteShard` backend against a loopback shard server: the
//!   per-query price of moving a shard out of process.

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, Criterion};
use fsi::{
    Method, Pipeline, Request, Response, ShardBackend, TaskSpec, TopologySpec, WirePoint, WireRect,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Registers the distributed-serving suite under `serving/dist_…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let serving = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(p.method_height)
        .run()
        .expect("pipeline run for distributed fixtures")
        .serve()
        .expect("deployment wires up");

    let bounds = *dataset.grid().bounds();
    let mut rng = StdRng::seed_from_u64(4711);
    let batch = p.serve_batch.min(1024);
    let points: Vec<WirePoint> = (0..batch)
        .map(|_| {
            WirePoint::new(
                bounds.min_x + rng.random::<f64>() * bounds.width(),
                bounds.min_y + rng.random::<f64>() * bounds.height(),
            )
        })
        .collect();
    let rects: Vec<WireRect> = (0..64)
        .map(|_| {
            let w = bounds.width() * (0.02 + 0.1 * rng.random::<f64>());
            let h = bounds.height() * (0.02 + 0.1 * rng.random::<f64>());
            let x0 = bounds.min_x + rng.random::<f64>() * (bounds.width() - w);
            let y0 = bounds.min_y + rng.random::<f64>() * (bounds.height() - h);
            WireRect::new(x0, y0, x0 + w, y0 + h)
        })
        .collect();

    let mut single_box = serving.service();
    let mut coordinator = serving
        .service_over(&TopologySpec::local(2, 2))
        .expect("2x2 partial topology builds");

    // One shard server on loopback behind a keep-alive RemoteShard —
    // the wire-hop fixture.
    let shard_server = fsi::HttpServer::bind(
        serving
            .service_shard(&TopologySpec::local(1, 1), 0)
            .expect("single-slot shard service builds"),
        "127.0.0.1:0",
    )
    .expect("shard server binds");
    let remote =
        fsi::RemoteShard::connect(&shard_server.addr().to_string()).expect("remote shard connects");

    let mut group = c.benchmark_group(format!(
        "serving/dist_n{}_h{}",
        p.n_individuals, p.method_height
    ));

    // Point lookups through the routing coordinator vs one box.
    group.bench_function(format!("coordinator_lookup_x{batch}"), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for wp in &points {
                match coordinator.dispatch(&Request::Lookup { x: wp.x, y: wp.y }) {
                    Response::Decision { decision } => acc = acc.wrapping_add(decision.leaf_id),
                    other => panic!("expected decision, got {other:?}"),
                }
            }
            black_box(acc)
        })
    });
    group.bench_function(format!("single_box_lookup_x{batch}"), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for wp in &points {
                match single_box.dispatch(&Request::Lookup { x: wp.x, y: wp.y }) {
                    Response::Decision { decision } => acc = acc.wrapping_add(decision.leaf_id),
                    other => panic!("expected decision, got {other:?}"),
                }
            }
            black_box(acc)
        })
    });

    // One batch request: scatter into per-shard sub-batches, gather in
    // request order.
    group.bench_function(format!("coordinator_batch_x{batch}"), |b| {
        let request = Request::LookupBatch {
            points: points.clone(),
        };
        b.iter(|| match coordinator.dispatch(&request) {
            Response::Decisions { decisions } => black_box(decisions.len()),
            other => panic!("expected decisions, got {other:?}"),
        })
    });

    // Range queries fan out to every covering shard and merge.
    group.bench_function("coordinator_range_x64", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &rect in &rects {
                match coordinator.dispatch(&Request::RangeQuery { rect }) {
                    Response::Regions { ids } => acc = acc.wrapping_add(ids.len()),
                    other => panic!("expected regions, got {other:?}"),
                }
            }
            black_box(acc)
        })
    });

    // The wire hop: keep-alive HTTP round-trips through a RemoteShard.
    group.bench_function("remote_lookup_http_x64", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for wp in points.iter().take(64) {
                match remote.dispatch(&Request::Lookup { x: wp.x, y: wp.y }) {
                    Response::Decision { decision } => acc = acc.wrapping_add(decision.leaf_id),
                    other => panic!("expected decision, got {other:?}"),
                }
            }
            black_box(acc)
        })
    });

    group.finish();
    shard_server.shutdown();
}
