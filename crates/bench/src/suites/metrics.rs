//! Fairness-metric throughput: ENCE, grouped calibration, grouped ECE.

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, BenchmarkId, Criterion};
use fsi_fairness::{ence, group_calibration, group_ece, SpatialGroups};
use fsi_geo::Partition;
use fsi_ml::calibration::BinningStrategy;

/// Registers the metrics suite under `metrics/…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let labels = dataset.threshold_labels("avg_act", 22.0).unwrap();
    let scores: Vec<f64> = dataset
        .locations()
        .iter()
        .map(|pt| (0.3 + 0.4 * pt.x + 0.2 * pt.y).clamp(0.0, 1.0))
        .collect();

    let mut group = c.benchmark_group(format!("metrics/n{}", p.n_individuals));
    for &regions in p.metric_regions {
        let side = (regions as f64).sqrt() as usize;
        let partition = Partition::uniform(dataset.grid(), side, side).unwrap();
        let groups = SpatialGroups::from_partition(dataset.cells(), &partition).unwrap();
        group.bench_with_input(BenchmarkId::new("ence", regions), &groups, |b, g| {
            b.iter(|| black_box(ence(&scores, &labels, g).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("group_calibration", regions),
            &groups,
            |b, g| b.iter(|| black_box(group_calibration(&scores, &labels, g).unwrap().len())),
        );
        group.bench_with_input(
            BenchmarkId::new("group_ece_15bin", regions),
            &groups,
            |b, g| {
                b.iter(|| {
                    black_box(
                        group_ece(&scores, &labels, g, 15, BinningStrategy::EqualWidth)
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}
