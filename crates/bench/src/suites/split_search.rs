//! The Eq. 9 split-index scan: summed-area tables vs a naive rescan.
//!
//! Scoring one candidate needs the residual of both sides. With SATs that
//! is O(1) per candidate (O(extent) per node); recomputing per-cell sums
//! for every candidate is O(extent · cells). This ablation bench
//! quantifies why `CellStats` exists.

use super::Profile;
use crate::{bench_dataset, bench_stats};
use criterion::{black_box, BenchmarkId, Criterion};
use fsi_core::{split, BuildConfig, FairSplit};
use fsi_geo::{Axis, CellRect};

/// Naive candidate scan: per-cell sums recomputed for every offset.
fn naive_scan(
    counts: &[f64],
    scores: &[f64],
    labels: &[f64],
    cols: usize,
    region: &CellRect,
) -> (usize, f64) {
    let residual = |rect: &CellRect| -> f64 {
        let mut r = 0.0;
        for (row, col) in rect.cells() {
            let i = row * cols + col;
            let _ = counts[i];
            r += scores[i] - labels[i];
        }
        r
    };
    let mut best = (1usize, f64::INFINITY);
    for k in 1..region.num_rows() {
        let (lo, hi) = region.split_at(Axis::Row, k).expect("valid offset");
        let z = (residual(&lo).abs() - residual(&hi).abs()).abs();
        if z < best.1 {
            best = (k, z);
        }
    }
    best
}

/// Registers the split-scan suite under `split_search/…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let stats = bench_stats(&dataset);
    let labels = dataset.threshold_labels("avg_act", 22.0).unwrap();
    let scores: Vec<f64> = dataset
        .locations()
        .iter()
        .map(|pt| (0.3 + 0.4 * pt.x + 0.2 * pt.y).clamp(0.0, 1.0))
        .collect();
    let counts = dataset.cell_populations();
    let score_sums = dataset.cell_sums(&scores).unwrap();
    let label_sums = dataset.cell_label_sums(&labels).unwrap();
    let region = dataset.grid().full_rect();
    let config = BuildConfig::default();

    let mut group = c.benchmark_group(format!("split_search/grid{}", p.grid_side));
    group.bench_function(BenchmarkId::from_parameter("sat"), |b| {
        b.iter(|| {
            let d = split::choose_split(&FairSplit, &stats, &region, Axis::Row, &config)
                .expect("no error")
                .expect("grid is splittable");
            black_box(d.offset)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("naive"), |b| {
        b.iter(|| {
            let best = naive_scan(&counts, &score_sums, &label_sums, p.grid_side, &region);
            black_box(best.0)
        })
    });
    group.finish();
}
