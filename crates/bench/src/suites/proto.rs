//! The query-protocol suite: wire encode/decode cost, in-process
//! `QueryService` dispatch overhead (benched against the raw
//! `FrozenIndex::lookup` numbers in the `serving` suite — the
//! acceptance bar is ≤ 2x), and end-to-end HTTP loopback throughput
//! with batched requests (the ≥ 50k lookups/s acceptance bar).

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, Criterion};
use fsi::{
    decode_request, decode_response, encode_request, encode_response, HttpClient, Method, Pipeline,
    Request, Response, TaskSpec, WirePoint,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Registers the protocol suite under `serving/proto_…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let serving = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(p.method_height)
        .run()
        .expect("pipeline run for proto fixtures")
        .serve()
        .expect("serving wires up");
    let mut service = serving.service();

    let bounds = *dataset.grid().bounds();
    let mut rng = StdRng::seed_from_u64(4242);
    let points: Vec<WirePoint> = (0..p.serve_batch)
        .map(|_| {
            WirePoint::new(
                bounds.min_x + rng.random::<f64>() * bounds.width(),
                bounds.min_y + rng.random::<f64>() * bounds.height(),
            )
        })
        .collect();
    let batch_request = Request::LookupBatch {
        points: points.clone(),
    };
    let batch_wire = encode_request(&batch_request);
    let batch_response = encode_response(&service.dispatch(&batch_request));

    let mut group = c.benchmark_group(format!(
        "serving/proto_n{}_h{}",
        p.n_individuals, p.method_height
    ));

    // Wire cost of the smallest request: one lookup envelope.
    let lookup = Request::Lookup { x: 0.31, y: 0.72 };
    let lookup_wire = encode_request(&lookup);
    group.bench_function("encode_lookup", |b| {
        b.iter(|| black_box(encode_request(black_box(&lookup)).len()))
    });
    group.bench_function("decode_lookup", |b| {
        b.iter(|| black_box(decode_request(black_box(&lookup_wire)).expect("valid wire")))
    });

    // Wire cost of a full batch round-trip (request decode + response
    // decode), the dominant serialization work of a batched client.
    group.bench_function(format!("decode_batch_x{}", p.serve_batch), |b| {
        b.iter(|| black_box(decode_request(black_box(&batch_wire)).expect("valid wire")))
    });
    group.bench_function(format!("decode_response_x{}", p.serve_batch), |b| {
        b.iter(|| black_box(decode_response(black_box(&batch_response)).expect("valid wire")))
    });

    // In-process dispatch: protocol hot path without any wire. The
    // serving suite's `lookup_x{N}` is the raw-index twin of this id;
    // their ratio is the dispatch overhead the acceptance bar caps at 2x.
    group.bench_function(format!("dispatch_lookup_x{}", p.serve_batch), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in &points {
                let response = service.dispatch(&Request::Lookup { x: q.x, y: q.y });
                match response {
                    Response::Decision { decision } => acc = acc.wrapping_add(decision.leaf_id),
                    other => panic!("expected decision, got {other:?}"),
                }
            }
            black_box(acc)
        })
    });
    group.bench_function(format!("dispatch_batch_x{}", p.serve_batch), |b| {
        b.iter(|| match service.dispatch(&batch_request) {
            Response::Decisions { decisions } => black_box(decisions.len()),
            other => panic!("expected decisions, got {other:?}"),
        })
    });

    // End-to-end HTTP loopback: one keep-alive client, batched
    // requests. points-per-second = serve_batch / median; the
    // acceptance bar is ≥ 50k lookups/s on the full profile.
    {
        let server = serving
            .listen("127.0.0.1:0")
            .expect("loopback listener binds");
        let mut client = HttpClient::connect(server.addr()).expect("client connects");
        group.bench_function(format!("http_batch_x{}", p.serve_batch), |b| {
            b.iter(|| match client.call(&batch_request).expect("round-trip") {
                Response::Decisions { decisions } => black_box(decisions.len()),
                other => panic!("expected decisions, got {other:?}"),
            })
        });
        group.bench_function("http_lookup_x1", |b| {
            b.iter(|| match client.call(&lookup).expect("round-trip") {
                Response::Decision { decision } => black_box(decision.leaf_id),
                other => panic!("expected decision, got {other:?}"),
            })
        });
        drop(client);
        server.shutdown();
    }

    group.finish();
}
