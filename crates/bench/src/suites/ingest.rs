//! The streaming-ingestion suite: what a live feed costs.
//!
//! `QueryService::with_ingest` adds a concurrent delta buffer, a
//! cumulative ingest log, and a drift detector next to the frozen
//! snapshot. This suite pins the three numbers that decide whether the
//! layer is deployable:
//!
//! * `dispatch_ingest_x{N}` — end-to-end `Request::Ingest` throughput:
//!   locate + cell-sharded buffer accept + log append per point. Runs
//!   under a deliberately small time budget (overridden below) because
//!   every accepted point stays in the log until a rebuild drains it —
//!   the budget bounds the bench's memory, not its precision.
//! * `drift_poll_x{N}` — one background maintenance poll over `N`
//!   buffered points with no trigger armed: the steady-state cost of
//!   measuring subtree drift against the frozen `CellStats` baseline
//!   (one summed-area fold plus a KD-shaped walk) on every poll tick.
//! * `dispatch_lookup_live_x{N}` / `dispatch_lookup_frozen_x{N}` — the
//!   ingest-while-serving twins: the same point sweep through a service
//!   with a non-empty delta buffer and through a plain frozen service.
//!
//! Before registering the criterion benches, the suite runs its own
//! interleaved-median comparison of the two lookup twins and asserts
//! the ingest-enabled path stays ≤ 1.10x the frozen one — buffered
//! writes must never tax readers, enforced wherever the suite runs
//! (CI smoke included), same contract as the obs suite's gate.

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, Criterion};
use fsi::{
    MaintenanceSpec, Method, Pipeline, PipelineSpec, QueryService, Request, Response, TaskSpec,
};
use fsi_geo::{Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::{Duration, Instant};

/// A maintenance policy that measures drift on every poll but never
/// trips: occupancy and staleness triggers disabled, the drift bar
/// unreachably high (`validate` rejects infinities, so merely huge).
fn never_trips() -> MaintenanceSpec {
    MaintenanceSpec {
        drift_threshold: 1e18,
        max_buffered: 0,
        max_staleness_ms: 0,
        poll_interval_ms: 1_000,
    }
}

/// Deterministic in-bounds ingest bodies: uniform positions, four
/// cohorts, two thirds positive.
fn feed(bounds: &Rect, n: usize, seed: u64) -> Vec<(f64, f64, u32, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                bounds.min_x + rng.random::<f64>() * bounds.width(),
                bounds.min_y + rng.random::<f64>() * bounds.height(),
                (i % 4) as u32,
                i % 3 != 0,
            )
        })
        .collect()
}

/// Streams `points` through `service`, returning the accepted count so
/// the work cannot be optimized away (and a wrong count panics).
fn stream(service: &mut QueryService, points: &[(f64, f64, u32, bool)]) -> u64 {
    let mut accepted = 0u64;
    for &(x, y, group, label) in points {
        match service.dispatch(&Request::Ingest { x, y, group, label }) {
            Response::Ingested { accepted: a, .. } => accepted += a,
            other => panic!("expected ingested, got {other:?}"),
        }
    }
    accepted
}

/// One full lookup sweep of `points` through `service` (the obs suite's
/// sweep, duplicated here so the twins stay self-contained).
fn sweep(service: &mut QueryService, points: &[Point]) -> usize {
    let mut acc = 0usize;
    for q in points {
        match service.dispatch(&Request::Lookup { x: q.x, y: q.y }) {
            Response::Decision { decision } => acc = acc.wrapping_add(decision.leaf_id),
            other => panic!("expected decision, got {other:?}"),
        }
    }
    acc
}

/// Median of a sample, in nanoseconds.
fn median(mut nanos: Vec<u128>) -> u128 {
    nanos.sort_unstable();
    nanos[nanos.len() / 2]
}

/// The ≤ 1.10x acceptance gate: `rounds` interleaved timings of the
/// same lookup sweep through the live (buffer non-empty) and frozen
/// services; medians discard scheduler outliers.
fn assert_live_reads_unfrozen(
    live: &mut QueryService,
    frozen: &mut QueryService,
    points: &[Point],
    rounds: usize,
) {
    black_box(sweep(live, points));
    black_box(sweep(frozen, points));

    let (mut with, mut without) = (Vec::with_capacity(rounds), Vec::with_capacity(rounds));
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(sweep(live, points));
        with.push(t.elapsed().as_nanos());

        let t = Instant::now();
        black_box(sweep(frozen, points));
        without.push(t.elapsed().as_nanos());
    }
    let (with, without) = (median(with), median(without));
    let ratio = with as f64 / without as f64;
    eprintln!(
        "ingest-while-serving overhead: live {with} ns vs frozen {without} ns \
         per {} lookups (ratio {ratio:.3})",
        points.len()
    );
    assert!(
        ratio <= 1.10,
        "lookups on an ingest-enabled service are {ratio:.3}x the frozen path \
         (acceptance bar: ≤ 1.10x)"
    );
}

/// Registers the streaming-ingestion suite under `serving/ingest_…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let run = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(p.method_height)
        .run()
        .expect("pipeline run for ingest fixtures");
    let serving = run.serve().expect("plain serving wires up");
    let live_serving = run
        .serve_with_ingest(never_trips())
        .expect("ingest serving wires up");
    let spec = PipelineSpec::new(TaskSpec::act(), Method::FairKd, p.method_height);

    let bounds = *dataset.grid().bounds();
    let n = p.serve_batch;
    let points: Vec<Point> = feed(&bounds, n, 4242)
        .iter()
        .map(|&(x, y, _, _)| Point::new(x, y))
        .collect();

    // The twin gate first, before any criterion group: a live service
    // with a buffered backlog must read exactly like a frozen one.
    let mut live = live_serving.service();
    assert_eq!(stream(&mut live, &feed(&bounds, 256, 7)), 256);
    let mut frozen = serving.service();
    assert_live_reads_unfrozen(&mut live, &mut frozen, &points, 31);

    let mut group = c.benchmark_group(format!(
        "serving/ingest_n{}_h{}",
        p.n_individuals, p.method_height
    ));

    // Ingest throughput under a small fixed budget: each accepted point
    // stays in the cumulative log until a rebuild drains it, so the
    // budget (not the profile's) bounds how much the bench buffers.
    group
        .warm_up_time(Duration::from_millis(30))
        .measurement_time(Duration::from_millis(200));
    let mut sink = live_serving.service();
    let batch = feed(&bounds, n, 99);
    group.bench_function(format!("dispatch_ingest_x{n}"), |b| {
        b.iter(|| black_box(stream(&mut sink, &batch)))
    });
    group
        .warm_up_time(p.warm_up)
        .measurement_time(p.measurement_time);

    // The poll-tick cost: a maintenance pass that measures drift over a
    // buffered backlog of `n` points and finds no trigger due.
    let policy = never_trips();
    let mut polled = live_serving.service();
    assert_eq!(stream(&mut polled, &feed(&bounds, n, 11)), n as u64);
    assert!(
        polled
            .maintain(&policy, &spec)
            .expect("maintenance poll succeeds")
            .is_none(),
        "the never-trips policy must not publish"
    );
    group.bench_function(format!("drift_poll_x{n}"), |b| {
        b.iter(|| {
            black_box(
                polled
                    .maintain(&policy, &spec)
                    .expect("maintenance poll succeeds")
                    .is_none(),
            )
        })
    });

    // The twins as recorded benchmarks, same ids the gate compared.
    group.bench_function(format!("dispatch_lookup_live_x{n}"), |b| {
        b.iter(|| black_box(sweep(&mut live, &points)))
    });
    group.bench_function(format!("dispatch_lookup_frozen_x{n}"), |b| {
        b.iter(|| black_box(sweep(&mut frozen, &points)))
    });

    group.finish();
}
