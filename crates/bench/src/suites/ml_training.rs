//! Classifier fit/score throughput on the profile's workload
//! (7 design columns under the centroid encoding).

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, BenchmarkId, Criterion};
use fsi_data::{build_design_matrix, LocationEncoding};
use fsi_geo::Partition;
use fsi_pipeline::trainer::{train_and_score, ModelKind};

/// Registers the training suite under `ml_training/…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let labels = dataset.threshold_labels("avg_act", 22.0).unwrap();
    let partition = Partition::uniform(dataset.grid(), 8, 8).unwrap();
    let design = build_design_matrix(&dataset, &partition, LocationEncoding::CentroidXY).unwrap();
    let train_idx: Vec<usize> = (0..dataset.len()).collect();

    let mut group = c.benchmark_group(format!(
        "ml_training/fit_and_score_{}x{}",
        p.n_individuals,
        design.matrix.cols()
    ));
    for kind in ModelKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &k| {
                b.iter(|| {
                    let out = train_and_score(k, &design.matrix, &labels, &train_idx, None)
                        .expect("training succeeds");
                    black_box(out.scores.len())
                })
            },
        );
    }
    group.finish();
}
