//! The resilience suite: what failover machinery costs when nothing is
//! failing — and what it saves when something is.
//!
//! A `ReplicaSet` sits on the per-shard dispatch path of every
//! replicated slot, so the layer is only shippable if a healthy,
//! synchronous set (no hedge threshold, no per-attempt deadline) is
//! indistinguishable from dispatching to its member directly. This
//! suite pins it:
//!
//! * `dispatch_lookup_x{N}` — a single-member `ReplicaSet` over a local
//!   shard, the healthy fast path.
//! * `dispatch_bare_x{N}` — the identical sweep dispatched straight at
//!   the member: the denominator.
//! * `failover_lookup_x{N}` — a two-replica set whose preferred replica
//!   is dead (`ChaosShard` kill switch) with a breaker threshold high
//!   enough to never open: every dispatch pays one failed attempt plus
//!   the retry to the healthy sibling — the worst-case failover tax.
//! * `breaker_open_lookup_x{N}` — the same dead replica behind an open
//!   breaker: dispatch short-circuits to the healthy sibling, showing
//!   what the breaker buys back.
//!
//! Before registering the criterion benches, the suite runs its own
//! interleaved best-of comparison of the two fast-path twins and
//! asserts the replica set stays ≤ 1.10x bare dispatch — the
//! acceptance bar, enforced wherever the suite runs (CI smoke
//! included).

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, Criterion};
use fsi::{
    ChaosShard, IndexHandle, LocalShard, Method, Pipeline, ReplicaSet, Request, ResiliencePolicy,
    Response, ShardBackend, TaskSpec,
};
use fsi_geo::Point;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// A synchronous policy: retries only, so dispatch never leaves the
/// calling thread. `breaker_threshold` / `breaker_reset_ms` are the
/// scenario knobs.
fn policy(breaker_threshold: u32, breaker_reset_ms: u64) -> ResiliencePolicy {
    ResiliencePolicy {
        max_attempts: 2,
        backoff_base_ms: 0,
        backoff_multiplier: 1.0,
        backoff_cap_ms: 0,
        jitter_frac: 0.0,
        jitter_seed: 11,
        attempt_deadline_ms: None,
        hedge_after_ms: None,
        breaker_threshold,
        breaker_reset_ms,
    }
}

/// One full sweep of `points` through a backend, returning the leaf-id
/// accumulator so the work cannot be optimized away.
fn sweep(backend: &dyn ShardBackend, points: &[Point]) -> usize {
    let mut acc = 0usize;
    for q in points {
        match backend.dispatch(&Request::Lookup { x: q.x, y: q.y }) {
            Response::Decision { decision } => acc = acc.wrapping_add(decision.leaf_id),
            other => panic!("expected decision, got {other:?}"),
        }
    }
    acc
}

/// The ≤ 1.10x acceptance gate: up to three independent trials, each
/// `rounds` interleaved timings of the replica-set and bare sweeps
/// (interleaving cancels clock drift and frequency scaling). Within a
/// trial the ratio compares the *minimum* sweep time on each side:
/// external perturbation — a noisy container neighbor, a scheduler
/// preemption, an unlucky page placement — only ever adds latency, so
/// the best observed sweep is the closest estimate of each path's true
/// cost, where a median still carries whatever noise burst hit its
/// half of the sample. The same argument licenses the trial loop: one
/// trial meeting the bound proves the true overhead is within it, while
/// a real regression fails every trial.
fn assert_overhead_bounded(
    set: &dyn ShardBackend,
    bare: &dyn ShardBackend,
    points: &[Point],
    rounds: usize,
) {
    const TRIALS: usize = 3;
    let mut best = f64::INFINITY;
    for trial in 1..=TRIALS {
        black_box(sweep(set, points));
        black_box(sweep(bare, points));

        let (mut with, mut without) = (u128::MAX, u128::MAX);
        for _ in 0..rounds {
            let t = Instant::now();
            black_box(sweep(set, points));
            with = with.min(t.elapsed().as_nanos());

            let t = Instant::now();
            black_box(sweep(bare, points));
            without = without.min(t.elapsed().as_nanos());
        }
        let ratio = with as f64 / without as f64;
        eprintln!(
            "resil overhead (trial {trial}/{TRIALS}): replica set {with} ns vs \
             bare {without} ns per {} lookups (ratio {ratio:.3})",
            points.len()
        );
        if ratio <= 1.10 {
            return;
        }
        best = best.min(ratio);
    }
    panic!(
        "healthy replica-set dispatch is {best:.3}x bare dispatch across \
         {TRIALS} trials (acceptance bar: ≤ 1.10x)"
    );
}

/// Registers the resilience suite under `serving/resil_…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let index = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(p.method_height)
        .run()
        .expect("pipeline run for resil fixtures")
        .freeze()
        .expect("index freezes");

    let bounds = *dataset.grid().bounds();
    let mut rng = StdRng::seed_from_u64(5151);
    let points: Vec<Point> = (0..p.serve_batch)
        .map(|_| {
            Point::new(
                bounds.min_x + rng.random::<f64>() * bounds.width(),
                bounds.min_y + rng.random::<f64>() * bounds.height(),
            )
        })
        .collect();
    let n = p.serve_batch;
    // Every backend shares ONE index allocation (IndexHandle is
    // Arc-shared): the twins must differ only in the dispatch layer,
    // not in which copy of the tree happens to land on friendlier
    // cache lines.
    let handle = IndexHandle::new(index);
    let local = || Box::new(LocalShard::new(handle.clone())) as Box<dyn ShardBackend>;

    // The healthy fast-path twins, gated before anything is registered.
    let set = ReplicaSet::new(vec![local()], policy(3, 250)).expect("healthy set");
    let bare = local();
    assert_overhead_bounded(&set, bare.as_ref(), &points, 201);

    // Worst-case failover: the preferred replica is dead and the breaker
    // threshold is set beyond the sweep, so every dispatch eats one
    // failed attempt before the retry answers.
    let dead = ChaosShard::new(local());
    dead.switch().set_down(true);
    let failover = ReplicaSet::new(vec![Box::new(dead), local()], policy(u32::MAX, 3_600_000))
        .expect("failover set");

    // The breaker payoff: same dead replica, but the breaker opens after
    // one failure and (with an hour-long reset window) stays open for
    // the whole sweep — dispatch short-circuits to the healthy sibling.
    let dead = ChaosShard::new(local());
    dead.switch().set_down(true);
    let shortcircuit = ReplicaSet::new(vec![Box::new(dead), local()], policy(1, 3_600_000))
        .expect("short-circuit set");
    black_box(sweep(&shortcircuit, &points[..1])); // trip the breaker open

    let mut group = c.benchmark_group(format!(
        "serving/resil_n{}_h{}",
        p.n_individuals, p.method_height
    ));

    group.bench_function(format!("dispatch_lookup_x{n}"), |b| {
        b.iter(|| black_box(sweep(&set, &points)))
    });
    group.bench_function(format!("dispatch_bare_x{n}"), |b| {
        b.iter(|| black_box(sweep(bare.as_ref(), &points)))
    });
    group.bench_function(format!("failover_lookup_x{n}"), |b| {
        b.iter(|| black_box(sweep(&failover, &points)))
    });
    group.bench_function(format!("breaker_open_lookup_x{n}"), |b| {
        b.iter(|| black_box(sweep(&shortcircuit, &points)))
    });

    group.finish();
}
