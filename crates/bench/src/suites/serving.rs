//! Online-serving throughput: `FrozenIndex` compile, single and batch
//! point lookups, map-space range queries, hot-swap publishing, and
//! multi-threaded scaling of the serving driver.
//!
//! The headline number is `lookup_x{N}`: `N` single-point lookups per
//! iteration on the profile's Fair KD-tree, so `N / median` is the
//! sustained single-thread points-per-second rate the acceptance
//! criterion (≥ 1M/s on the full-profile h10 tree) is checked against.

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, Criterion};
use fsi::{Method, Pipeline, TaskSpec};
use fsi_geo::{Point, Rect};
use fsi_serve::{driver, FrozenIndex, IndexHandle};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic uniform query points over the map bounds.
fn query_points(bounds: &Rect, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                bounds.min_x + rng.random::<f64>() * bounds.width(),
                bounds.min_y + rng.random::<f64>() * bounds.height(),
            )
        })
        .collect()
}

/// Deterministic small query rectangles (~1/8 of the map per side).
fn query_rects(bounds: &Rect, n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let w = bounds.width() * (0.02 + 0.1 * rng.random::<f64>());
            let h = bounds.height() * (0.02 + 0.1 * rng.random::<f64>());
            let x0 = bounds.min_x + rng.random::<f64>() * (bounds.width() - w);
            let y0 = bounds.min_y + rng.random::<f64>() * (bounds.height() - h);
            Rect::new(x0, y0, x0 + w, y0 + h).expect("positive extent")
        })
        .collect()
}

/// Registers the serving suite under `serving/…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let run = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(p.method_height)
        .run()
        .expect("pipeline run for serving fixtures");
    let tree = run.tree.as_ref().expect("FairKd builds a tree");
    let snapshot = run.model_snapshot().expect("snapshot extracts");
    let index = FrozenIndex::compile(tree, dataset.grid(), &snapshot).expect("index compiles");

    let points = query_points(dataset.grid().bounds(), p.serve_points, 4242);
    let lookup_points = &points[..p.serve_batch];
    let rects = query_rects(dataset.grid().bounds(), 64, 77);

    let mut group = c.benchmark_group(format!("serving/n{}_h{}", p.n_individuals, p.method_height));

    // Compile cost: train-time artifacts → frozen read structure.
    group.bench_function("compile", |b| {
        b.iter(|| {
            black_box(
                FrozenIndex::compile(tree, dataset.grid(), &snapshot)
                    .expect("index compiles")
                    .num_leaves(),
            )
        })
    });

    // Single-point lookups, the serving hot path.
    group.bench_function(format!("lookup_x{}", p.serve_batch), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in lookup_points {
                acc = acc.wrapping_add(index.lookup(q).expect("in bounds").leaf_id);
            }
            black_box(acc)
        })
    });

    // Batch API over the same points (amortized transform + buffer reuse).
    group.bench_function(format!("lookup_batch_x{}", p.serve_batch), |b| {
        let mut out = Vec::with_capacity(lookup_points.len());
        b.iter(|| {
            index
                .lookup_batch(lookup_points, &mut out)
                .expect("in bounds");
            black_box(out.len())
        })
    });

    // Map-space rectangle range queries.
    group.bench_function("range_query_x64", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for r in &rects {
                acc = acc.wrapping_add(index.range_query(r).len());
            }
            black_box(acc)
        })
    });

    // End-to-end cost of installing a prebuilt replacement: one deep
    // FrozenIndex clone + Arc allocation + publish. The clone dominates;
    // the publish itself is two pointer writes under a mutex. Named for
    // what it measures so a clone regression is not misread as swap
    // latency.
    group.bench_function("publish_clone", |b| {
        let handle = IndexHandle::new(index.clone());
        b.iter(|| black_box(handle.publish(index.clone()).0))
    });

    // Multi-threaded scaling of the serving driver.
    for &threads in p.serve_threads {
        group.bench_function(format!("mt_sweep_x{}_t{threads}", p.serve_points), |b| {
            let handle = IndexHandle::new(index.clone());
            b.iter(|| {
                let report = driver::sweep(&handle, &points, threads, 1);
                assert_eq!(report.out_of_bounds, 0);
                black_box(report.checksum)
            })
        });
    }

    group.finish();
}
