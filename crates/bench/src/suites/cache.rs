//! The decision-cache suite: `QueryService` dispatch throughput with an
//! LRU decision cache in front of the index, across the three workload
//! regimes that bound it:
//!
//! * `cache_cold_x{N}` — a cyclic scan over twice the cache capacity's
//!   worth of distinct cells: every lookup misses and evicts, so this is
//!   the worst-case miss-path overhead (full lookup + cache bookkeeping).
//! * `cache_hot_x{N}` — all queries land on 16 hot cells with ample
//!   capacity: the pure hit path (~100% hit rate).
//! * `cache_zipf_x{N}` — a Zipf(s = 1.5) skew over every grid cell with
//!   capacity for only a quarter of them: the realistic regime the
//!   acceptance bar is checked against (≥ 90% hit rate, ≥ 3x the
//!   uncached `proto` suite's `dispatch_lookup_x{N}`).
//! * `uncached_zipf_x{N}` — the identical Zipf point sequence through an
//!   uncached service: the in-suite denominator for the 3x comparison.
//!
//! All point sequences (including the Zipf CDF sampling) are generated
//! before measurement; iterations only dispatch.

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, Criterion};
use fsi::{CacheSpec, Method, Pipeline, QueryService, Request, Response, TaskSpec};
use fsi_geo::{Grid, Point};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The centroid of grid cell `cell` (row-major), the point form every
/// cache workload queries — decisions are constant within a cell, so
/// centroids exercise the cache without boundary ambiguity.
fn centroid(grid: &Grid, cell: usize) -> Point {
    let b = grid.bounds();
    let (cols, rows) = (grid.cols(), grid.rows());
    let (col, row) = (cell % cols, cell / cols);
    Point::new(
        b.min_x + (col as f64 + 0.5) / cols as f64 * b.width(),
        b.min_y + (row as f64 + 0.5) / rows as f64 * b.height(),
    )
}

/// `n` cell centroids drawn Zipf(s)-skewed over all `rows × cols` cells,
/// with ranks scattered spatially (odd-multiplier permutation) so the
/// hot set is not one contiguous block. Sampling walks a precomputed
/// CDF; nothing here runs inside the measured loop.
fn zipf_points(grid: &Grid, n: usize, s: f64, seed: u64) -> Vec<Point> {
    let cells = grid.rows() * grid.cols();
    let mut cdf = Vec::with_capacity(cells);
    let mut acc = 0.0f64;
    for rank in 1..=cells {
        acc += (rank as f64).powf(-s);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u = rng.random::<f64>() * total;
            let rank = cdf.partition_point(|&c| c < u);
            // Odd multiplier → a permutation of the (power-of-two-sided)
            // cell count, scattering consecutive ranks across the map.
            let cell = rank.wrapping_mul(0x9E37_79B1) % cells;
            centroid(grid, cell)
        })
        .collect()
}

/// Dispatches every point through `service` once per iteration, the
/// same accumulation shape as the proto suite's `dispatch_lookup_x{N}`.
fn bench_dispatch(
    group: &mut criterion::BenchmarkGroup<'_>,
    id: String,
    service: &mut QueryService,
    points: &[Point],
) {
    group.bench_function(id, |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in points {
                match service.dispatch(&Request::Lookup { x: q.x, y: q.y }) {
                    Response::Decision { decision } => acc = acc.wrapping_add(decision.leaf_id),
                    other => panic!("expected decision, got {other:?}"),
                }
            }
            black_box(acc)
        })
    });
}

/// The cache's reported hit rate, read over the stats surface every
/// transport uses. `None` when the cache saw no traffic — a `--filter`
/// that skips the benchmark leaves the counters at zero, and asserting
/// on an unexercised cache would abort the whole run.
fn hit_rate(service: &mut QueryService) -> Option<f64> {
    match service.dispatch(&Request::Stats) {
        Response::Stats { stats } => {
            let cache = stats.cache.expect("cached service");
            (cache.hits + cache.misses > 0).then(|| cache.hit_rate())
        }
        other => panic!("expected stats, got {other:?}"),
    }
}

/// Registers the cache suite under `serving/cache_…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let serving = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(p.method_height)
        .run()
        .expect("pipeline run for cache fixtures")
        .serve()
        .expect("serving wires up");
    let grid = dataset.grid();
    let cells = grid.rows() * grid.cols();
    let n = p.serve_batch;

    let mut group = c.benchmark_group(format!(
        "serving/cache_n{}_h{}",
        p.n_individuals, p.method_height
    ));

    // Cold: a cyclic scan over 2× capacity distinct cells. With LRU,
    // every access misses and evicts — the miss path plus bookkeeping.
    {
        let capacity = (cells / 4).max(2);
        let mut service = serving
            .service()
            .with_cache(CacheSpec::per_worker(capacity))
            .expect("valid spec");
        let scan: Vec<Point> = (0..n)
            .map(|i| centroid(grid, (i * (cells / (2 * capacity)).max(1)) % cells))
            .collect();
        bench_dispatch(&mut group, format!("cache_cold_x{n}"), &mut service, &scan);
    }

    // Hot: 16 hot cells, ample capacity — the pure hit path.
    {
        let mut service = serving
            .service()
            .with_cache(CacheSpec::per_worker(64))
            .expect("valid spec");
        let mut rng = StdRng::seed_from_u64(7171);
        let hot: Vec<Point> = (0..n)
            .map(|_| centroid(grid, (rng.random_range(0..16usize) * 0x9E37_79B1) % cells))
            .collect();
        bench_dispatch(&mut group, format!("cache_hot_x{n}"), &mut service, &hot);
        if let Some(rate) = hit_rate(&mut service) {
            assert!(rate > 0.99, "hot workload hit rate {rate:.3} ≤ 0.99");
        }
    }

    // Zipf: the acceptance-bar regime. Capacity for a quarter of the
    // cells; Zipf(1.5) concentrates ≈99% of the mass on that quarter.
    let zipf = zipf_points(grid, n, 1.5, 4242);
    {
        let capacity = (cells / 4).max(2);
        let mut service = serving
            .service()
            .with_cache(CacheSpec::per_worker(capacity))
            .expect("valid spec");
        bench_dispatch(&mut group, format!("cache_zipf_x{n}"), &mut service, &zipf);
        if let Some(rate) = hit_rate(&mut service) {
            assert!(
                rate >= 0.90,
                "zipf workload hit rate {rate:.3} below the 90% acceptance bar"
            );
            eprintln!("cache_zipf_x{n}: reported hit rate {:.1}%", rate * 100.0);
        }
    }

    // The uncached twin over the identical Zipf sequence: the in-suite
    // denominator for the ≥ 3x cached-throughput acceptance bar.
    {
        let mut service = serving.service();
        bench_dispatch(
            &mut group,
            format!("uncached_zipf_x{n}"),
            &mut service,
            &zipf,
        );
    }

    group.finish();
}
