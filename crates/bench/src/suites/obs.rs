//! The observability suite: the cost of leaving telemetry on.
//!
//! `QueryService` instruments every dispatch by default (counters always,
//! latency sampled 1-in-256 for point lookups), so the whole layer is only
//! shippable if that instrumentation is invisible on the hot path. This
//! suite pins it:
//!
//! * `dispatch_lookup_x{N}` — the instrumented (default) service over
//!   the same point sweep as the proto suite's id of the same name.
//! * `dispatch_lookup_off_x{N}` — the identical sweep through
//!   `with_metrics(false)`: the uninstrumented denominator.
//! * `metrics_snapshot` — folding every per-worker shard into one
//!   `MetricsBody` (the scrape path, off the request hot path).
//! * `prometheus_render` — rendering that body as Prometheus text.
//!
//! Before registering the criterion benches, the suite runs its own
//! interleaved-median comparison of the two dispatch twins and asserts
//! the instrumented path stays ≤ 1.10x the uninstrumented one — the
//! acceptance bar, enforced wherever the suite runs (CI smoke included)
//! rather than left to offline baseline arithmetic.

use super::Profile;
use crate::bench_dataset;
use criterion::{black_box, Criterion};
use fsi::{prometheus_text, Method, Pipeline, QueryService, Request, Response, TaskSpec};
use fsi_geo::Point;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// One full sweep of `points` through `service`, returning the leaf-id
/// accumulator so the work cannot be optimized away.
fn sweep(service: &mut QueryService, points: &[Point]) -> usize {
    let mut acc = 0usize;
    for q in points {
        match service.dispatch(&Request::Lookup { x: q.x, y: q.y }) {
            Response::Decision { decision } => acc = acc.wrapping_add(decision.leaf_id),
            other => panic!("expected decision, got {other:?}"),
        }
    }
    acc
}

/// Median of a sample, in nanoseconds.
fn median(mut nanos: Vec<u128>) -> u128 {
    nanos.sort_unstable();
    nanos[nanos.len() / 2]
}

/// The ≤ 1.10x acceptance gate: `rounds` interleaved timings of the
/// instrumented and uninstrumented sweeps (interleaving cancels clock
/// drift and frequency scaling; medians discard scheduler outliers).
fn assert_overhead_bounded(
    on: &mut QueryService,
    off: &mut QueryService,
    points: &[Point],
    rounds: usize,
) {
    // Warm both paths so first-touch effects (cache registration, page
    // faults) land outside the timed rounds.
    black_box(sweep(on, points));
    black_box(sweep(off, points));

    let (mut with, mut without) = (Vec::with_capacity(rounds), Vec::with_capacity(rounds));
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(sweep(on, points));
        with.push(t.elapsed().as_nanos());

        let t = Instant::now();
        black_box(sweep(off, points));
        without.push(t.elapsed().as_nanos());
    }
    let (with, without) = (median(with), median(without));
    let ratio = with as f64 / without as f64;
    eprintln!(
        "obs overhead: instrumented {with} ns vs uninstrumented {without} ns \
         per {} lookups (ratio {ratio:.3})",
        points.len()
    );
    assert!(
        ratio <= 1.10,
        "instrumented dispatch is {ratio:.3}x the uninstrumented path \
         (acceptance bar: ≤ 1.10x)"
    );
}

/// Registers the observability suite under `serving/obs_…` ids.
pub fn register(c: &mut Criterion, p: &Profile) {
    let dataset = bench_dataset(p.n_individuals, p.grid_side);
    let serving = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(p.method_height)
        .run()
        .expect("pipeline run for obs fixtures")
        .serve()
        .expect("serving wires up");

    let bounds = *dataset.grid().bounds();
    let mut rng = StdRng::seed_from_u64(4242);
    let points: Vec<Point> = (0..p.serve_batch)
        .map(|_| {
            Point::new(
                bounds.min_x + rng.random::<f64>() * bounds.width(),
                bounds.min_y + rng.random::<f64>() * bounds.height(),
            )
        })
        .collect();
    let n = p.serve_batch;

    let mut on = serving.service();
    let mut off = serving.service().with_metrics(false);
    assert_overhead_bounded(&mut on, &mut off, &points, 31);

    let mut group = c.benchmark_group(format!(
        "serving/obs_n{}_h{}",
        p.n_individuals, p.method_height
    ));

    group.bench_function(format!("dispatch_lookup_x{n}"), |b| {
        b.iter(|| black_box(sweep(&mut on, &points)))
    });
    group.bench_function(format!("dispatch_lookup_off_x{n}"), |b| {
        b.iter(|| black_box(sweep(&mut off, &points)))
    });

    // The scrape path: fold every per-worker shard into one body. Not on
    // the request hot path, but a scraper polls it every few seconds.
    group.bench_function("metrics_snapshot", |b| {
        b.iter(|| black_box(on.metrics_snapshot().total_requests()))
    });

    let body = on.metrics_snapshot();
    group.bench_function("prometheus_render", |b| {
        b.iter(|| black_box(prometheus_text(black_box(&body)).len()))
    });

    group.finish();
}
