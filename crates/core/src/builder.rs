//! Algorithm 1: DFS construction of a (fair) KD-tree.
//!
//! The builder is generic over the [`SplitPolicy`]: with
//! [`crate::split::FairSplit`] it is the paper's **Fair KD-tree**, with
//! [`crate::split::MedianSplit`] the **Median KD-tree** baseline, and with
//! [`crate::split::MultiObjectiveSplit`] (plus auxiliary aggregates) the
//! **Multi-Objective Fair KD-tree** — the three algorithms share every
//! structural detail except the objective, exactly as in the paper.

use crate::cellstats::CellStats;
use crate::config::BuildConfig;
use crate::error::CoreError;
use crate::split::{choose_split, SplitPolicy};
use crate::tree::{KdNode, KdTree, NodeKind};
use fsi_geo::{Axis, CellRect};

/// Builds a KD-tree of the configured height over the full grid using the
/// given split policy (Algorithm 1).
///
/// At each node with remaining height `th > 0` the split axis is
/// `th mod 2` (line 5 of Algorithm 1). If the chosen axis is exhausted
/// (fewer than two rows/columns remain) the other axis is tried; if both
/// are exhausted — or no candidate satisfies the population constraint —
/// the node becomes a leaf early.
pub fn build_kd_tree(
    stats: &CellStats,
    policy: &dyn SplitPolicy,
    config: &BuildConfig,
) -> Result<KdTree, CoreError> {
    config.validate()?;
    let (rows, cols) = stats.shape();
    let root = CellRect::new(0, rows, 0, cols);
    let mut nodes: Vec<KdNode> = Vec::new();
    build_node(stats, policy, config, &mut nodes, root, config.height)?;
    Ok(KdTree::from_arena(nodes, rows, cols))
}

/// Recursive node construction; returns the arena index of the node.
fn build_node(
    stats: &CellStats,
    policy: &dyn SplitPolicy,
    config: &BuildConfig,
    nodes: &mut Vec<KdNode>,
    region: CellRect,
    th: usize,
) -> Result<u32, CoreError> {
    let id = nodes.len() as u32;
    if th == 0 {
        nodes.push(KdNode {
            region,
            kind: NodeKind::Leaf { region_id: 0 },
        });
        return Ok(id);
    }

    // Algorithm 1 line 5: axis <- th mod 2, falling back to the other axis
    // when exhausted.
    let preferred = Axis::for_height(th);
    let decision = match choose_split(policy, stats, &region, preferred, config)? {
        Some(d) => Some(d),
        None => choose_split(policy, stats, &region, preferred.other(), config)?,
    };

    match decision {
        None => {
            nodes.push(KdNode {
                region,
                kind: NodeKind::Leaf { region_id: 0 },
            });
            Ok(id)
        }
        Some(d) => {
            nodes.push(KdNode {
                region,
                kind: NodeKind::Leaf { region_id: 0 }, // placeholder
            });
            let low = build_node(stats, policy, config, nodes, d.low, th - 1)?;
            let high = build_node(stats, policy, config, nodes, d.high, th - 1)?;
            nodes[id as usize].kind = NodeKind::Internal {
                axis: d.axis,
                offset: d.offset,
                low,
                high,
            };
            Ok(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{FairSplit, MedianSplit};
    use fsi_geo::{Grid, Partition};

    fn uniform_stats(side: usize) -> CellStats {
        let g = Grid::unit(side).unwrap();
        let n = side * side;
        CellStats::new(&g, &vec![1.0; n], &vec![0.5; n], &vec![0.5; n]).unwrap()
    }

    #[test]
    fn full_height_tree_has_power_of_two_leaves() {
        let stats = uniform_stats(8);
        let t = build_kd_tree(&stats, &MedianSplit, &BuildConfig::with_height(3)).unwrap();
        assert_eq!(t.num_leaves(), 8);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.node_count(), 15);
    }

    #[test]
    fn leaves_tile_the_grid() {
        let stats = uniform_stats(8);
        let g = Grid::unit(8).unwrap();
        for h in 1..=4 {
            let t = build_kd_tree(&stats, &FairSplit, &BuildConfig::with_height(h)).unwrap();
            // Partition construction itself validates completeness and
            // non-overlap.
            let p = t.partition(&g).unwrap();
            assert_eq!(p.num_regions(), t.num_leaves());
        }
    }

    #[test]
    fn height_capped_by_grid_resolution() {
        // A 2x2 grid supports at most 4 leaves regardless of height.
        let stats = uniform_stats(2);
        let t = build_kd_tree(&stats, &MedianSplit, &BuildConfig::with_height(6)).unwrap();
        assert_eq!(t.num_leaves(), 4);
    }

    #[test]
    fn axis_alternates_with_height() {
        let stats = uniform_stats(8);
        let t = build_kd_tree(&stats, &MedianSplit, &BuildConfig::with_height(2)).unwrap();
        // Root had th=2 (Row), children th=1 (Col).
        match &t.nodes()[0].kind {
            NodeKind::Internal { axis, .. } => assert_eq!(*axis, Axis::Row),
            _ => panic!("root must be internal"),
        }
        let child_axes: Vec<Axis> = t
            .nodes()
            .iter()
            .skip(1)
            .filter_map(|n| match &n.kind {
                NodeKind::Internal { axis, .. } => Some(*axis),
                _ => None,
            })
            .collect();
        assert!(child_axes.iter().all(|a| *a == Axis::Col));
    }

    #[test]
    fn fair_tree_splits_residual_in_half_when_possible() {
        // Construct residuals where an exact half-split exists at every
        // level; the fair tree should drive leaf residual mass to the
        // minimum possible: |total residual|.
        let g = Grid::unit(4).unwrap();
        // All residual sits in row 0: +8 split as 4|4 across columns, etc.
        let mut scores = vec![0.0; 16];
        scores[..4].fill(2.0); // row 0 cells contribute residual 2 each
        let stats = CellStats::new(&g, &[1.0; 16], &scores, &[0.0; 16]).unwrap();
        let t = build_kd_tree(&stats, &FairSplit, &BuildConfig::with_height(2)).unwrap();
        let total_mass: f64 = t
            .leaf_regions()
            .iter()
            .map(|r| stats.miscalibration_mass(r))
            .sum();
        // Theorem-1 lower bound: |total residual| = 8.
        assert!((total_mass - 8.0).abs() < 1e-9, "mass {total_mass}");
    }

    #[test]
    fn median_vs_fair_differ_on_skewed_residuals() {
        // Uniform population but residuals concentrated in one corner:
        // median ignores them, fair reacts.
        let g = Grid::unit(8).unwrap();
        let n = 64;
        let mut scores = vec![0.0; n];
        for r in 0..3 {
            for c in 0..3 {
                scores[r * 8 + c] = 1.0;
            }
        }
        let stats = CellStats::new(&g, &vec![1.0; n], &scores, &vec![0.0; n]).unwrap();
        let median = build_kd_tree(&stats, &MedianSplit, &BuildConfig::with_height(3)).unwrap();
        let fair = build_kd_tree(&stats, &FairSplit, &BuildConfig::with_height(3)).unwrap();
        assert_ne!(median.leaf_regions(), fair.leaf_regions());
    }

    #[test]
    fn deterministic_construction() {
        let stats = uniform_stats(8);
        let a = build_kd_tree(&stats, &FairSplit, &BuildConfig::with_height(4)).unwrap();
        let b = build_kd_tree(&stats, &FairSplit, &BuildConfig::with_height(4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let stats = uniform_stats(4);
        assert!(build_kd_tree(&stats, &MedianSplit, &BuildConfig::with_height(0)).is_err());
    }

    #[test]
    fn partition_refines_across_heights() {
        // The leaf set at height h+1 refines the leaf set at height h
        // for median splits on uniform data (same split points, one more
        // level) — a structural sanity check tying into Theorem 2.
        let stats = uniform_stats(8);
        let g = Grid::unit(8).unwrap();
        let coarse = build_kd_tree(&stats, &MedianSplit, &BuildConfig::with_height(2))
            .unwrap()
            .partition(&g)
            .unwrap();
        let fine = build_kd_tree(&stats, &MedianSplit, &BuildConfig::with_height(3))
            .unwrap()
            .partition(&g)
            .unwrap();
        assert!(fine.refines(&coarse));
        let _ = Partition::single(&g);
    }
}
