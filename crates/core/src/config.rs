//! Construction configuration.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// How exact ties among minimal-objective split candidates are resolved.
///
/// Eq. 9's objective can plateau: in a region whose net residual is ~0
/// (e.g. the root right after training a calibrated model) *every* split
/// index scores nearly the same, and in empty regions every index scores
/// exactly zero. Strict `argmin` then degenerates to "always cut off the
/// first row", producing sliver regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TieBreak {
    /// Among (near-)minimal candidates, prefer the most population-balanced
    /// split (recommended; the default).
    #[default]
    PreferBalanced,
    /// Strict first-index `argmin` — the literal reading of Eq. 10. Kept
    /// for the ablation study.
    FirstIndex,
}

/// Configuration for KD-tree construction (Algorithms 1 and 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuildConfig {
    /// Tree height `th`: the leaf set has at most `2^th` regions.
    pub height: usize,
    /// Tie resolution among minimal split candidates.
    pub tie_break: TieBreak,
    /// Candidates whose objective is within `best + tie_epsilon` count as
    /// tied. The default keeps the window essentially at exact ties.
    pub tie_epsilon: f64,
    /// Minimum population required in *each* child for a split candidate
    /// to be admissible. `0.0` (default) reproduces the paper, which allows
    /// empty neighborhoods.
    pub min_child_population: f64,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            height: 6,
            tie_break: TieBreak::PreferBalanced,
            tie_epsilon: 1e-9,
            min_child_population: 0.0,
        }
    }
}

impl BuildConfig {
    /// Creates a config with the given height and defaults elsewhere.
    pub fn with_height(height: usize) -> Self {
        Self {
            height,
            ..Self::default()
        }
    }

    /// Validates field ranges.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.height == 0 {
            return Err(CoreError::InvalidConfig("height must be at least 1".into()));
        }
        if self.height > 32 {
            return Err(CoreError::InvalidConfig(format!(
                "height {} is unreasonably large (max 32)",
                self.height
            )));
        }
        if !(self.tie_epsilon >= 0.0 && self.tie_epsilon.is_finite()) {
            return Err(CoreError::InvalidConfig(
                "tie_epsilon must be non-negative and finite".into(),
            ));
        }
        if !(self.min_child_population >= 0.0 && self.min_child_population.is_finite()) {
            return Err(CoreError::InvalidConfig(
                "min_child_population must be non-negative and finite".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(BuildConfig::default().validate().is_ok());
        assert!(BuildConfig::with_height(10).validate().is_ok());
    }

    #[test]
    fn invalid_values_rejected() {
        let c = BuildConfig {
            height: 0,
            ..BuildConfig::default()
        };
        assert!(c.validate().is_err());
        let c = BuildConfig {
            height: 33,
            ..BuildConfig::default()
        };
        assert!(c.validate().is_err());
        let c = BuildConfig {
            tie_epsilon: f64::NAN,
            ..BuildConfig::default()
        };
        assert!(c.validate().is_err());
        let c = BuildConfig {
            min_child_population: -1.0,
            ..BuildConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
