//! # fsi-core — fairness-aware spatial index structures
//!
//! The primary contribution of *Fair Spatial Indexing: A paradigm for Group
//! Spatial Fairness* (EDBT 2024): KD-tree partitioners over a `U × V` base
//! grid whose split decisions minimize neighborhood mis-calibration instead
//! of (or in addition to) the classic median criterion.
//!
//! ## The pieces
//!
//! * [`CellStats`] — per-cell population/score/label aggregates backed by
//!   summed-area tables, so any candidate split is scored in O(1).
//! * [`SplitPolicy`] implementations:
//!   [`MedianSplit`] (the baseline),
//!   [`FairSplit`] (Eq. 9) and
//!   [`MultiObjectiveSplit`] (Eq. 13).
//! * [`build_kd_tree`] — Algorithm 1's DFS
//!   construction, generic over the split policy (this single entry point
//!   covers Fair KD-tree, Median KD-tree and Multi-Objective Fair KD-tree).
//! * [`IterativeBuilder`] — Algorithm 3's BFS
//!   construction with model retraining between levels, via the
//!   [`Retrainer`] trait.
//! * [`aggregate_tasks`](multiobjective::aggregate_tasks) — the Eq. 11/12
//!   residual-vector aggregation for multi-task fairness.
//! * [`FairQuadtree`] — the paper's future-work
//!   direction (§6): an alternative four-way index with a fairness-aware
//!   split rule.
//!
//! The crate is deliberately independent of any concrete ML stack: model
//! scores arrive as per-cell aggregates, and the iterative algorithm's
//! retraining is abstracted behind a trait implemented in `fsi-pipeline`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cellstats;
pub mod config;
pub mod diagnostics;
pub mod error;
pub mod iterative;
pub mod multiobjective;
pub mod quadtree;
pub mod split;
pub mod tree;

pub use builder::build_kd_tree;
pub use cellstats::CellStats;
pub use config::{BuildConfig, TieBreak};
pub use error::CoreError;
pub use iterative::{IterativeBuilder, Retrainer};
pub use quadtree::{FairQuadtree, QuadConfig, QuadSplitRule};
pub use split::{FairSplit, MedianSplit, MultiObjectiveSplit, SplitPolicy};
pub use tree::KdTree;
