//! The KD-tree structure produced by the builders.

use crate::error::CoreError;
use fsi_geo::{Axis, CellRect, Grid, Partition};
use serde::{Deserialize, Serialize};

/// Node payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A leaf: one neighborhood of the final partition.
    Leaf {
        /// Dense leaf/region id (stable across serialization).
        region_id: usize,
    },
    /// An internal division.
    Internal {
        /// Axis the cut runs along.
        axis: Axis,
        /// Division offset along the axis.
        offset: usize,
        /// Arena index of the low child.
        low: u32,
        /// Arena index of the high child.
        high: u32,
    },
}

/// One tree node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KdNode {
    /// Grid region covered by the node.
    pub region: CellRect,
    /// Leaf or internal payload.
    pub kind: NodeKind,
}

impl KdNode {
    /// The absolute grid coordinate of this node's cut, for internal
    /// nodes: `(axis, boundary)` where cells with `row < boundary`
    /// (respectively `col < boundary`) fall into the low child. Returns
    /// `None` for leaves.
    ///
    /// This resolves the node's region-relative `offset` into the global
    /// coordinate external index compilers (e.g. `fsi-serve`) need.
    pub fn split_boundary(&self) -> Option<(Axis, usize)> {
        match &self.kind {
            NodeKind::Leaf { .. } => None,
            NodeKind::Internal { axis, offset, .. } => {
                let start = match axis {
                    Axis::Row => self.region.row_start,
                    Axis::Col => self.region.col_start,
                };
                Some((*axis, start + offset))
            }
        }
    }
}

/// A KD-tree over the base grid whose leaves are the generated
/// neighborhoods.
///
/// Produced by [`crate::builder::build_kd_tree`] (Algorithm 1) or
/// [`crate::iterative::IterativeBuilder`] (Algorithm 3); serializable with
/// serde for persistence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    grid_rows: usize,
    grid_cols: usize,
    num_leaves: usize,
}

impl KdTree {
    /// Assembles a tree from an arena. Used by the builders; leaf region
    /// ids are re-assigned densely in arena order.
    pub(crate) fn from_arena(nodes: Vec<KdNode>, grid_rows: usize, grid_cols: usize) -> Self {
        let mut nodes = nodes;
        let mut next = 0usize;
        for n in &mut nodes {
            if let NodeKind::Leaf { region_id } = &mut n.kind {
                *region_id = next;
                next += 1;
            }
        }
        Self {
            nodes,
            grid_rows,
            grid_cols,
            num_leaves: next,
        }
    }

    /// Number of leaves (generated neighborhoods).
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Grid shape `(rows, cols)` the tree was built over.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }

    /// Maximum root-to-leaf depth (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[KdNode], i: u32) -> usize {
            match &nodes[i as usize].kind {
                NodeKind::Leaf { .. } => 0,
                NodeKind::Internal { low, high, .. } => 1 + rec(nodes, *low).max(rec(nodes, *high)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Leaf regions in region-id order.
    pub fn leaf_regions(&self) -> Vec<CellRect> {
        let mut out = vec![CellRect::new(0, 0, 0, 0); self.num_leaves];
        for n in &self.nodes {
            if let NodeKind::Leaf { region_id } = n.kind {
                out[region_id] = n.region;
            }
        }
        out
    }

    /// Region id of the leaf containing grid cell `(row, col)`.
    pub fn locate(&self, row: usize, col: usize) -> Result<usize, CoreError> {
        if row >= self.grid_rows || col >= self.grid_cols {
            return Err(CoreError::ShapeMismatch {
                expected: self.grid_rows * self.grid_cols,
                got: row * self.grid_cols + col,
                what: "cell coordinates",
            });
        }
        let mut i = 0u32;
        loop {
            let node = &self.nodes[i as usize];
            match &node.kind {
                NodeKind::Leaf { region_id } => return Ok(*region_id),
                NodeKind::Internal {
                    axis,
                    offset,
                    low,
                    high,
                } => {
                    let in_low = match axis {
                        Axis::Row => row < node.region.row_start + offset,
                        Axis::Col => col < node.region.col_start + offset,
                    };
                    i = if in_low { *low } else { *high };
                }
            }
        }
    }

    /// Region ids of all leaves intersecting `query` (a range query over
    /// the index).
    pub fn range_query(&self, query: &CellRect) -> Vec<usize> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i as usize];
            if !node.region.intersects(query) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf { region_id } => out.push(*region_id),
                NodeKind::Internal { low, high, .. } => {
                    stack.push(*high);
                    stack.push(*low);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Converts the leaf set into a complete, non-overlapping
    /// [`Partition`] of `grid` (Algorithm 1, step 3).
    pub fn partition(&self, grid: &Grid) -> Result<Partition, CoreError> {
        if grid.rows() != self.grid_rows || grid.cols() != self.grid_cols {
            return Err(CoreError::ShapeMismatch {
                expected: self.grid_rows * self.grid_cols,
                got: grid.len(),
                what: "partition grid",
            });
        }
        Partition::from_rects(grid, &self.leaf_regions()).map_err(CoreError::Geo)
    }

    /// Arena index of the root node. The builders always place the root
    /// first; child links in [`NodeKind::Internal`] index into
    /// [`KdTree::nodes`]. External consumers (index compilers, renderers)
    /// may rely on this layout.
    pub const ROOT: u32 = 0;

    /// Read access to the node arena (for diagnostics and rendering).
    pub fn nodes(&self) -> &[KdNode] {
        &self.nodes
    }

    /// The node at arena index `index`, or `None` when out of range.
    pub fn node(&self, index: u32) -> Option<&KdNode> {
        self.nodes.get(index as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built tree: root splits rows at 2; low child splits cols at 1.
    fn sample() -> KdTree {
        let nodes = vec![
            KdNode {
                region: CellRect::new(0, 4, 0, 4),
                kind: NodeKind::Internal {
                    axis: Axis::Row,
                    offset: 2,
                    low: 1,
                    high: 2,
                },
            },
            KdNode {
                region: CellRect::new(0, 2, 0, 4),
                kind: NodeKind::Internal {
                    axis: Axis::Col,
                    offset: 1,
                    low: 3,
                    high: 4,
                },
            },
            KdNode {
                region: CellRect::new(2, 4, 0, 4),
                kind: NodeKind::Leaf { region_id: 0 },
            },
            KdNode {
                region: CellRect::new(0, 2, 0, 1),
                kind: NodeKind::Leaf { region_id: 0 },
            },
            KdNode {
                region: CellRect::new(0, 2, 1, 4),
                kind: NodeKind::Leaf { region_id: 0 },
            },
        ];
        KdTree::from_arena(nodes, 4, 4)
    }

    #[test]
    fn leaf_ids_are_densified_in_arena_order() {
        let t = sample();
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.depth(), 2);
        let regions = t.leaf_regions();
        assert_eq!(regions[0], CellRect::new(2, 4, 0, 4));
        assert_eq!(regions[1], CellRect::new(0, 2, 0, 1));
        assert_eq!(regions[2], CellRect::new(0, 2, 1, 4));
    }

    #[test]
    fn split_boundaries_are_absolute() {
        let t = sample();
        // Root cuts rows at absolute 2; its low child cuts cols at 1.
        assert_eq!(
            t.node(KdTree::ROOT).unwrap().split_boundary(),
            Some((Axis::Row, 2))
        );
        assert_eq!(t.node(1).unwrap().split_boundary(), Some((Axis::Col, 1)));
        // Leaves have no cut; out-of-range indices no node.
        assert_eq!(t.node(2).unwrap().split_boundary(), None);
        assert!(t.node(5).is_none());
    }

    #[test]
    fn locate_visits_correct_leaf() {
        let t = sample();
        assert_eq!(t.locate(3, 3).unwrap(), 0);
        assert_eq!(t.locate(0, 0).unwrap(), 1);
        assert_eq!(t.locate(1, 2).unwrap(), 2);
        assert!(t.locate(4, 0).is_err());
    }

    #[test]
    fn locate_agrees_with_partition() {
        let t = sample();
        let g = Grid::unit(4).unwrap();
        let p = t.partition(&g).unwrap();
        for cell in g.cells() {
            let (r, c) = g.row_col(cell);
            assert_eq!(t.locate(r, c).unwrap(), p.region_of(cell));
        }
    }

    #[test]
    fn partition_requires_matching_grid() {
        let t = sample();
        let g = Grid::unit(5).unwrap();
        assert!(t.partition(&g).is_err());
    }

    #[test]
    fn range_query_finds_intersecting_leaves() {
        let t = sample();
        // Query covering only the top-left corner.
        assert_eq!(t.range_query(&CellRect::new(0, 1, 0, 1)), vec![1]);
        // Full-grid query returns every leaf.
        assert_eq!(t.range_query(&CellRect::new(0, 4, 0, 4)), vec![0, 1, 2]);
        // Empty query returns nothing.
        assert!(t.range_query(&CellRect::new(1, 1, 0, 0)).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: KdTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.locate(3, 3).unwrap(), 0);
    }
}
