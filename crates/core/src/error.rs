//! Error type for index construction.
//!
//! Part of the workspace error hierarchy: each crate keeps a focused
//! enum, and the `fsi` facade unifies them all under `fsi::FsiError`
//! (with source-chaining back to this type). Application code should
//! match on `FsiError`; match here only when using this crate directly.

use fsi_geo::GeoError;
use std::fmt;

/// Errors produced while building or querying fair spatial indexes.
#[derive(Debug)]
pub enum CoreError {
    /// An underlying geometry operation failed.
    Geo(GeoError),
    /// Aggregate vectors do not match the grid shape.
    ShapeMismatch {
        /// Expected number of cells.
        expected: usize,
        /// Received length.
        got: usize,
        /// Which aggregate disagreed.
        what: &'static str,
    },
    /// A configuration value is out of range.
    InvalidConfig(String),
    /// The caller asked for an operation requiring auxiliary (multi-task)
    /// aggregates, but none were attached to the [`crate::CellStats`].
    MissingAux,
    /// The external retrainer failed during iterative construction.
    Retrain(Box<dyn std::error::Error + Send + Sync>),
    /// A non-finite aggregate value was supplied.
    NonFiniteAggregate {
        /// Offending cell index.
        cell: usize,
        /// Which aggregate contained it.
        what: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Geo(e) => write!(f, "geometry error: {e}"),
            CoreError::ShapeMismatch {
                expected,
                got,
                what,
            } => write!(f, "{what}: expected {expected} cells, got {got}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            CoreError::MissingAux => {
                write!(f, "multi-objective split requires auxiliary aggregates")
            }
            CoreError::Retrain(e) => write!(f, "retrainer failed: {e}"),
            CoreError::NonFiniteAggregate { cell, what } => {
                write!(f, "non-finite {what} aggregate at cell {cell}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Geo(e) => Some(e),
            CoreError::Retrain(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<GeoError> for CoreError {
    fn from(e: GeoError) -> Self {
        CoreError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::MissingAux.to_string().contains("auxiliary"));
        let e = CoreError::ShapeMismatch {
            expected: 16,
            got: 4,
            what: "counts",
        };
        assert!(e.to_string().contains("16"));
        let e: CoreError = GeoError::NoSeeds.into();
        assert!(e.to_string().contains("seed"));
    }
}
