//! Per-cell aggregates backed by summed-area tables.
//!
//! Every split decision in the paper needs, for arbitrary rectangular
//! sub-regions, the population `|N|`, the score sum `Σ s_u` and the label
//! sum `Σ y_u` (Eqs. 7–9), and for the multi-objective variant the
//! aggregated residual sum `Σ v_tot[u]` (Eq. 13). [`CellStats`] pre-sums
//! these per grid cell and builds summed-area tables so each rectangle
//! query is O(1); the full split search for a node of extent `m` costs
//! `O(m)` instead of `O(cells in node)`.

use crate::error::CoreError;
use fsi_geo::{CellRect, Grid, SummedAreaTable};

/// Per-cell aggregates for split scoring.
#[derive(Debug, Clone)]
pub struct CellStats {
    rows: usize,
    cols: usize,
    count: SummedAreaTable,
    score_sum: SummedAreaTable,
    label_sum: SummedAreaTable,
    aux_sum: Option<SummedAreaTable>,
}

fn check(values: &[f64], len: usize, what: &'static str) -> Result<(), CoreError> {
    if values.len() != len {
        return Err(CoreError::ShapeMismatch {
            expected: len,
            got: values.len(),
            what,
        });
    }
    if let Some(cell) = values.iter().position(|v| !v.is_finite()) {
        return Err(CoreError::NonFiniteAggregate { cell, what });
    }
    Ok(())
}

impl CellStats {
    /// Builds statistics for `grid` from row-major per-cell aggregates:
    /// population counts, confidence-score sums and positive-label sums.
    pub fn new(
        grid: &Grid,
        counts: &[f64],
        score_sums: &[f64],
        label_sums: &[f64],
    ) -> Result<Self, CoreError> {
        let len = grid.len();
        check(counts, len, "counts")?;
        check(score_sums, len, "score sums")?;
        check(label_sums, len, "label sums")?;
        Ok(Self {
            rows: grid.rows(),
            cols: grid.cols(),
            count: SummedAreaTable::for_grid(grid, counts),
            score_sum: SummedAreaTable::for_grid(grid, score_sums),
            label_sum: SummedAreaTable::for_grid(grid, label_sums),
            aux_sum: None,
        })
    }

    /// Attaches auxiliary per-cell sums (the multi-objective `Σ v_tot`
    /// aggregates of Eq. 12).
    pub fn with_aux(mut self, grid: &Grid, aux_sums: &[f64]) -> Result<Self, CoreError> {
        check(aux_sums, grid.len(), "aux sums")?;
        if grid.rows() != self.rows || grid.cols() != self.cols {
            return Err(CoreError::ShapeMismatch {
                expected: self.rows * self.cols,
                got: grid.len(),
                what: "aux grid",
            });
        }
        self.aux_sum = Some(SummedAreaTable::for_grid(grid, aux_sums));
        Ok(self)
    }

    /// Grid shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// A copy of these statistics with row-major per-cell deltas folded
    /// in — the "what would the aggregates be after the buffered
    /// writes" primitive behind streaming drift detection. Each table
    /// is reconstructed from its per-cell values plus the matching
    /// delta and re-summed, so every rectangle query on the result
    /// reflects the shifted population. Auxiliary sums, when attached,
    /// are carried over unchanged (delta records carry no residuals).
    pub fn with_deltas(
        &self,
        grid: &Grid,
        count_deltas: &[f64],
        score_deltas: &[f64],
        label_deltas: &[f64],
    ) -> Result<Self, CoreError> {
        if grid.rows() != self.rows || grid.cols() != self.cols {
            return Err(CoreError::ShapeMismatch {
                expected: self.rows * self.cols,
                got: grid.len(),
                what: "delta grid",
            });
        }
        check(count_deltas, grid.len(), "count deltas")?;
        check(score_deltas, grid.len(), "score deltas")?;
        check(label_deltas, grid.len(), "label deltas")?;
        let mut counts = Vec::with_capacity(grid.len());
        let mut scores = Vec::with_capacity(grid.len());
        let mut labels = Vec::with_capacity(grid.len());
        for r in 0..self.rows {
            for c in 0..self.cols {
                let cell = CellRect::new(r, r + 1, c, c + 1);
                let i = r * self.cols + c;
                counts.push(self.count(&cell) + count_deltas[i]);
                scores.push(self.score_sum(&cell) + score_deltas[i]);
                labels.push(self.label_sum(&cell) + label_deltas[i]);
            }
        }
        let mut shifted = CellStats::new(grid, &counts, &scores, &labels)?;
        shifted.aux_sum = self.aux_sum.clone();
        Ok(shifted)
    }

    /// Population `|N|` of a region.
    #[inline]
    pub fn count(&self, rect: &CellRect) -> f64 {
        self.count.sum(rect)
    }

    /// Score sum `Σ_{u ∈ N} s_u` of a region.
    #[inline]
    pub fn score_sum(&self, rect: &CellRect) -> f64 {
        self.score_sum.sum(rect)
    }

    /// Label sum `Σ_{u ∈ N} y_u` of a region.
    #[inline]
    pub fn label_sum(&self, rect: &CellRect) -> f64 {
        self.label_sum.sum(rect)
    }

    /// Net residual `Σ (s_u − y_u)` of a region. Its absolute value equals
    /// `|N| · |e(N) − o(N)|`, the weighted mis-calibration of Eq. 9.
    #[inline]
    pub fn residual(&self, rect: &CellRect) -> f64 {
        self.score_sum.sum(rect) - self.label_sum.sum(rect)
    }

    /// Weighted mis-calibration `|N| · |o(N) − e(N)| = |Σ (y − s)|`.
    #[inline]
    pub fn miscalibration_mass(&self, rect: &CellRect) -> f64 {
        self.residual(rect).abs()
    }

    /// Auxiliary sum `Σ v_tot[u]` of a region (multi-objective), if
    /// auxiliary aggregates were attached.
    #[inline]
    pub fn aux_sum(&self, rect: &CellRect) -> Result<f64, CoreError> {
        self.aux_sum
            .as_ref()
            .map(|s| s.sum(rect))
            .ok_or(CoreError::MissingAux)
    }

    /// `true` when auxiliary aggregates are attached.
    pub fn has_aux(&self) -> bool {
        self.aux_sum.is_some()
    }

    /// Mean score `e(h | N)` of a region (Eq. 7); `None` for empty regions.
    pub fn mean_score(&self, rect: &CellRect) -> Option<f64> {
        let n = self.count(rect);
        (n > 0.0).then(|| self.score_sum(rect) / n)
    }

    /// Positive fraction `o(h | N)` of a region (Eq. 8); `None` for empty
    /// regions.
    pub fn positive_fraction(&self, rect: &CellRect) -> Option<f64> {
        let n = self.count(rect);
        (n > 0.0).then(|| self.label_sum(rect) / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::Grid;

    fn grid4() -> Grid {
        Grid::unit(4).unwrap()
    }

    fn stats() -> CellStats {
        let g = grid4();
        // One individual per cell; score = cell index / 16; label = index is even.
        let counts = vec![1.0; 16];
        let scores: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        let labels: Vec<f64> = (0..16).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        CellStats::new(&g, &counts, &scores, &labels).unwrap()
    }

    #[test]
    fn shape_validation() {
        let g = grid4();
        assert!(CellStats::new(&g, &[1.0; 15], &[0.0; 16], &[0.0; 16]).is_err());
        assert!(CellStats::new(&g, &[1.0; 16], &[0.0; 16], &[f64::NAN; 16]).is_err());
        let s = CellStats::new(&g, &[1.0; 16], &[0.0; 16], &[0.0; 16]).unwrap();
        assert!(s.clone().with_aux(&g, &[0.0; 15]).is_err());
        assert!(s.with_aux(&g, &[0.0; 16]).is_ok());
    }

    #[test]
    fn rectangle_aggregates() {
        let s = stats();
        let full = CellRect::new(0, 4, 0, 4);
        assert_eq!(s.count(&full), 16.0);
        assert_eq!(s.label_sum(&full), 8.0);
        let expected_scores: f64 = (0..16).map(|i| i as f64 / 16.0).sum();
        assert!((s.score_sum(&full) - expected_scores).abs() < 1e-9);
        assert!((s.residual(&full) - (expected_scores - 8.0)).abs() < 1e-9);
        assert_eq!(s.miscalibration_mass(&full), s.residual(&full).abs());
    }

    #[test]
    fn means_and_fractions() {
        let s = stats();
        let row0 = CellRect::new(0, 1, 0, 4);
        // Row 0 scores: 0, 1/16, 2/16, 3/16; labels: 1,0,1,0.
        assert!((s.mean_score(&row0).unwrap() - 6.0 / 64.0).abs() < 1e-12);
        assert!((s.positive_fraction(&row0).unwrap() - 0.5).abs() < 1e-12);
        let empty = CellRect::new(2, 2, 0, 4);
        assert_eq!(s.mean_score(&empty), None);
        assert_eq!(s.positive_fraction(&empty), None);
    }

    #[test]
    fn aux_requires_attachment() {
        let s = stats();
        let full = CellRect::new(0, 4, 0, 4);
        assert!(matches!(s.aux_sum(&full), Err(CoreError::MissingAux)));
        assert!(!s.has_aux());
        let g = grid4();
        let aux: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let s = s.with_aux(&g, &aux).unwrap();
        assert!(s.has_aux());
        assert_eq!(s.aux_sum(&full).unwrap(), 120.0);
        assert_eq!(s.aux_sum(&CellRect::new(0, 1, 0, 1)).unwrap(), 0.0);
    }

    #[test]
    fn deltas_shift_rectangle_aggregates() {
        let s = stats();
        let g = grid4();
        let mut dc = vec![0.0; 16];
        dc[5] = 2.0; // row 1, col 1
        let mut dl = vec![0.0; 16];
        dl[5] = 1.0;
        let ds = vec![0.0; 16];
        let shifted = s.with_deltas(&g, &dc, &ds, &dl).unwrap();
        let full = CellRect::new(0, 4, 0, 4);
        assert_eq!(shifted.count(&full), 18.0);
        assert_eq!(shifted.label_sum(&full), 9.0);
        assert!((shifted.score_sum(&full) - s.score_sum(&full)).abs() < 1e-9);
        // A rectangle that misses the shifted cell is untouched.
        let row0 = CellRect::new(0, 1, 0, 4);
        assert_eq!(shifted.count(&row0), s.count(&row0));
        assert_eq!(shifted.label_sum(&row0), s.label_sum(&row0));
        // Shape and finiteness are still validated.
        assert!(s.with_deltas(&g, &dc[..15], &ds, &dl).is_err());
        assert!(s.with_deltas(&g, &[f64::NAN; 16], &ds, &dl).is_err());
    }

    #[test]
    fn deltas_preserve_attached_aux_sums() {
        let g = grid4();
        let aux: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let s = stats().with_aux(&g, &aux).unwrap();
        let zeros = vec![0.0; 16];
        let shifted = s.with_deltas(&g, &zeros, &zeros, &zeros).unwrap();
        assert!(shifted.has_aux());
        let full = CellRect::new(0, 4, 0, 4);
        assert_eq!(shifted.aux_sum(&full).unwrap(), 120.0);
    }

    #[test]
    fn split_halves_sum_to_parent() {
        let s = stats();
        let parent = CellRect::new(0, 4, 1, 3);
        let (lo, hi) = parent.split_at(fsi_geo::Axis::Row, 2).unwrap();
        assert!((s.residual(&lo) + s.residual(&hi) - s.residual(&parent)).abs() < 1e-9);
        assert_eq!(s.count(&lo) + s.count(&hi), s.count(&parent));
    }
}
