//! Multi-objective residual aggregation (paper Eqs. 11–12).
//!
//! For `m` classification tasks with confidence scores `S_i` and labels
//! `Y_i`, each task contributes a residual vector `v_i = S_i − Y_i`
//! (Eq. 11). Task priorities `α_1..α_m` with `Σ α_i = 1`, `0 ≤ α_i ≤ 1`
//! blend them into `v_tot = Σ α_i v_i` (Eq. 12). Per-cell sums of `v_tot`
//! attach to [`crate::CellStats`] as auxiliary aggregates and drive
//! [`crate::split::MultiObjectiveSplit`] (Eq. 13).

use crate::error::CoreError;

/// One task's classifier output: scores and true labels.
#[derive(Debug, Clone, Copy)]
pub struct TaskOutput<'a> {
    /// Confidence scores `S_i` (one per individual).
    pub scores: &'a [f64],
    /// True labels `Y_i` (one per individual).
    pub labels: &'a [bool],
}

/// Computes the per-individual aggregated residual vector `v_tot`
/// (Eq. 12). `alphas` must be the same length as `tasks`, each in
/// `[0, 1]`, summing to 1.
pub fn aggregate_tasks(tasks: &[TaskOutput<'_>], alphas: &[f64]) -> Result<Vec<f64>, CoreError> {
    if tasks.is_empty() {
        return Err(CoreError::InvalidConfig(
            "at least one task is required".into(),
        ));
    }
    if alphas.len() != tasks.len() {
        return Err(CoreError::InvalidConfig(format!(
            "got {} alphas for {} tasks",
            alphas.len(),
            tasks.len()
        )));
    }
    for &a in alphas {
        if !(0.0..=1.0).contains(&a) || !a.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "alpha {a} outside [0, 1]"
            )));
        }
    }
    let sum: f64 = alphas.iter().sum();
    if (sum - 1.0).abs() > 1e-9 {
        return Err(CoreError::InvalidConfig(format!(
            "alphas must sum to 1, got {sum}"
        )));
    }
    let n = tasks[0].scores.len();
    for (i, t) in tasks.iter().enumerate() {
        if t.scores.len() != n || t.labels.len() != n {
            return Err(CoreError::ShapeMismatch {
                expected: n,
                got: t.scores.len().min(t.labels.len()),
                what: "task output lengths",
            });
        }
        if let Some(bad) = t.scores.iter().position(|s| !s.is_finite()) {
            let _ = i;
            return Err(CoreError::NonFiniteAggregate {
                cell: bad,
                what: "task scores",
            });
        }
    }
    let mut v_tot = vec![0.0f64; n];
    for (t, &alpha) in tasks.iter().zip(alphas) {
        for ((v, &s), &y) in v_tot.iter_mut().zip(t.scores).zip(t.labels) {
            *v += alpha * (s - f64::from(u8::from(y)));
        }
    }
    Ok(v_tot)
}

/// Convenience for equal task priorities `α_i = 1/m`.
pub fn equal_alphas(m: usize) -> Vec<f64> {
    vec![1.0 / m as f64; m.max(1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_is_plain_residual() {
        let scores = [0.8, 0.3];
        let labels = [true, false];
        let v = aggregate_tasks(
            &[TaskOutput {
                scores: &scores,
                labels: &labels,
            }],
            &[1.0],
        )
        .unwrap();
        assert!((v[0] - (-0.2)).abs() < 1e-12);
        assert!((v[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn two_tasks_blend_by_alpha() {
        let s1 = [1.0];
        let y1 = [false]; // residual +1
        let s2 = [0.0];
        let y2 = [true]; // residual -1
        let tasks = [
            TaskOutput {
                scores: &s1,
                labels: &y1,
            },
            TaskOutput {
                scores: &s2,
                labels: &y2,
            },
        ];
        // Equal alphas cancel exactly.
        let v = aggregate_tasks(&tasks, &[0.5, 0.5]).unwrap();
        assert!(v[0].abs() < 1e-12);
        // Skewed alphas favor task 1.
        let v = aggregate_tasks(&tasks, &[0.9, 0.1]).unwrap();
        assert!((v[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_alphas() {
        let s = [0.5];
        let y = [true];
        let t = [TaskOutput {
            scores: &s,
            labels: &y,
        }];
        assert!(aggregate_tasks(&t, &[0.5, 0.5]).is_err()); // wrong count
        assert!(aggregate_tasks(&t, &[1.5]).is_err()); // out of range
        assert!(aggregate_tasks(&t, &[0.7]).is_err()); // doesn't sum to 1
        assert!(aggregate_tasks(&[], &[]).is_err()); // no tasks
    }

    #[test]
    fn validation_rejects_mismatched_lengths() {
        let s1 = [0.5, 0.5];
        let y1 = [true, false];
        let s2 = [0.5];
        let y2 = [true];
        let tasks = [
            TaskOutput {
                scores: &s1,
                labels: &y1,
            },
            TaskOutput {
                scores: &s2,
                labels: &y2,
            },
        ];
        assert!(matches!(
            aggregate_tasks(&tasks, &[0.5, 0.5]),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_scores_rejected() {
        let s = [f64::NAN];
        let y = [true];
        assert!(aggregate_tasks(
            &[TaskOutput {
                scores: &s,
                labels: &y
            }],
            &[1.0]
        )
        .is_err());
    }

    #[test]
    fn equal_alphas_sum_to_one() {
        for m in 1..6 {
            let a = equal_alphas(m);
            assert_eq!(a.len(), m);
            assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }
}
