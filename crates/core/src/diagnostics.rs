//! Per-leaf diagnostics for built trees.
//!
//! Given a tree and the [`CellStats`] it was (or could have been) built
//! from, this module reports each leaf's population, calibration pair
//! `(e, o)` and ENCE contribution — the table an operator inspects to
//! understand *where* a districting still mis-serves residents.

use crate::cellstats::CellStats;
use crate::error::CoreError;
use crate::tree::KdTree;
use fsi_geo::CellRect;
use serde::{Deserialize, Serialize};

/// Diagnostics of one leaf region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafReport {
    /// Leaf/region id.
    pub region_id: usize,
    /// Covered grid block.
    pub region: CellRect,
    /// Population `|N|` (from the statistics, e.g. training rows).
    pub population: f64,
    /// Mean confidence score `e(N)` (`None` when unpopulated).
    pub mean_score: Option<f64>,
    /// Positive fraction `o(N)` (`None` when unpopulated).
    pub positive_fraction: Option<f64>,
    /// Net residual `Σ (s − y)`.
    pub net_residual: f64,
    /// Share of the total ENCE mass contributed by this leaf.
    pub ence_share: f64,
}

/// Summary of a tree against statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeDiagnostics {
    /// One entry per leaf, in region-id order.
    pub leaves: Vec<LeafReport>,
    /// ENCE of the leaf districting w.r.t. the statistics
    /// (`Σ |net residual| / Σ population`).
    pub ence: f64,
    /// The Theorem-1 lower bound: `|total residual| / population`.
    pub lower_bound: f64,
    /// Number of populated leaves.
    pub occupied: usize,
}

/// Computes per-leaf diagnostics of `tree` against `stats`.
///
/// The shapes must match; `stats` may be the construction-time aggregates
/// or fresh ones from a newly trained model (to audit transfer).
pub fn tree_diagnostics(tree: &KdTree, stats: &CellStats) -> Result<TreeDiagnostics, CoreError> {
    let (rows, cols) = stats.shape();
    if (rows, cols) != tree.grid_shape() {
        return Err(CoreError::ShapeMismatch {
            expected: tree.grid_shape().0 * tree.grid_shape().1,
            got: rows * cols,
            what: "diagnostics grid",
        });
    }
    let regions = tree.leaf_regions();
    let total_pop: f64 = stats.count(&CellRect::new(0, rows, 0, cols));
    let total_mass: f64 = regions.iter().map(|r| stats.miscalibration_mass(r)).sum();
    let leaves: Vec<LeafReport> = regions
        .iter()
        .enumerate()
        .map(|(region_id, region)| {
            let population = stats.count(region);
            let mass = stats.miscalibration_mass(region);
            LeafReport {
                region_id,
                region: *region,
                population,
                mean_score: stats.mean_score(region),
                positive_fraction: stats.positive_fraction(region),
                net_residual: stats.residual(region),
                ence_share: if total_mass > 0.0 {
                    mass / total_mass
                } else {
                    0.0
                },
            }
        })
        .collect();
    let occupied = leaves.iter().filter(|l| l.population > 0.0).count();
    Ok(TreeDiagnostics {
        ence: if total_pop > 0.0 {
            total_mass / total_pop
        } else {
            0.0
        },
        lower_bound: if total_pop > 0.0 {
            stats.residual(&CellRect::new(0, rows, 0, cols)).abs() / total_pop
        } else {
            0.0
        },
        occupied,
        leaves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_kd_tree;
    use crate::config::BuildConfig;
    use crate::split::{FairSplit, MedianSplit};
    use fsi_geo::Grid;

    fn stats() -> CellStats {
        let g = Grid::unit(8).unwrap();
        let n = 64;
        let counts = vec![1.0; n];
        let scores: Vec<f64> = (0..n)
            .map(|i| 0.25 + 0.5 * ((i % 8) as f64 / 8.0))
            .collect();
        let labels: Vec<f64> = (0..n).map(|i| f64::from(u8::from(i % 3 == 0))).collect();
        CellStats::new(&g, &counts, &scores, &labels).unwrap()
    }

    #[test]
    fn shares_sum_to_one_and_ence_is_consistent() {
        let s = stats();
        let tree = build_kd_tree(&s, &FairSplit, &BuildConfig::with_height(3)).unwrap();
        let d = tree_diagnostics(&tree, &s).unwrap();
        assert_eq!(d.leaves.len(), tree.num_leaves());
        let share: f64 = d.leaves.iter().map(|l| l.ence_share).sum();
        assert!((share - 1.0).abs() < 1e-9);
        // ENCE equals the population-weighted residual-mass identity.
        let manual: f64 = d.leaves.iter().map(|l| l.net_residual.abs()).sum::<f64>() / 64.0;
        assert!((d.ence - manual).abs() < 1e-12);
        assert!(d.ence >= d.lower_bound - 1e-12, "Theorem 1");
        assert_eq!(d.occupied, tree.num_leaves());
    }

    #[test]
    fn fair_tree_diagnoses_no_worse_than_median_on_its_own_field() {
        let s = stats();
        let fair = build_kd_tree(&s, &FairSplit, &BuildConfig::with_height(3)).unwrap();
        let median = build_kd_tree(&s, &MedianSplit, &BuildConfig::with_height(3)).unwrap();
        let df = tree_diagnostics(&fair, &s).unwrap();
        let dm = tree_diagnostics(&median, &s).unwrap();
        assert!(df.ence <= dm.ence + 1e-9);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let s = stats();
        let tree = build_kd_tree(&s, &MedianSplit, &BuildConfig::with_height(2)).unwrap();
        let g4 = Grid::unit(4).unwrap();
        let other = CellStats::new(&g4, &[1.0; 16], &[0.0; 16], &[0.0; 16]).unwrap();
        assert!(matches!(
            tree_diagnostics(&tree, &other),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn unpopulated_leaves_are_reported() {
        let g = Grid::unit(4).unwrap();
        // Population (and hence score mass) only in the top row: per-cell
        // aggregates are sums over resident individuals, so unpopulated
        // cells carry zero sums.
        let mut counts = vec![0.0; 16];
        let mut score_sums = vec![0.0; 16];
        for c in 0..4 {
            counts[c] = 2.0;
            score_sums[c] = 1.0;
        }
        let s = CellStats::new(&g, &counts, &score_sums, &[0.0; 16]).unwrap();
        let tree = build_kd_tree(&s, &MedianSplit, &BuildConfig::with_height(2)).unwrap();
        let d = tree_diagnostics(&tree, &s).unwrap();
        assert!(d.occupied < d.leaves.len());
        let empty = d.leaves.iter().find(|l| l.population == 0.0).unwrap();
        assert_eq!(empty.mean_score, None);
        assert_eq!(empty.positive_fraction, None);
        assert_eq!(empty.net_residual, 0.0);
    }
}
