//! Fair quadtree — the paper's future-work extension (§6).
//!
//! The conclusion proposes investigating "alternative indexing structures
//! ... that completely cover the data domain". A quadtree is the natural
//! four-way sibling of the KD-tree: every node covers a rectangle of grid
//! cells and splits into four quadrants at a chosen `(row, col)` pivot.
//! The fairness-aware rule generalizes Eq. 9 from balancing two children's
//! mis-calibration masses to minimizing the *variance* of the four
//! quadrant masses; the median rule balances population instead.

use crate::cellstats::CellStats;
use crate::error::CoreError;
use fsi_geo::{CellRect, Grid, Partition};
use serde::{Deserialize, Serialize};

/// Which pivot objective the quadtree minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QuadSplitRule {
    /// Minimize the variance of the four quadrants' mis-calibration masses
    /// `|Σ (s − y)|` — the Eq. 9 generalization.
    #[default]
    Fair,
    /// Minimize the variance of the four quadrants' populations.
    Median,
}

/// Quadtree construction configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuadConfig {
    /// Number of levels; the leaf set has at most `4^levels` regions.
    pub levels: usize,
    /// Pivot objective.
    pub rule: QuadSplitRule,
    /// Minimum fraction of the node's population each quadrant must
    /// receive for a pivot to be admissible (populated nodes only).
    ///
    /// Without this guard the fair rule degenerates: three empty sliver
    /// quadrants plus one huge quadrant whose net residual ≈ 0 minimize
    /// the mass variance exactly, producing a nominally deep tree whose
    /// *effective* districting is a single region. The default of 5 %
    /// forces every quadrant to carry real population.
    pub min_quadrant_fraction: f64,
}

impl Default for QuadConfig {
    fn default() -> Self {
        Self {
            levels: 3,
            rule: QuadSplitRule::Fair,
            min_quadrant_fraction: 0.05,
        }
    }
}

impl QuadConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if self.levels == 0 || self.levels > 16 {
            return Err(CoreError::InvalidConfig(format!(
                "levels must be in 1..=16, got {}",
                self.levels
            )));
        }
        if !(0.0..=0.25).contains(&self.min_quadrant_fraction) {
            return Err(CoreError::InvalidConfig(format!(
                "min_quadrant_fraction must be in [0, 0.25], got {}",
                self.min_quadrant_fraction
            )));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum QuadKind {
    Leaf {
        region_id: usize,
    },
    Internal {
        row_mid: usize,
        col_mid: usize,
        /// 2–4 children (degenerate pivots produce fewer quadrants).
        children: Vec<u32>,
    },
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct QuadNode {
    region: CellRect,
    kind: QuadKind,
}

/// A fairness-aware quadtree over the base grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FairQuadtree {
    nodes: Vec<QuadNode>,
    grid_rows: usize,
    grid_cols: usize,
    num_leaves: usize,
}

fn variance(masses: &[f64]) -> f64 {
    let n = masses.len() as f64;
    let mean = masses.iter().sum::<f64>() / n;
    masses.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / n
}

impl FairQuadtree {
    /// Builds a quadtree over the full grid.
    pub fn build(stats: &CellStats, config: &QuadConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let (rows, cols) = stats.shape();
        let mut nodes = Vec::new();
        Self::build_node(
            stats,
            config,
            &mut nodes,
            CellRect::new(0, rows, 0, cols),
            config.levels,
        )?;
        // Dense leaf ids in arena order.
        let mut next = 0usize;
        for n in &mut nodes {
            if let QuadKind::Leaf { region_id } = &mut n.kind {
                *region_id = next;
                next += 1;
            }
        }
        Ok(Self {
            nodes,
            grid_rows: rows,
            grid_cols: cols,
            num_leaves: next,
        })
    }

    fn mass(stats: &CellStats, rect: &CellRect, rule: QuadSplitRule) -> f64 {
        match rule {
            QuadSplitRule::Fair => stats.miscalibration_mass(rect),
            QuadSplitRule::Median => stats.count(rect),
        }
    }

    fn build_node(
        stats: &CellStats,
        config: &QuadConfig,
        nodes: &mut Vec<QuadNode>,
        region: CellRect,
        remaining: usize,
    ) -> Result<u32, CoreError> {
        let id = nodes.len() as u32;
        let splittable = region.num_rows() >= 2 && region.num_cols() >= 2;
        if remaining == 0 || !splittable {
            nodes.push(QuadNode {
                region,
                kind: QuadKind::Leaf { region_id: 0 },
            });
            return Ok(id);
        }

        // Scan all interior pivots with O(1) SAT queries per quadrant.
        // The fairness objective plateaus at zero wherever all quadrant
        // residuals vanish (e.g. empty areas), so exact ties are broken by
        // population balance — the same guard the KD splitter uses against
        // sliver regions.
        let node_pop = stats.count(&region);
        let min_pop = node_pop * config.min_quadrant_fraction;
        let mut best: Option<(usize, usize, f64, f64)> = None;
        for r in region.row_start + 1..region.row_end {
            for c in region.col_start + 1..region.col_end {
                let quads = region.split_quad(r, c);
                let pops: Vec<f64> = quads.iter().map(|q| stats.count(q)).collect();
                if node_pop > 0.0 && pops.iter().any(|&p| p < min_pop) {
                    continue;
                }
                let masses: Vec<f64> = quads
                    .iter()
                    .map(|q| Self::mass(stats, q, config.rule))
                    .collect();
                let obj = variance(&masses);
                let pop_var = variance(&pops);
                let better = match best {
                    None => true,
                    Some((_, _, b_obj, b_pop)) => {
                        obj < b_obj - 1e-12 || (obj <= b_obj + 1e-12 && pop_var < b_pop - 1e-12)
                    }
                };
                if better {
                    best = Some((r, c, obj, pop_var));
                }
            }
        }
        let Some((row_mid, col_mid, _, _)) = best else {
            // No admissible pivot (population constraint unsatisfiable):
            // the node stays a leaf.
            nodes.push(QuadNode {
                region,
                kind: QuadKind::Leaf { region_id: 0 },
            });
            return Ok(id);
        };

        nodes.push(QuadNode {
            region,
            kind: QuadKind::Leaf { region_id: 0 }, // placeholder
        });
        let mut children = Vec::with_capacity(4);
        for quad in region.split_quad(row_mid, col_mid) {
            children.push(Self::build_node(stats, config, nodes, quad, remaining - 1)?);
        }
        nodes[id as usize].kind = QuadKind::Internal {
            row_mid,
            col_mid,
            children,
        };
        Ok(id)
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf regions in region-id order.
    pub fn leaf_regions(&self) -> Vec<CellRect> {
        let mut out = vec![CellRect::new(0, 0, 0, 0); self.num_leaves];
        for n in &self.nodes {
            if let QuadKind::Leaf { region_id } = n.kind {
                out[region_id] = n.region;
            }
        }
        out
    }

    /// Region id of the leaf containing `(row, col)`.
    pub fn locate(&self, row: usize, col: usize) -> Result<usize, CoreError> {
        if row >= self.grid_rows || col >= self.grid_cols {
            return Err(CoreError::ShapeMismatch {
                expected: self.grid_rows * self.grid_cols,
                got: row * self.grid_cols + col,
                what: "cell coordinates",
            });
        }
        let mut i = 0u32;
        loop {
            let node = &self.nodes[i as usize];
            match &node.kind {
                QuadKind::Leaf { region_id } => return Ok(*region_id),
                QuadKind::Internal { children, .. } => {
                    i = *children
                        .iter()
                        .find(|&&c| self.nodes[c as usize].region.contains(row, col))
                        .expect("children tile the parent");
                }
            }
        }
    }

    /// Converts the leaf set into a [`Partition`] of `grid`.
    pub fn partition(&self, grid: &Grid) -> Result<Partition, CoreError> {
        if grid.rows() != self.grid_rows || grid.cols() != self.grid_cols {
            return Err(CoreError::ShapeMismatch {
                expected: self.grid_rows * self.grid_cols,
                got: grid.len(),
                what: "partition grid",
            });
        }
        Partition::from_rects(grid, &self.leaf_regions()).map_err(CoreError::Geo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stats(side: usize) -> CellStats {
        let g = Grid::unit(side).unwrap();
        let n = side * side;
        CellStats::new(&g, &vec![1.0; n], &vec![0.5; n], &vec![0.5; n]).unwrap()
    }

    #[test]
    fn one_level_gives_four_leaves() {
        let t = FairQuadtree::build(
            &uniform_stats(8),
            &QuadConfig {
                levels: 1,
                rule: QuadSplitRule::Median,
                ..QuadConfig::default()
            },
        )
        .unwrap();
        assert_eq!(t.num_leaves(), 4);
        // Uniform population: the median rule pivots at the center.
        let regions = t.leaf_regions();
        assert!(regions.iter().all(|r| r.num_cells() == 16));
    }

    #[test]
    fn leaves_tile_the_grid() {
        let g = Grid::unit(8).unwrap();
        for levels in 1..=3 {
            let t = FairQuadtree::build(
                &uniform_stats(8),
                &QuadConfig {
                    levels,
                    rule: QuadSplitRule::Fair,
                    ..QuadConfig::default()
                },
            )
            .unwrap();
            let p = t.partition(&g).unwrap();
            assert_eq!(p.num_regions(), t.num_leaves());
        }
    }

    #[test]
    fn locate_agrees_with_partition() {
        let g = Grid::unit(8).unwrap();
        let t = FairQuadtree::build(&uniform_stats(8), &QuadConfig::default()).unwrap();
        let p = t.partition(&g).unwrap();
        for cell in g.cells() {
            let (r, c) = g.row_col(cell);
            assert_eq!(t.locate(r, c).unwrap(), p.region_of(cell));
        }
        assert!(t.locate(8, 0).is_err());
    }

    #[test]
    fn fair_rule_chases_residual_hotspots() {
        // All residual concentrated in one quadrant: the fair pivot should
        // differ from the median pivot on uniform population.
        let g = Grid::unit(8).unwrap();
        let n = 64;
        let mut scores = vec![0.0; n];
        for r in 0..4 {
            for c in 0..4 {
                scores[r * 8 + c] = 1.0;
            }
        }
        let stats = CellStats::new(&g, &vec![1.0; n], &scores, &vec![0.0; n]).unwrap();
        let fair = FairQuadtree::build(
            &stats,
            &QuadConfig {
                levels: 1,
                rule: QuadSplitRule::Fair,
                ..QuadConfig::default()
            },
        )
        .unwrap();
        let median = FairQuadtree::build(
            &stats,
            &QuadConfig {
                levels: 1,
                rule: QuadSplitRule::Median,
                ..QuadConfig::default()
            },
        )
        .unwrap();
        assert_ne!(fair.leaf_regions(), median.leaf_regions());
        // The fair pivot equalizes quadrant masses: total mass 16 -> each
        // quadrant should carry 4 when a perfect admissible pivot exists
        // (it does: pivot (2,2) splits the 4x4 hotspot into four 2x2
        // blocks while every quadrant keeps enough population).
        let masses: Vec<f64> = fair
            .leaf_regions()
            .iter()
            .map(|r| stats.miscalibration_mass(r))
            .collect();
        let spread = masses.iter().cloned().fold(f64::MIN, f64::max)
            - masses.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1e-9, "masses {masses:?}");
    }

    #[test]
    fn thin_regions_stop_splitting() {
        // A 2x2 grid exhausts after one level.
        let t = FairQuadtree::build(
            &uniform_stats(2),
            &QuadConfig {
                levels: 3,
                rule: QuadSplitRule::Median,
                ..QuadConfig::default()
            },
        )
        .unwrap();
        assert_eq!(t.num_leaves(), 4);
    }

    #[test]
    fn config_validation() {
        let stats = uniform_stats(4);
        assert!(FairQuadtree::build(
            &stats,
            &QuadConfig {
                levels: 0,
                ..QuadConfig::default()
            }
        )
        .is_err());
        assert!(FairQuadtree::build(
            &stats,
            &QuadConfig {
                min_quadrant_fraction: 0.5,
                ..QuadConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn population_guard_prevents_sliver_quadrants() {
        // Residuals that sum to zero overall: without the population
        // guard, corner pivots (three empty quadrants) minimize the mass
        // variance exactly. With the default 5% guard every quadrant must
        // carry population.
        let g = Grid::unit(8).unwrap();
        let n = 64;
        let mut scores = vec![0.1; n];
        scores[0] = 3.0;
        scores[63] = -2.9 + 0.1; // net residual ~ 0 overall
        let labels = vec![0.1; n];
        let stats = CellStats::new(&g, &vec![1.0; n], &scores, &labels).unwrap();
        let t = FairQuadtree::build(
            &stats,
            &QuadConfig {
                levels: 1,
                ..QuadConfig::default()
            },
        )
        .unwrap();
        let pops: Vec<f64> = t.leaf_regions().iter().map(|r| stats.count(r)).collect();
        let min = pops.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min >= 64.0 * 0.05, "pops {pops:?}");
    }

    #[test]
    fn serde_round_trip() {
        let t = FairQuadtree::build(&uniform_stats(4), &QuadConfig::default()).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: FairQuadtree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn deterministic_construction() {
        let a = FairQuadtree::build(&uniform_stats(8), &QuadConfig::default()).unwrap();
        let b = FairQuadtree::build(&uniform_stats(8), &QuadConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
