//! Algorithm 3: Iterative Fair KD-tree — BFS construction with model
//! retraining at every level.
//!
//! The plain Fair KD-tree scores splits with confidence scores from one
//! initial training run. The iterative variant re-trains the model after
//! each level (on the *current* neighborhood districting) so that deeper
//! splits use refreshed scores — better fairness at the cost of
//! `⌈log t⌉` model trainings (Theorem 4).
//!
//! Model training lives outside this crate; the builder calls back through
//! the [`Retrainer`] trait with the current partition and receives fresh
//! per-cell aggregates.

use crate::cellstats::CellStats;
use crate::config::BuildConfig;
use crate::error::CoreError;
use crate::split::{choose_split, SplitPolicy};
use crate::tree::{KdNode, KdTree, NodeKind};
use fsi_geo::{Axis, CellRect, Grid, Partition};

/// Supplies refreshed per-cell aggregates for the current districting.
///
/// Implementations typically: update each individual's neighborhood
/// attribute from `partition`, re-train the classifier, and aggregate the
/// new confidence scores per grid cell (counts and label sums are
/// invariant across rounds).
pub trait Retrainer {
    /// Re-trains for the given partition and returns fresh aggregates.
    fn retrain(&mut self, partition: &Partition) -> Result<CellStats, CoreError>;
}

/// A [`Retrainer`] that always returns aggregates derived from a fixed
/// score set. Useful for tests and for recovering Algorithm 1's behavior
/// through the iterative code path.
#[derive(Debug, Clone)]
pub struct FixedRetrainer {
    stats: CellStats,
    /// Number of retrain calls served (observable in tests).
    pub calls: usize,
}

impl FixedRetrainer {
    /// Wraps fixed statistics.
    pub fn new(stats: CellStats) -> Self {
        Self { stats, calls: 0 }
    }
}

impl Retrainer for FixedRetrainer {
    fn retrain(&mut self, _partition: &Partition) -> Result<CellStats, CoreError> {
        self.calls += 1;
        Ok(self.stats.clone())
    }
}

/// Builds trees level-by-level (BFS), retraining between levels.
#[derive(Debug, Clone)]
pub struct IterativeBuilder {
    config: BuildConfig,
}

impl IterativeBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: BuildConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Runs Algorithm 3 over `grid` with the given split policy and
    /// retrainer.
    pub fn build(
        &self,
        grid: &Grid,
        policy: &dyn SplitPolicy,
        retrainer: &mut dyn Retrainer,
    ) -> Result<KdTree, CoreError> {
        let mut nodes = vec![KdNode {
            region: grid.full_rect(),
            kind: NodeKind::Leaf { region_id: 0 },
        }];
        let mut frontier: Vec<u32> = vec![0];

        for level in 0..self.config.height {
            if frontier.is_empty() {
                break;
            }
            // Remaining height at this level's nodes (Algorithm 3
            // decrements th from the configured height).
            let th = self.config.height - level;
            let axis = Axis::for_height(th);

            // Current leaf set (all leaves, including early-terminated
            // ones) forms the districting the model retrains on.
            let leaf_rects: Vec<CellRect> = nodes
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
                .map(|n| n.region)
                .collect();
            let partition = Partition::from_rects(grid, &leaf_rects)?;
            let stats = retrainer.retrain(&partition)?;
            let (srows, scols) = stats.shape();
            if srows != grid.rows() || scols != grid.cols() {
                return Err(CoreError::ShapeMismatch {
                    expected: grid.len(),
                    got: srows * scols,
                    what: "retrained aggregates",
                });
            }

            let mut next_frontier = Vec::with_capacity(frontier.len() * 2);
            for &idx in &frontier {
                let region = nodes[idx as usize].region;
                let decision = match choose_split(policy, &stats, &region, axis, &self.config)? {
                    Some(d) => Some(d),
                    None => choose_split(policy, &stats, &region, axis.other(), &self.config)?,
                };
                if let Some(d) = decision {
                    let low_id = nodes.len() as u32;
                    nodes.push(KdNode {
                        region: d.low,
                        kind: NodeKind::Leaf { region_id: 0 },
                    });
                    let high_id = nodes.len() as u32;
                    nodes.push(KdNode {
                        region: d.high,
                        kind: NodeKind::Leaf { region_id: 0 },
                    });
                    nodes[idx as usize].kind = NodeKind::Internal {
                        axis: d.axis,
                        offset: d.offset,
                        low: low_id,
                        high: high_id,
                    };
                    next_frontier.push(low_id);
                    next_frontier.push(high_id);
                }
            }
            frontier = next_frontier;
        }

        Ok(KdTree::from_arena(nodes, grid.rows(), grid.cols()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{FairSplit, MedianSplit};

    fn uniform_stats(side: usize) -> CellStats {
        let g = Grid::unit(side).unwrap();
        let n = side * side;
        CellStats::new(&g, &vec![1.0; n], &vec![0.5; n], &vec![0.5; n]).unwrap()
    }

    #[test]
    fn retrains_once_per_level() {
        let g = Grid::unit(8).unwrap();
        let mut rt = FixedRetrainer::new(uniform_stats(8));
        let b = IterativeBuilder::new(BuildConfig::with_height(3)).unwrap();
        let t = b.build(&g, &FairSplit, &mut rt).unwrap();
        assert_eq!(rt.calls, 3, "one retraining per level (Theorem 4)");
        assert_eq!(t.num_leaves(), 8);
    }

    #[test]
    fn with_fixed_scores_matches_dfs_builder() {
        // When the retrainer returns the same aggregates every round, the
        // iterative algorithm must coincide with Algorithm 1 (same axis
        // schedule, same objective, same tie-breaks).
        let g = Grid::unit(8).unwrap();
        let stats = uniform_stats(8);
        let cfg = BuildConfig::with_height(3);
        let dfs = crate::builder::build_kd_tree(&stats, &MedianSplit, &cfg).unwrap();
        let mut rt = FixedRetrainer::new(stats);
        let bfs = IterativeBuilder::new(cfg)
            .unwrap()
            .build(&g, &MedianSplit, &mut rt)
            .unwrap();
        let gp = Grid::unit(8).unwrap();
        assert_eq!(
            dfs.partition(&gp).unwrap().assignments().len(),
            bfs.partition(&gp).unwrap().assignments().len()
        );
        // Leaf regions must be identical as sets.
        let mut a = dfs.leaf_regions();
        let mut b = bfs.leaf_regions();
        let key = |r: &CellRect| (r.row_start, r.row_end, r.col_start, r.col_end);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn changing_scores_change_the_tree() {
        // A retrainer whose residual pattern is a diagonal band that shifts
        // every round produces a different tree than one frozen at round 0:
        // deeper levels see different score landscapes and cut elsewhere.
        fn diagonal_stats(side: usize, shift: usize) -> CellStats {
            let g = Grid::unit(side).unwrap();
            let n = side * side;
            let mut scores = vec![0.0; n];
            for col in 0..side {
                let row = (col + shift) % side;
                scores[row * side + col] = 1.0;
            }
            CellStats::new(&g, &vec![1.0; n], &scores, &vec![0.0; n]).unwrap()
        }
        struct MovingRetrainer {
            side: usize,
            round: usize,
        }
        impl Retrainer for MovingRetrainer {
            fn retrain(&mut self, _p: &Partition) -> Result<CellStats, CoreError> {
                let stats = diagonal_stats(self.side, 2 * self.round);
                self.round += 1;
                Ok(stats)
            }
        }
        let g = Grid::unit(8).unwrap();
        let cfg = BuildConfig::with_height(3);
        let dfs = crate::builder::build_kd_tree(&diagonal_stats(8, 0), &FairSplit, &cfg).unwrap();
        let mut rt = MovingRetrainer { side: 8, round: 0 };
        let bfs = IterativeBuilder::new(cfg)
            .unwrap()
            .build(&g, &FairSplit, &mut rt)
            .unwrap();
        assert_ne!(dfs.leaf_regions(), bfs.leaf_regions());
    }

    #[test]
    fn retrainer_errors_propagate() {
        struct Failing;
        impl Retrainer for Failing {
            fn retrain(&mut self, _p: &Partition) -> Result<CellStats, CoreError> {
                Err(CoreError::Retrain("model exploded".into()))
            }
        }
        let g = Grid::unit(4).unwrap();
        let b = IterativeBuilder::new(BuildConfig::with_height(2)).unwrap();
        let err = b.build(&g, &FairSplit, &mut Failing).unwrap_err();
        assert!(err.to_string().contains("model exploded"));
    }

    #[test]
    fn shape_mismatch_from_retrainer_is_detected() {
        struct WrongShape;
        impl Retrainer for WrongShape {
            fn retrain(&mut self, _p: &Partition) -> Result<CellStats, CoreError> {
                let g = Grid::unit(2).unwrap();
                CellStats::new(&g, &[1.0; 4], &[0.0; 4], &[0.0; 4])
            }
        }
        let g = Grid::unit(4).unwrap();
        let b = IterativeBuilder::new(BuildConfig::with_height(1)).unwrap();
        assert!(matches!(
            b.build(&g, &FairSplit, &mut WrongShape),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn partition_passed_to_retrainer_grows_each_level() {
        struct Recording {
            sizes: Vec<usize>,
            stats: CellStats,
        }
        impl Retrainer for Recording {
            fn retrain(&mut self, p: &Partition) -> Result<CellStats, CoreError> {
                self.sizes.push(p.num_regions());
                Ok(self.stats.clone())
            }
        }
        let g = Grid::unit(8).unwrap();
        let mut rt = Recording {
            sizes: Vec::new(),
            stats: uniform_stats(8),
        };
        IterativeBuilder::new(BuildConfig::with_height(3))
            .unwrap()
            .build(&g, &MedianSplit, &mut rt)
            .unwrap();
        // Level 0 sees the single-region districting (Algorithm 3 line 2),
        // then 2, then 4.
        assert_eq!(rt.sizes, vec![1, 2, 4]);
    }

    #[test]
    fn grid_resolution_limits_leaves() {
        let g = Grid::unit(2).unwrap();
        let mut rt = FixedRetrainer::new(uniform_stats(2));
        let t = IterativeBuilder::new(BuildConfig::with_height(5))
            .unwrap()
            .build(&g, &MedianSplit, &mut rt)
            .unwrap();
        assert_eq!(t.num_leaves(), 4);
        // Frontier empties after two levels; no further retraining needed.
        assert!(rt.calls <= 3);
    }
}
