//! Split policies: how a node's division index is chosen.
//!
//! Algorithm 2 of the paper scans every admissible division index `k`
//! along the current axis, scores it with an objective, and keeps the
//! minimizer. The objective is what distinguishes the methods:
//!
//! * [`MedianSplit`] — population balance `| |L_k| − |R_k| |` (the standard
//!   KD-tree median rule, expressed over the grid).
//! * [`FairSplit`] — the paper's Eq. 9:
//!   `z_k = | |L_k|·|o(L_k)−e(L_k)| − |R_k|·|o(R_k)−e(R_k)| |`, which by the
//!   residual identity equals `| |Σ_L (s−y)| − |Σ_R (s−y)| |`.
//! * [`MultiObjectiveSplit`] — Eq. 13:
//!   `z_k = | |L_k|·|Σ_L v_tot| − |R_k|·|Σ_R v_tot| |`.

use crate::cellstats::CellStats;
use crate::config::{BuildConfig, TieBreak};
use crate::error::CoreError;
use fsi_geo::{Axis, CellRect};

/// One admissible division index with its objective value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    /// Division offset `k` (low side takes `k` rows/columns).
    pub offset: usize,
    /// Objective value `z_k` (lower is better).
    pub objective: f64,
    /// Population imbalance `| |L_k| − |R_k| |`, used for tie-breaking.
    pub imbalance: f64,
}

/// A chosen split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitDecision {
    /// Axis the cut runs along.
    pub axis: Axis,
    /// Division offset along that axis.
    pub offset: usize,
    /// Objective value of the chosen candidate.
    pub objective: f64,
    /// Low-side region (`L_k`).
    pub low: CellRect,
    /// High-side region (`R_k`).
    pub high: CellRect,
}

/// A split objective. Implementations score a single candidate in O(1)
/// given the [`CellStats`] summed-area tables.
pub trait SplitPolicy {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Objective value for dividing `region` into `(low, high)`.
    fn objective(
        &self,
        stats: &CellStats,
        low: &CellRect,
        high: &CellRect,
    ) -> Result<f64, CoreError>;
}

/// Standard median (population-balancing) splits.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianSplit;

impl SplitPolicy for MedianSplit {
    fn name(&self) -> &'static str {
        "median"
    }

    fn objective(
        &self,
        stats: &CellStats,
        low: &CellRect,
        high: &CellRect,
    ) -> Result<f64, CoreError> {
        Ok((stats.count(low) - stats.count(high)).abs())
    }
}

/// The paper's fair split objective (Eq. 9).
#[derive(Debug, Clone, Copy, Default)]
pub struct FairSplit;

impl SplitPolicy for FairSplit {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn objective(
        &self,
        stats: &CellStats,
        low: &CellRect,
        high: &CellRect,
    ) -> Result<f64, CoreError> {
        Ok((stats.miscalibration_mass(low) - stats.miscalibration_mass(high)).abs())
    }
}

/// The multi-objective split objective (Eq. 13). Requires auxiliary
/// aggregates on the [`CellStats`] (see
/// [`crate::multiobjective::aggregate_tasks`]).
///
/// Note the paper's formula multiplies the *unnormalized* residual sum by
/// the region population, i.e. `|L_k| · |Σ_L v_tot|`; we implement it as
/// written.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiObjectiveSplit;

impl SplitPolicy for MultiObjectiveSplit {
    fn name(&self) -> &'static str {
        "multi-objective"
    }

    fn objective(
        &self,
        stats: &CellStats,
        low: &CellRect,
        high: &CellRect,
    ) -> Result<f64, CoreError> {
        let l = stats.count(low) * stats.aux_sum(low)?.abs();
        let r = stats.count(high) * stats.aux_sum(high)?.abs();
        Ok((l - r).abs())
    }
}

/// Enumerates every admissible candidate for splitting `region` along
/// `axis`, scoring each with `policy`. Candidates violating
/// `min_child_population` are dropped.
pub fn enumerate_candidates(
    policy: &dyn SplitPolicy,
    stats: &CellStats,
    region: &CellRect,
    axis: Axis,
    config: &BuildConfig,
) -> Result<Vec<SplitCandidate>, CoreError> {
    let extent = region.extent(axis);
    let mut out = Vec::with_capacity(extent.saturating_sub(1));
    for k in 1..extent {
        let (low, high) = region
            .split_at(axis, k)
            .expect("1..extent offsets are valid");
        let (nl, nr) = (stats.count(&low), stats.count(&high));
        if nl < config.min_child_population || nr < config.min_child_population {
            continue;
        }
        out.push(SplitCandidate {
            offset: k,
            objective: policy.objective(stats, &low, &high)?,
            imbalance: (nl - nr).abs(),
        });
    }
    Ok(out)
}

/// Chooses the best split of `region` along `axis` per Eq. 10
/// (`k* = argmin_k z_k`), applying the configured tie-break within
/// `tie_epsilon` of the minimum. Returns `None` when no admissible
/// candidate exists (region too thin or population constraints
/// unsatisfiable).
pub fn choose_split(
    policy: &dyn SplitPolicy,
    stats: &CellStats,
    region: &CellRect,
    axis: Axis,
    config: &BuildConfig,
) -> Result<Option<SplitDecision>, CoreError> {
    let candidates = enumerate_candidates(policy, stats, region, axis, config)?;
    let Some(best) = candidates
        .iter()
        .map(|c| c.objective)
        .min_by(|a, b| a.partial_cmp(b).expect("objectives are finite"))
    else {
        return Ok(None);
    };
    let within: Vec<&SplitCandidate> = candidates
        .iter()
        .filter(|c| c.objective <= best + config.tie_epsilon)
        .collect();
    let chosen = match config.tie_break {
        // `within` preserves ascending offset order, so `min_by` on
        // imbalance returns the earliest offset among equals.
        TieBreak::PreferBalanced => within
            .iter()
            .min_by(|a, b| {
                a.imbalance
                    .partial_cmp(&b.imbalance)
                    .expect("imbalance is finite")
            })
            .expect("within is non-empty"),
        TieBreak::FirstIndex => within.first().expect("within is non-empty"),
    };
    let (low, high) = region
        .split_at(axis, chosen.offset)
        .expect("candidate offsets are valid");
    Ok(Some(SplitDecision {
        axis,
        offset: chosen.offset,
        objective: chosen.objective,
        low,
        high,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::Grid;

    /// A 4×4 grid with controllable per-cell residuals.
    fn stats_from(counts: [f64; 16], scores: [f64; 16], labels: [f64; 16]) -> CellStats {
        let g = Grid::unit(4).unwrap();
        CellStats::new(&g, &counts, &scores, &labels).unwrap()
    }

    fn full() -> CellRect {
        CellRect::new(0, 4, 0, 4)
    }

    #[test]
    fn median_split_balances_population() {
        // Populations concentrated in the top row: the median split should
        // cut right below it.
        let mut counts = [1.0; 16];
        counts[..4].fill(10.0);
        let stats = stats_from(counts, [0.0; 16], [0.0; 16]);
        let cfg = BuildConfig::default();
        let d = choose_split(&MedianSplit, &stats, &full(), Axis::Row, &cfg)
            .unwrap()
            .unwrap();
        assert_eq!(d.offset, 1);
        assert_eq!(stats.count(&d.low), 40.0);
        assert_eq!(stats.count(&d.high), 12.0);
    }

    #[test]
    fn fair_split_balances_residual_mass() {
        // Rows carry residuals +4, 0, 0, -2 (score_sum - label_sum per row).
        // Eq. 9 objectives per k: k=1: |4-2|=2, k=2: |4-2|=2, k=3: |4-2|=2.
        // Plateau! With residuals +4, -1, 0, -2 instead:
        //   k=1: |4-3|=1, k=2: |3-2|=1, k=3: |3-2|=1 ... choose balanced.
        // Use a case with a unique minimum: +4, -2, 0, 0:
        //   k=1: |4-2|=2, k=2: |2-0|=2, k=3: |2-0|=2. Still plateau.
        // Row residuals r = [5, -1, -1, -1]: prefix a_k = 5, 4, 3 and
        // total = 2, so z_k = |a_k| - |2 - a_k| in abs:
        //   k=1: |5-3|=2, k=2: |4-2|=2, k=3: |3-1|=2. Plateau again —
        // symptomatic of 1-D prefix structure; use a sign change:
        // r = [5, -4, 1, 0]: a = 5, 1, 2; total = 2:
        //   k=1: |5-3|=2, k=2: |1-1|=0, k=3: |2-0|=2 -> k*=2.
        let mut scores = [0.0; 16];
        scores[0] = 5.0; // row 0 residual +5
        let mut labels = [0.0; 16];
        labels[4] = 4.0; // row 1 residual -4
        let mut s2 = scores;
        s2[8] = 1.0; // row 2 residual +1
        let stats = stats_from([1.0; 16], s2, labels);
        let cfg = BuildConfig::default();
        let d = choose_split(&FairSplit, &stats, &full(), Axis::Row, &cfg)
            .unwrap()
            .unwrap();
        assert_eq!(d.offset, 2);
        assert!((d.objective).abs() < 1e-12);
        // The chosen split gives both children equal |residual| = 1... no:
        // low = rows 0..2 residual 1, high = rows 2..4 residual 1.
        assert!((stats.residual(&d.low) - 1.0).abs() < 1e-12);
        assert!((stats.residual(&d.high) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plateau_tiebreak_prefers_balanced() {
        // All-zero residuals: every candidate has objective 0. Balanced
        // tie-break should pick the middle of a uniform population.
        let stats = stats_from([1.0; 16], [0.0; 16], [0.0; 16]);
        let cfg = BuildConfig::default();
        let d = choose_split(&FairSplit, &stats, &full(), Axis::Row, &cfg)
            .unwrap()
            .unwrap();
        assert_eq!(d.offset, 2, "balanced tie-break picks the middle");
        let cfg = BuildConfig {
            tie_break: TieBreak::FirstIndex,
            ..BuildConfig::default()
        };
        let d = choose_split(&FairSplit, &stats, &full(), Axis::Row, &cfg)
            .unwrap()
            .unwrap();
        assert_eq!(d.offset, 1, "first-index tie-break picks the sliver");
    }

    #[test]
    fn column_axis_splits_transpose() {
        // Population concentrated in the left column.
        let mut counts = [1.0; 16];
        for r in 0..4 {
            counts[r * 4] = 10.0;
        }
        let stats = stats_from(counts, [0.0; 16], [0.0; 16]);
        let cfg = BuildConfig::default();
        let d = choose_split(&MedianSplit, &stats, &full(), Axis::Col, &cfg)
            .unwrap()
            .unwrap();
        assert_eq!(d.axis, Axis::Col);
        assert_eq!(d.offset, 1);
    }

    #[test]
    fn thin_region_has_no_candidates() {
        let stats = stats_from([1.0; 16], [0.0; 16], [0.0; 16]);
        let cfg = BuildConfig::default();
        let thin = CellRect::new(0, 1, 0, 4); // one row
        assert!(choose_split(&FairSplit, &stats, &thin, Axis::Row, &cfg)
            .unwrap()
            .is_none());
        // ... but it can still be cut along the other axis.
        assert!(choose_split(&FairSplit, &stats, &thin, Axis::Col, &cfg)
            .unwrap()
            .is_some());
    }

    #[test]
    fn min_child_population_filters_candidates() {
        // 4 individuals in row 0, nothing elsewhere: demanding >= 2 per
        // child along rows is unsatisfiable (any row cut isolates all 4 on
        // one side).
        let mut counts = [0.0; 16];
        counts[..4].fill(1.0);
        let stats = stats_from(counts, [0.0; 16], [0.0; 16]);
        let cfg = BuildConfig {
            min_child_population: 2.0,
            ..BuildConfig::default()
        };
        assert!(choose_split(&MedianSplit, &stats, &full(), Axis::Row, &cfg)
            .unwrap()
            .is_none());
        // Along columns it is satisfiable: 2 | 2.
        let d = choose_split(&MedianSplit, &stats, &full(), Axis::Col, &cfg)
            .unwrap()
            .unwrap();
        assert_eq!(d.offset, 2);
    }

    #[test]
    fn multi_objective_requires_aux() {
        let stats = stats_from([1.0; 16], [0.0; 16], [0.0; 16]);
        let cfg = BuildConfig::default();
        assert!(matches!(
            choose_split(&MultiObjectiveSplit, &stats, &full(), Axis::Row, &cfg),
            Err(CoreError::MissingAux)
        ));
    }

    #[test]
    fn multi_objective_uses_aux_mass() {
        let g = Grid::unit(4).unwrap();
        // Rows with aux sums 6, -6, 0, 0 and uniform population.
        let mut aux = [0.0; 16];
        for c in 0..4 {
            aux[c] = 1.5; // row 0: +6
            aux[4 + c] = -1.5; // row 1: -6
        }
        let stats = CellStats::new(&g, &[1.0; 16], &[0.0; 16], &[0.0; 16])
            .unwrap()
            .with_aux(&g, &aux)
            .unwrap();
        let cfg = BuildConfig::default();
        let d = choose_split(&MultiObjectiveSplit, &stats, &full(), Axis::Row, &cfg)
            .unwrap()
            .unwrap();
        // Eq. 13: k=1: |4·6 − 12·0| = 24; k=2: |8·0 − 8·0| = 0; k=3:
        // |12·0 − 4·0| = 0 — tie between k=2 and k=3, balance picks k=2.
        assert_eq!(d.offset, 2);
    }

    #[test]
    fn candidates_enumerate_all_offsets() {
        let stats = stats_from([1.0; 16], [0.0; 16], [0.0; 16]);
        let cfg = BuildConfig::default();
        let c = enumerate_candidates(&MedianSplit, &stats, &full(), Axis::Row, &cfg).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].offset, 1);
        assert_eq!(c[2].offset, 3);
    }
}
