//! The log-linear latency histogram and its mergeable snapshot.
//!
//! Bucket layout (fixed, shared by every histogram so snapshots merge
//! index-by-index):
//!
//! * values `0..16` — one exact bucket each (16 linear buckets);
//! * values `16..2^42` — four sub-buckets per power-of-two octave, so
//!   every bucket spans at most a quarter of its lower bound and any
//!   quantile estimate is within 25 % of the true value;
//! * values `≥ 2^42` (~73 minutes in nanoseconds) — one overflow
//!   bucket, reported as the exactly-tracked max.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Exact buckets below the first octave.
const LINEAR: usize = 16;
/// Sub-buckets per octave.
const SUB: usize = 4;
/// First octave with sub-bucketing (`2^4 = 16`).
const FIRST_OCTAVE: u32 = 4;
/// First octave collapsed into the overflow bucket.
const OVERFLOW_OCTAVE: u32 = 42;
/// Index of the overflow bucket.
const OVERFLOW: usize = LINEAR + (OVERFLOW_OCTAVE - FIRST_OCTAVE) as usize * SUB;

/// Total number of buckets in the fixed layout.
pub const BUCKETS: usize = OVERFLOW + 1;

/// Bucket index for a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    if octave >= OVERFLOW_OCTAVE {
        return OVERFLOW;
    }
    let sub = ((v >> (octave - 2)) & 3) as usize;
    LINEAR + (octave - FIRST_OCTAVE) as usize * SUB + sub
}

/// Inclusive lower and exclusive upper value bound of a bucket.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < LINEAR {
        return (i as u64, i as u64 + 1);
    }
    if i >= OVERFLOW {
        return (1u64 << OVERFLOW_OCTAVE, u64::MAX);
    }
    let octave = FIRST_OCTAVE + ((i - LINEAR) / SUB) as u32;
    let sub = ((i - LINEAR) % SUB) as u64;
    let width = 1u64 << (octave - 2);
    let lower = (1u64 << octave) + sub * width;
    (lower, lower + width)
}

/// A lock-free log-linear histogram of `u64` values (latencies in
/// nanoseconds, sizes, …).
///
/// Recording is a handful of uncontended release-ordered `fetch_add`s;
/// reading is [`Histogram::snapshot`], which may be called from any
/// thread at any time.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Acquire))
            .field("sum", &self.sum.load(Ordering::Acquire))
            .field("max", &self.max.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Release);
        self.count.fetch_add(1, Ordering::Release);
        self.sum.fetch_add(v, Ordering::Release);
        self.max.fetch_max(v, Ordering::AcqRel);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Captures a point-in-time snapshot. Concurrent recording keeps
    /// going; each bucket count is individually monotone, so two
    /// consecutive snapshots never disagree downward.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut idx = Vec::new();
        let mut counts = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Acquire);
            if c > 0 {
                idx.push(i as u32);
                counts.push(c);
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Acquire),
            sum: self.sum.load(Ordering::Acquire),
            max: self.max.load(Ordering::Acquire),
            idx,
            counts,
        }
    }
}

/// A frozen, mergeable, serde-round-trippable view of a [`Histogram`].
///
/// Buckets are stored sparsely (parallel `idx` / `counts` vectors) so
/// an idle histogram costs a few bytes on the wire, not `BUCKETS`
/// zeros.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    max: u64,
    idx: Vec<u32>,
    counts: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (no recorded values).
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            max: 0,
            idx: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Rebuilds a snapshot from raw parts — primarily for tests and
    /// property strategies; bucket indexes at or above [`BUCKETS`] are
    /// ignored by every consumer.
    pub fn from_parts(count: u64, sum: u64, max: u64, buckets: &[(u32, u64)]) -> Self {
        Self {
            count,
            sum,
            max,
            idx: buckets.iter().map(|&(i, _)| i).collect(),
            counts: buckets.iter().map(|&(_, c)| c).collect(),
        }
    }

    /// Values recorded (the histogram's own monotone counter).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value, tracked exactly.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of the in-layout bucket counts — equals [`Self::count`] at
    /// quiescence, may trail it by in-flight recordings otherwise.
    pub fn total(&self) -> u64 {
        self.dense().iter().sum()
    }

    /// Mean recorded value; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn dense(&self) -> [u64; BUCKETS] {
        let mut d = [0u64; BUCKETS];
        for (&i, &c) in self.idx.iter().zip(&self.counts) {
            if let Some(slot) = d.get_mut(i as usize) {
                *slot += c;
            }
        }
        d
    }

    /// Folds another snapshot into this one (per-worker shard merge).
    pub fn merge(&mut self, other: &Self) {
        let mut d = self.dense();
        for (&i, &c) in other.idx.iter().zip(&other.counts) {
            if let Some(slot) = d.get_mut(i as usize) {
                *slot += c;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.idx.clear();
        self.counts.clear();
        for (i, &c) in d.iter().enumerate() {
            if c > 0 {
                self.idx.push(i as u32);
                self.counts.push(c);
            }
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), within 25 % of the true
    /// value below the overflow bucket. `q ≥ 1.0` and ranks landing in
    /// the overflow bucket report the exact max; an empty histogram
    /// reports `0`.
    pub fn quantile(&self, q: f64) -> u64 {
        let d = self.dense();
        let total: u64 = d.iter().sum();
        if total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in d.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i >= OVERFLOW {
                    return self.max;
                }
                return bucket_bounds(i).0;
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_self_inverse() {
        let mut expected_lower = 0u64;
        for i in 0..OVERFLOW {
            let (lower, upper) = bucket_bounds(i);
            assert_eq!(
                lower,
                expected_lower,
                "bucket {i} starts where {} ended",
                i.max(1) - 1
            );
            assert!(upper > lower);
            assert_eq!(bucket_index(lower), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(upper - 1), i, "upper bound of bucket {i}");
            expected_lower = upper;
        }
        assert_eq!(expected_lower, 1u64 << OVERFLOW_OCTAVE);
        assert_eq!(bucket_index(1u64 << OVERFLOW_OCTAVE), OVERFLOW);
        assert_eq!(bucket_index(u64::MAX), OVERFLOW);
        assert_eq!(BUCKETS, 169);
    }

    /// A tiny deterministic xorshift so the reference-comparison test
    /// needs no RNG dependency.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn quantiles_track_a_sorted_vector_reference_within_25_percent() {
        // Mixed magnitudes: sub-16 exact values, µs-scale, ms-scale.
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        let mut values = Vec::new();
        for _ in 0..4000 {
            values.push(rng.next() % 16); // exact range
        }
        for _ in 0..4000 {
            values.push(50_000 + rng.next() % 1_000_000); // ~µs latencies
        }
        for _ in 0..2000 {
            values.push(5_000_000 + rng.next() % 100_000_000); // ~ms tail
        }
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), values.len() as u64);
        assert_eq!(snap.total(), values.len() as u64);
        assert_eq!(snap.sum(), values.iter().sum::<u64>());
        assert_eq!(snap.max(), *sorted.last().unwrap());
        for q in [0.1, 0.25, 0.5, 0.9, 0.95, 0.99] {
            let exact = reference_quantile(&sorted, q);
            let est = snap.quantile(q);
            assert!(
                est <= exact,
                "q={q}: estimate {est} must not exceed exact {exact}"
            );
            if exact < LINEAR as u64 {
                assert_eq!(est, exact, "q={q}: sub-16 values are exact");
            } else {
                let rel = (exact - est) as f64 / exact as f64;
                assert!(rel < 0.25, "q={q}: {est} vs {exact} off by {rel}");
            }
        }
        assert_eq!(
            snap.quantile(1.0),
            *sorted.last().unwrap(),
            "q=1 is the exact max"
        );
    }

    #[test]
    fn overflow_values_report_the_exact_max() {
        let h = Histogram::new();
        let big = (1u64 << OVERFLOW_OCTAVE) + 12_345;
        h.record(big);
        h.record(big + 7);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), big + 7, "overflow bucket answers max");
        assert_eq!(snap.max(), big + 7);
    }

    #[test]
    fn merging_snapshots_equals_recording_the_union() {
        let mut rng = XorShift(42);
        let a_vals: Vec<u64> = (0..500).map(|_| rng.next() % 1_000_000).collect();
        let b_vals: Vec<u64> = (0..300).map(|_| rng.next() % 50_000_000).collect();
        let (a, b, union) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a_vals {
            a.record(v);
            union.record(v);
        }
        for &v in &b_vals {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let h = Histogram::new();
        for v in [0, 3, 15, 16, 1_000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.max(), u64::MAX);
    }

    #[test]
    fn empty_and_out_of_range_snapshots_are_harmless() {
        let empty = HistogramSnapshot::empty();
        assert_eq!(empty.quantile(0.99), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.total(), 0);
        // A peer sending bucket indexes beyond our layout must not
        // panic or skew quantiles.
        let hostile = HistogramSnapshot::from_parts(2, 10, 9, &[(1, 1), (100_000, 1)]);
        assert_eq!(hostile.count(), 2, "raw count is whatever the peer said");
        assert_eq!(hostile.total(), 1, "out-of-range bucket ignored");
        assert_eq!(hostile.quantile(0.5), 1);
        let mut base = HistogramSnapshot::empty();
        base.merge(&hostile);
        assert_eq!(base.count(), 2);
        assert_eq!(base.total(), 1);
    }
}
