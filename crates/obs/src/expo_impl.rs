//! A minimal Prometheus text-exposition (version 0.0.4) writer.
//!
//! Only what the `/metrics` endpoint needs: `# HELP` / `# TYPE`
//! headers, labeled samples, and summary families (quantile samples
//! plus `_sum` / `_count`) rendered from a histogram snapshot.

use crate::HistogramSnapshot;
use std::fmt::Write as _;

/// An in-progress text exposition.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            _ => s.push(ch),
        }
    }
    s
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

impl Exposition {
    /// Starts an empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is the Prometheus type: `counter`, `gauge` or `summary`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Writes one labeled sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        write_labels(&mut self.out, labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Writes one labeled integer sample line (no float formatting).
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        write_labels(&mut self.out, labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Writes a summary family body from a histogram snapshot: p50 /
    /// p95 / p99 quantile samples plus `_sum` and `_count`. Recorded
    /// values are divided by `divisor` (pass `1e9` for
    /// nanosecond-recorded latencies exposed in seconds; division
    /// rounds to the nearest double, so decimal divisors print
    /// cleanly).
    pub fn summary(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        divisor: f64,
    ) {
        for (q, v) in [
            ("0.5", snap.p50()),
            ("0.95", snap.p95()),
            ("0.99", snap.p99()),
            ("1", snap.max()),
        ] {
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            with_q.push(("quantile", q));
            self.sample(name, &with_q, v as f64 / divisor);
        }
        let mut sum_name = String::with_capacity(name.len() + 4);
        sum_name.push_str(name);
        sum_name.push_str("_sum");
        self.sample(&sum_name, labels, snap.sum() as f64 / divisor);
        let mut count_name = String::with_capacity(name.len() + 6);
        count_name.push_str(name);
        count_name.push_str("_count");
        self.sample_u64(&count_name, labels, snap.count());
    }

    /// Finishes and returns the exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn counters_and_gauges_render_with_labels() {
        let mut e = Exposition::new();
        e.family("fsi_requests_total", "counter", "Requests answered.");
        e.sample_u64("fsi_requests_total", &[("kind", "lookup")], 42);
        e.sample_u64("fsi_requests_total", &[], 50);
        e.family("fsi_generation", "gauge", "Live snapshot generation.");
        e.sample("fsi_generation", &[], 3.0);
        let text = e.finish();
        assert_eq!(
            text,
            "# HELP fsi_requests_total Requests answered.\n\
             # TYPE fsi_requests_total counter\n\
             fsi_requests_total{kind=\"lookup\"} 42\n\
             fsi_requests_total 50\n\
             # HELP fsi_generation Live snapshot generation.\n\
             # TYPE fsi_generation gauge\n\
             fsi_generation 3\n"
        );
    }

    #[test]
    fn summaries_expose_quantiles_sum_and_count_in_seconds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1_000); // 1 µs
        }
        h.record(2_000_000_000); // one 2 s outlier
        let mut e = Exposition::new();
        e.family("fsi_latency_seconds", "summary", "Latency.");
        e.summary(
            "fsi_latency_seconds",
            &[("kind", "lookup")],
            &h.snapshot(),
            1e9,
        );
        let text = e.finish();
        // 1 000 ns lands in the [896, 1024) bucket; quantiles answer
        // the bucket's lower bound.
        assert!(
            text.contains("fsi_latency_seconds{kind=\"lookup\",quantile=\"0.5\"} 0.000000896\n"),
            "{text}"
        );
        assert!(text.contains("fsi_latency_seconds{kind=\"lookup\",quantile=\"1\"} 2\n"));
        assert!(text.contains("fsi_latency_seconds_count{kind=\"lookup\"} 100\n"));
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("fsi_latency_seconds_sum"))
            .unwrap();
        let v: f64 = sum_line.split(' ').next_back().unwrap().parse().unwrap();
        assert!((v - 2.000099).abs() < 1e-9, "{sum_line}");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut e = Exposition::new();
        e.sample_u64("m", &[("addr", "a\"b\\c\nd")], 1);
        assert_eq!(e.finish(), "m{addr=\"a\\\"b\\\\c\\nd\"} 1\n");
    }
}
