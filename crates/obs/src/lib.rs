//! # fsi-obs — lock-free telemetry primitives for the serving stack
//!
//! A std-only metrics layer cheap enough to leave on in the lookup hot
//! path:
//!
//! * [`Counter`] / [`Gauge`] — plain atomic cells with release/acquire
//!   publication, so a scraper never observes a derived value before
//!   the value it was derived from.
//! * [`Histogram`] — a fixed-layout log-linear latency histogram
//!   (exact below 16, four sub-buckets per octave above, ≤ 25 %
//!   relative quantile error), mergeable across workers, with p50 /
//!   p95 / p99 and an exactly-tracked max.
//! * [`Registry`] / [`Recorder`] — the per-worker placement pattern:
//!   every worker clone records into its own shard (uncontended
//!   atomics), and a scrape folds all shards into one
//!   [`HistogramSnapshot`] / counter total. Mirrors the per-worker
//!   decision-cache placement in `fsi-cache`.
//! * [`expo`] — a small Prometheus text-exposition writer
//!   (`counter` / `gauge` / `summary` families) used by the
//!   `GET /metrics` endpoint.
//!
//! The crate deliberately knows nothing about the query protocol: wire
//! DTOs embed [`HistogramSnapshot`] (serde-round-trippable, sparse) and
//! higher layers compose the exposition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expo_impl;
mod hist;
mod metrics;
mod registry;

pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::{Recorder, Registry};

/// Prometheus text-exposition writing.
pub mod expo {
    pub use crate::expo_impl::Exposition;
}
