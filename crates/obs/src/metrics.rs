//! Atomic counter and gauge cells.
//!
//! Increments publish with `Release` and reads load with `Acquire` so a
//! scraper that observes a histogram sample also observes the request
//! counter that was bumped before it (the recorder's documented
//! `count-then-record` order); on x86 this costs nothing over relaxed.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Release);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// A last-write-wins instantaneous value (generation, live entries, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Release);
    }

    /// Raises the value to `v` if it is higher than the current one —
    /// the right merge for monotone gauges (snapshot generations) set
    /// concurrently by several workers.
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::AcqRel);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_raises() {
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.raise(3);
        assert_eq!(g.get(), 7, "raise never lowers");
        g.raise(9);
        assert_eq!(g.get(), 9);
        g.set(2);
        assert_eq!(g.get(), 2, "set always overwrites");
    }

    #[test]
    fn counters_are_safe_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
