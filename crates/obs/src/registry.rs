//! The per-worker shard registry behind every always-on recorder.
//!
//! Mirrors the `fsi-cache` per-worker placement: cloning a
//! [`Recorder`] registers a fresh metrics shard built by the
//! registry's factory, each worker records into its own shard with
//! uncontended atomics, and a scrape folds every shard (including
//! those of workers that have since exited — counters are cumulative,
//! so retired shards must keep counting).

use std::sync::{Arc, Mutex};

/// A factory-backed collection of per-worker metrics shards.
pub struct Registry<T> {
    make: Box<dyn Fn() -> T + Send + Sync>,
    shards: Mutex<Vec<Arc<T>>>,
}

impl<T> std::fmt::Debug for Registry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("shards", &self.shard_count())
            .finish_non_exhaustive()
    }
}

impl<T> Registry<T> {
    /// Number of shards registered so far (one per live-or-retired
    /// recorder clone).
    pub fn shard_count(&self) -> usize {
        self.shards.lock().expect("obs registry lock").len()
    }
}

impl<T: Send + Sync + 'static> Registry<T> {
    /// Creates a registry whose shards are built by `make`.
    pub fn new(make: impl Fn() -> T + Send + Sync + 'static) -> Arc<Self> {
        Arc::new(Self {
            make: Box::new(make),
            shards: Mutex::new(Vec::new()),
        })
    }

    /// Builds and registers a fresh shard, returning the recorder
    /// handle that writes to it.
    pub fn recorder(self: &Arc<Self>) -> Recorder<T> {
        let shard = Arc::new((self.make)());
        self.shards
            .lock()
            .expect("obs registry lock")
            .push(Arc::clone(&shard));
        Recorder {
            registry: Arc::clone(self),
            shard,
        }
    }

    /// Folds every shard into an accumulator — the scrape primitive.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &T) -> A) -> A {
        let shards = self.shards.lock().expect("obs registry lock");
        shards.iter().fold(init, |acc, s| f(acc, s))
    }
}

/// A cheap always-on handle recording into its own registry shard.
///
/// `Deref`s to the shard, so `recorder.requests.inc()` reads like a
/// direct metrics call. `Clone` registers a *new* shard — hand one
/// recorder to each worker clone.
pub struct Recorder<T> {
    registry: Arc<Registry<T>>,
    shard: Arc<T>,
}

impl<T> std::fmt::Debug for Recorder<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("registry", &self.registry.shard_count())
            .finish_non_exhaustive()
    }
}

impl<T: Send + Sync + 'static> Recorder<T> {
    /// The shared registry this recorder's shard lives in — scrape
    /// through [`Registry::fold`].
    pub fn registry(&self) -> &Arc<Registry<T>> {
        &self.registry
    }
}

impl<T> std::ops::Deref for Recorder<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.shard
    }
}

impl<T: Send + Sync + 'static> Clone for Recorder<T> {
    /// Registers a fresh shard for the clone (per-worker placement).
    fn clone(&self) -> Self {
        self.registry.recorder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counter;

    #[test]
    fn clones_get_their_own_shards_and_scrapes_fold_all_of_them() {
        let registry = Registry::new(Counter::new);
        let a = registry.recorder();
        let b = a.clone();
        assert_eq!(registry.shard_count(), 2);
        a.inc();
        b.add(2);
        let total = registry.fold(0, |acc, c| acc + c.get());
        assert_eq!(total, 3);
    }

    #[test]
    fn dropped_recorders_keep_their_counts() {
        let registry = Registry::new(Counter::new);
        {
            let r = registry.recorder();
            r.add(7);
        }
        let total = registry.fold(0, |acc, c| acc + c.get());
        assert_eq!(total, 7, "retired worker shards still scrape");
    }

    #[test]
    fn factory_runs_per_shard() {
        let registry = Registry::new(Counter::new);
        let _a = registry.recorder();
        let _b = registry.recorder();
        let _c = _b.clone();
        assert_eq!(registry.shard_count(), 3);
    }
}
