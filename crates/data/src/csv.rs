//! CSV round-tripping for [`SpatialDataset`].
//!
//! The format is self-describing: the header starts with `x,y`, feature
//! columns carry an `f:` prefix and outcome columns an `o:` prefix, e.g.
//!
//! ```text
//! x,y,f:unemployment_pct,...,o:avg_act,o:family_employment_pct
//! ```
//!
//! A real EdGap extract converted to this layout drops straight into the
//! experiment pipeline. The parser supports RFC-4180-style quoting (fields
//! containing commas/quotes/newlines wrapped in `"`, embedded quotes
//! doubled) so exported files from spreadsheet tools load unchanged.

use crate::dataset::SpatialDataset;
use crate::error::DataError;
use fsi_geo::{Grid, Point};
use fsi_ml::Matrix;
use std::io::{BufRead, Write};

/// Writes `dataset` as CSV.
pub fn write_csv<W: Write>(dataset: &SpatialDataset, mut out: W) -> Result<(), DataError> {
    let mut header = vec!["x".to_string(), "y".to_string()];
    header.extend(dataset.feature_names().iter().map(|n| format!("f:{n}")));
    header.extend(dataset.outcome_names().iter().map(|n| format!("o:{n}")));
    writeln!(
        out,
        "{}",
        header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;

    let outcomes: Vec<&[f64]> = dataset
        .outcome_names()
        .iter()
        .map(|n| dataset.outcome(n).expect("outcome names are valid"))
        .collect();
    for i in 0..dataset.len() {
        let p = dataset.locations()[i];
        let mut fields = vec![format_float(p.x), format_float(p.y)];
        fields.extend(dataset.features().row(i).iter().map(|v| format_float(*v)));
        fields.extend(outcomes.iter().map(|col| format_float(col[i])));
        writeln!(out, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Reads a dataset in the [`write_csv`] layout, locating rows on `grid`.
pub fn read_csv<R: BufRead>(reader: R, grid: Grid) -> Result<SpatialDataset, DataError> {
    let mut lines = reader.lines().enumerate();
    let (_, header_line) = lines.next().ok_or(DataError::Csv {
        line: 1,
        message: "empty file".into(),
    })?;
    let header = parse_record(&header_line?, 1)?;
    if header.len() < 2 || header[0] != "x" || header[1] != "y" {
        return Err(DataError::Csv {
            line: 1,
            message: "header must start with x,y".into(),
        });
    }
    let mut feature_names = Vec::new();
    let mut outcome_names = Vec::new();
    let mut kinds = Vec::new(); // true = feature, false = outcome
    for col in &header[2..] {
        if let Some(name) = col.strip_prefix("f:") {
            feature_names.push(name.to_string());
            kinds.push(true);
        } else if let Some(name) = col.strip_prefix("o:") {
            outcome_names.push(name.to_string());
            kinds.push(false);
        } else {
            return Err(DataError::Csv {
                line: 1,
                message: format!("column '{col}' must carry an f: or o: prefix"),
            });
        }
    }

    let mut locations = Vec::new();
    let mut feature_rows: Vec<Vec<f64>> = Vec::new();
    let mut outcome_cols: Vec<Vec<f64>> = vec![Vec::new(); outcome_names.len()];
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_record(&line, line_no)?;
        if record.len() != header.len() {
            return Err(DataError::Csv {
                line: line_no,
                message: format!("expected {} fields, found {}", header.len(), record.len()),
            });
        }
        let parse = |s: &str| -> Result<f64, DataError> {
            s.trim().parse::<f64>().map_err(|_| DataError::Csv {
                line: line_no,
                message: format!("'{s}' is not a number"),
            })
        };
        locations.push(Point::new(parse(&record[0])?, parse(&record[1])?));
        let mut frow = Vec::with_capacity(feature_names.len());
        let mut oi = 0;
        for (value, &is_feature) in record[2..].iter().zip(&kinds) {
            let v = parse(value)?;
            if is_feature {
                frow.push(v);
            } else {
                outcome_cols[oi].push(v);
                oi += 1;
            }
        }
        feature_rows.push(frow);
    }
    if feature_rows.is_empty() {
        return Err(DataError::Csv {
            line: 2,
            message: "no data rows".into(),
        });
    }

    SpatialDataset::new(
        grid,
        feature_names,
        Matrix::from_rows(&feature_rows).map_err(DataError::Ml)?,
        outcome_names,
        outcome_cols,
        locations,
    )
}

/// Formats a float with enough precision to round-trip.
fn format_float(v: f64) -> String {
    // `{:?}` on f64 prints the shortest representation that parses back
    // to the same value.
    format!("{v:?}")
}

/// Quotes a field when it needs quoting.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parses one CSV record with RFC-4180 quoting.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>, DataError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::city::{CityConfig, CityGenerator};
    use fsi_geo::Rect;
    use std::io::BufReader;

    fn sample() -> SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 50,
            grid_side: 8,
            seed: 3,
            ..CityConfig::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let d = sample();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv(BufReader::new(buf.as_slice()), d.grid().clone()).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.feature_names(), d.feature_names());
        assert_eq!(back.outcome_names(), d.outcome_names());
        assert_eq!(back.features(), d.features());
        assert_eq!(
            back.outcome("avg_act").unwrap(),
            d.outcome("avg_act").unwrap()
        );
        assert_eq!(back.cells(), d.cells());
    }

    #[test]
    fn header_must_start_with_xy() {
        let csv = "a,b,f:inc\n1,2,3\n";
        let grid = Grid::new(Rect::unit(), 2, 2).unwrap();
        let err = read_csv(BufReader::new(csv.as_bytes()), grid).unwrap_err();
        assert!(err.to_string().contains("x,y"));
    }

    #[test]
    fn columns_need_prefixes() {
        let csv = "x,y,income\n0.5,0.5,3\n";
        let grid = Grid::new(Rect::unit(), 2, 2).unwrap();
        let err = read_csv(BufReader::new(csv.as_bytes()), grid).unwrap_err();
        assert!(err.to_string().contains("prefix"));
    }

    #[test]
    fn bad_numbers_report_the_line() {
        let csv = "x,y,f:inc\n0.5,0.5,3\n0.5,oops,4\n";
        let grid = Grid::new(Rect::unit(), 2, 2).unwrap();
        match read_csv(BufReader::new(csv.as_bytes()), grid) {
            Err(DataError::Csv { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected csv error, got {other:?}"),
        }
    }

    #[test]
    fn field_count_mismatch_is_detected() {
        let csv = "x,y,f:inc\n0.5,0.5\n";
        let grid = Grid::new(Rect::unit(), 2, 2).unwrap();
        match read_csv(BufReader::new(csv.as_bytes()), grid) {
            Err(DataError::Csv { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("fields"));
            }
            other => panic!("expected csv error, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_and_no_rows_error() {
        let grid = Grid::new(Rect::unit(), 2, 2).unwrap();
        assert!(read_csv(BufReader::new("".as_bytes()), grid.clone()).is_err());
        assert!(read_csv(BufReader::new("x,y,f:a\n".as_bytes()), grid).is_err());
    }

    #[test]
    fn quoted_fields_parse() {
        let rec = parse_record("\"a,b\",\"say \"\"hi\"\"\",plain", 1).unwrap();
        assert_eq!(rec, vec!["a,b", "say \"hi\"", "plain"]);
        assert!(parse_record("\"unterminated", 1).is_err());
    }

    #[test]
    fn quote_escapes_as_needed() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "x,y,f:inc\n0.5,0.5,3\n\n0.25,0.25,4\n";
        let grid = Grid::new(Rect::unit(), 2, 2).unwrap();
        let d = read_csv(BufReader::new(csv.as_bytes()), grid).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn float_format_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-17, 123456.789, -0.0] {
            let s = format_float(v);
            assert_eq!(s.parse::<f64>().unwrap(), v);
        }
    }
}
