//! # fsi-data — datasets for fair spatial indexing
//!
//! The paper evaluates on two EdGap extracts (Los Angeles, 1153 school
//! records; Houston, 966) with five socio-economic features and two outcome
//! variables (average ACT, family employment) joined with NCES school
//! coordinates. That data is not redistributable, so this crate provides:
//!
//! * [`SpatialDataset`] — the columnar dataset
//!   type: features, outcome variables, map locations and base-grid cells.
//! * [`synth`] — a synthetic city generator whose latent *affluence field*
//!   drives spatially correlated socio-economic features, plus latent
//!   spatial outcome effects that are *not* exposed as features. The latter
//!   is what makes per-neighborhood residuals autocorrelated — the exact
//!   phenomenon (Figure 6 of the paper) the index structures mitigate.
//!   Presets [`synth::edgap::los_angeles`] and [`synth::edgap::houston`]
//!   mirror the paper's record counts and schema.
//! * [`csv`] — plain-text round-tripping so real EdGap extracts can be
//!   dropped in unchanged.
//! * [`encode`] — design-matrix assembly: socio-economic features plus the
//!   *neighborhood* attribute under selectable encodings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod encode;
pub mod error;
pub mod synth;

pub use dataset::SpatialDataset;
pub use encode::{build_design_matrix, DesignMatrix, LocationEncoding};
pub use error::DataError;
