//! The columnar spatial dataset type.

use crate::error::DataError;
use fsi_geo::{CellId, Grid, Partition, Point};
use fsi_ml::Matrix;
use serde::{Deserialize, Serialize};

/// A dataset of individuals with socio-economic features, outcome
/// variables, and map locations snapped to a base grid (paper §2.1).
///
/// *Features* are the classifier inputs (excluding location — the location
/// attribute is added by [`crate::encode`] under a chosen encoding).
/// *Outcomes* are raw variables (e.g. average ACT) that are thresholded
/// into binary labels and are **never** fed to the classifier — mirroring
/// the paper's §5.4 pre-processing, which separates them from the training
/// features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpatialDataset {
    feature_names: Vec<String>,
    features: Matrix,
    outcome_names: Vec<String>,
    outcomes: Vec<Vec<f64>>,
    locations: Vec<Point>,
    cells: Vec<CellId>,
    grid: Grid,
}

impl SpatialDataset {
    /// Builds a dataset, validating shapes and locating every individual on
    /// the grid.
    pub fn new(
        grid: Grid,
        feature_names: Vec<String>,
        features: Matrix,
        outcome_names: Vec<String>,
        outcomes: Vec<Vec<f64>>,
        locations: Vec<Point>,
    ) -> Result<Self, DataError> {
        let n = features.rows();
        if feature_names.len() != features.cols() {
            return Err(DataError::LengthMismatch {
                expected: features.cols(),
                got: feature_names.len(),
                what: "feature names".into(),
            });
        }
        if outcome_names.len() != outcomes.len() {
            return Err(DataError::LengthMismatch {
                expected: outcomes.len(),
                got: outcome_names.len(),
                what: "outcome names".into(),
            });
        }
        for (name, col) in outcome_names.iter().zip(&outcomes) {
            if col.len() != n {
                return Err(DataError::LengthMismatch {
                    expected: n,
                    got: col.len(),
                    what: format!("outcome '{name}'"),
                });
            }
        }
        if locations.len() != n {
            return Err(DataError::LengthMismatch {
                expected: n,
                got: locations.len(),
                what: "locations".into(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for name in feature_names.iter().chain(&outcome_names) {
            if !seen.insert(name.clone()) {
                return Err(DataError::DuplicateColumn(name.clone()));
            }
        }
        features.ensure_finite().map_err(DataError::Ml)?;
        let cells = locations
            .iter()
            .map(|p| grid.locate(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            feature_names,
            features,
            outcome_names,
            outcomes,
            locations,
            cells,
            grid,
        })
    }

    /// Number of individuals.
    #[inline]
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// `true` when the dataset has no individuals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The base grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Socio-economic feature matrix (`n × d`, excludes location).
    #[inline]
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Feature column names.
    #[inline]
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Outcome column names.
    #[inline]
    pub fn outcome_names(&self) -> &[String] {
        &self.outcome_names
    }

    /// Map locations.
    #[inline]
    pub fn locations(&self) -> &[Point] {
        &self.locations
    }

    /// Base-grid cell per individual.
    #[inline]
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Raw values of a named outcome column.
    pub fn outcome(&self, name: &str) -> Result<&[f64], DataError> {
        self.outcome_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.outcomes[i].as_slice())
            .ok_or_else(|| DataError::UnknownColumn(name.to_string()))
    }

    /// Binary labels from thresholding an outcome: `value >= threshold`.
    pub fn threshold_labels(&self, outcome: &str, threshold: f64) -> Result<Vec<bool>, DataError> {
        Ok(self
            .outcome(outcome)?
            .iter()
            .map(|&v| v >= threshold)
            .collect())
    }

    /// Region ("neighborhood") of each individual under a partition of the
    /// base grid.
    pub fn regions_under(&self, partition: &Partition) -> Result<Vec<usize>, DataError> {
        self.cells
            .iter()
            .map(|&c| partition.try_region_of(c).map_err(DataError::Geo))
            .collect()
    }

    /// Number of individuals per region under a partition.
    pub fn region_populations(&self, partition: &Partition) -> Result<Vec<usize>, DataError> {
        let mut pop = vec![0usize; partition.num_regions()];
        for &cell in &self.cells {
            pop[partition.try_region_of(cell)?] += 1;
        }
        Ok(pop)
    }

    /// Number of individuals per base-grid cell (the per-cell aggregate the
    /// index builders consume).
    pub fn cell_populations(&self) -> Vec<f64> {
        let mut pop = vec![0.0f64; self.grid.len()];
        for &cell in &self.cells {
            pop[cell] += 1.0;
        }
        pop
    }

    /// Sums `values` (one per individual) into per-cell totals.
    pub fn cell_sums(&self, values: &[f64]) -> Result<Vec<f64>, DataError> {
        if values.len() != self.len() {
            return Err(DataError::LengthMismatch {
                expected: self.len(),
                got: values.len(),
                what: "per-individual values".into(),
            });
        }
        let mut sums = vec![0.0f64; self.grid.len()];
        for (&cell, &v) in self.cells.iter().zip(values) {
            sums[cell] += v;
        }
        Ok(sums)
    }

    /// Sums boolean labels into per-cell totals.
    pub fn cell_label_sums(&self, labels: &[bool]) -> Result<Vec<f64>, DataError> {
        if labels.len() != self.len() {
            return Err(DataError::LengthMismatch {
                expected: self.len(),
                got: labels.len(),
                what: "labels".into(),
            });
        }
        let mut sums = vec![0.0f64; self.grid.len()];
        for (&cell, &y) in self.cells.iter().zip(labels) {
            if y {
                sums[cell] += 1.0;
            }
        }
        Ok(sums)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::Rect;

    fn tiny() -> SpatialDataset {
        let grid = Grid::new(Rect::unit(), 2, 2).unwrap();
        let features =
            Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]).unwrap();
        SpatialDataset::new(
            grid,
            vec!["income".into(), "unemployment".into()],
            features,
            vec!["act".into()],
            vec![vec![20.0, 23.0, 25.0]],
            vec![
                Point::new(0.1, 0.1),
                Point::new(0.9, 0.1),
                Point::new(0.9, 0.9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_locates_cells() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.cells(), &[0, 1, 3]);
    }

    #[test]
    fn shape_validation() {
        let grid = Grid::new(Rect::unit(), 2, 2).unwrap();
        let features = Matrix::from_rows(&[vec![1.0]]).unwrap();
        // Wrong number of feature names.
        assert!(SpatialDataset::new(
            grid.clone(),
            vec!["a".into(), "b".into()],
            features.clone(),
            vec![],
            vec![],
            vec![Point::new(0.5, 0.5)],
        )
        .is_err());
        // Outcome column too short.
        assert!(SpatialDataset::new(
            grid.clone(),
            vec!["a".into()],
            features.clone(),
            vec!["act".into()],
            vec![vec![]],
            vec![Point::new(0.5, 0.5)],
        )
        .is_err());
        // Location outside grid.
        assert!(SpatialDataset::new(
            grid.clone(),
            vec!["a".into()],
            features.clone(),
            vec![],
            vec![],
            vec![Point::new(2.0, 0.5)],
        )
        .is_err());
        // Duplicate column name across features and outcomes.
        assert!(matches!(
            SpatialDataset::new(
                grid,
                vec!["act".into()],
                features,
                vec!["act".into()],
                vec![vec![1.0]],
                vec![Point::new(0.5, 0.5)],
            ),
            Err(DataError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn outcome_lookup_and_thresholding() {
        let d = tiny();
        assert_eq!(d.outcome("act").unwrap(), &[20.0, 23.0, 25.0]);
        assert!(d.outcome("nope").is_err());
        assert_eq!(
            d.threshold_labels("act", 22.0).unwrap(),
            vec![false, true, true]
        );
    }

    #[test]
    fn region_populations_under_partition() {
        let d = tiny();
        let p = Partition::uniform(d.grid(), 1, 2).unwrap(); // west/east halves
        assert_eq!(d.region_populations(&p).unwrap(), vec![1, 2]);
        let regions = d.regions_under(&p).unwrap();
        assert_eq!(regions, vec![0, 1, 1]);
    }

    #[test]
    fn cell_aggregates() {
        let d = tiny();
        assert_eq!(d.cell_populations(), vec![1.0, 1.0, 0.0, 1.0]);
        let sums = d.cell_sums(&[0.5, 0.25, 0.75]).unwrap();
        assert_eq!(sums, vec![0.5, 0.25, 0.0, 0.75]);
        let ls = d.cell_label_sums(&[true, false, true]).unwrap();
        assert_eq!(ls, vec![1.0, 0.0, 0.0, 1.0]);
        assert!(d.cell_sums(&[1.0]).is_err());
        assert!(d.cell_label_sums(&[true]).is_err());
    }
}
