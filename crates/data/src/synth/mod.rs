//! Synthetic city generation.
//!
//! See [`field`] for the spatial scalar fields, [`city`] for the generator,
//! and [`edgap`] for the Los Angeles / Houston presets that mirror the
//! paper's datasets.

pub mod city;
pub mod edgap;
pub mod field;

pub use city::{CityConfig, CityGenerator};
pub use field::{LinearGradient, RadialKernel, ScalarField, SumField, ValueNoise};
