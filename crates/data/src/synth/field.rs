//! Smooth scalar fields over the map.
//!
//! The generator models a city's socio-economic geography as a latent
//! *affluence* surface: a sum of signed Gaussian bumps (wealthy cores,
//! struggling corridors), a coarse linear gradient, and band-limited value
//! noise. The same machinery produces the *latent outcome fields* that are
//! deliberately withheld from the feature set — they are what give model
//! residuals their spatial autocorrelation.

use fsi_geo::{Point, Rect};
use fsi_ml::rand_util::{rng_from_seed, SeededRng};
use rand::RngExt;

/// A deterministic scalar field over map coordinates.
pub trait ScalarField {
    /// Field value at a point.
    fn value(&self, p: &Point) -> f64;
}

/// A signed Gaussian bump: `amplitude · exp(−‖p − center‖² / (2·radius²))`.
#[derive(Debug, Clone)]
pub struct RadialKernel {
    /// Bump center.
    pub center: Point,
    /// Signed peak value.
    pub amplitude: f64,
    /// Length scale.
    pub radius: f64,
}

impl ScalarField for RadialKernel {
    fn value(&self, p: &Point) -> f64 {
        let d2 = p.distance_sq(&self.center);
        self.amplitude * (-d2 / (2.0 * self.radius * self.radius)).exp()
    }
}

/// A linear trend `ax + by + c`.
#[derive(Debug, Clone)]
pub struct LinearGradient {
    /// Coefficient on `x`.
    pub a: f64,
    /// Coefficient on `y`.
    pub b: f64,
    /// Offset.
    pub c: f64,
}

impl ScalarField for LinearGradient {
    fn value(&self, p: &Point) -> f64 {
        self.a * p.x + self.b * p.y + self.c
    }
}

/// Band-limited value noise: random values on a coarse lattice, smoothly
/// interpolated (bilinear with smoothstep easing). Deterministic in the
/// seed; values lie in `[-amplitude, amplitude]`.
#[derive(Debug, Clone)]
pub struct ValueNoise {
    lattice: Vec<f64>,
    side: usize,
    bounds: Rect,
    amplitude: f64,
}

impl ValueNoise {
    /// Creates noise on a `side × side` lattice over `bounds`.
    pub fn new(seed: u64, side: usize, bounds: Rect, amplitude: f64) -> Self {
        let side = side.max(2);
        let mut rng: SeededRng = rng_from_seed(seed);
        let lattice = (0..side * side)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        Self {
            lattice,
            side,
            bounds,
            amplitude,
        }
    }

    #[inline]
    fn smoothstep(t: f64) -> f64 {
        t * t * (3.0 - 2.0 * t)
    }

    #[inline]
    fn at(&self, ix: usize, iy: usize) -> f64 {
        self.lattice[iy * self.side + ix]
    }
}

impl ScalarField for ValueNoise {
    fn value(&self, p: &Point) -> f64 {
        // Map into lattice coordinates, clamped to the boundary.
        let fx = ((p.x - self.bounds.min_x) / self.bounds.width()).clamp(0.0, 1.0)
            * (self.side - 1) as f64;
        let fy = ((p.y - self.bounds.min_y) / self.bounds.height()).clamp(0.0, 1.0)
            * (self.side - 1) as f64;
        let ix = (fx as usize).min(self.side - 2);
        let iy = (fy as usize).min(self.side - 2);
        let tx = Self::smoothstep(fx - ix as f64);
        let ty = Self::smoothstep(fy - iy as f64);
        let v00 = self.at(ix, iy);
        let v10 = self.at(ix + 1, iy);
        let v01 = self.at(ix, iy + 1);
        let v11 = self.at(ix + 1, iy + 1);
        let v0 = v00 + (v10 - v00) * tx;
        let v1 = v01 + (v11 - v01) * tx;
        self.amplitude * (v0 + (v1 - v0) * ty)
    }
}

/// Sum of component fields.
pub struct SumField {
    components: Vec<Box<dyn ScalarField + Send + Sync>>,
}

impl SumField {
    /// Creates an empty sum (value 0 everywhere).
    pub fn new() -> Self {
        Self {
            components: Vec::new(),
        }
    }

    /// Adds a component field.
    pub fn with(mut self, field: impl ScalarField + Send + Sync + 'static) -> Self {
        self.components.push(Box::new(field));
        self
    }

    /// Number of component fields.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when there are no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl Default for SumField {
    fn default() -> Self {
        Self::new()
    }
}

impl ScalarField for SumField {
    fn value(&self, p: &Point) -> f64 {
        self.components.iter().map(|f| f.value(p)).sum()
    }
}

/// Evaluates `field` at `points` and standardizes the sample to zero mean
/// and unit variance (constant fields come back as all zeros). The synth
/// pipeline standardizes every latent surface so feature equations can use
/// interpretable coefficients.
pub fn standardized_values(field: &dyn ScalarField, points: &[Point]) -> Vec<f64> {
    let raw: Vec<f64> = points.iter().map(|p| field.value(p)).collect();
    let n = raw.len() as f64;
    if raw.is_empty() {
        return raw;
    }
    let mean = raw.iter().sum::<f64>() / n;
    let var = raw.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std < 1e-12 {
        return vec![0.0; raw.len()];
    }
    raw.into_iter().map(|v| (v - mean) / std).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radial_kernel_peaks_at_center_and_decays() {
        let k = RadialKernel {
            center: Point::new(0.5, 0.5),
            amplitude: 2.0,
            radius: 0.1,
        };
        assert!((k.value(&Point::new(0.5, 0.5)) - 2.0).abs() < 1e-12);
        let near = k.value(&Point::new(0.55, 0.5));
        let far = k.value(&Point::new(0.9, 0.5));
        assert!(near < 2.0 && near > far && far >= 0.0);
    }

    #[test]
    fn negative_amplitude_makes_a_sink() {
        let k = RadialKernel {
            center: Point::new(0.0, 0.0),
            amplitude: -1.0,
            radius: 0.2,
        };
        assert!(k.value(&Point::new(0.0, 0.0)) < -0.99);
    }

    #[test]
    fn gradient_is_linear() {
        let g = LinearGradient {
            a: 2.0,
            b: -1.0,
            c: 0.5,
        };
        assert_eq!(g.value(&Point::new(1.0, 1.0)), 1.5);
        assert_eq!(g.value(&Point::new(0.0, 0.0)), 0.5);
    }

    #[test]
    fn value_noise_is_deterministic_and_bounded() {
        let n1 = ValueNoise::new(9, 8, Rect::unit(), 1.5);
        let n2 = ValueNoise::new(9, 8, Rect::unit(), 1.5);
        for i in 0..50 {
            let p = Point::new((i as f64 * 0.37).fract(), (i as f64 * 0.61).fract());
            let v = n1.value(&p);
            assert_eq!(v, n2.value(&p));
            assert!(v.abs() <= 1.5 + 1e-12);
        }
    }

    #[test]
    fn value_noise_differs_across_seeds() {
        let a = ValueNoise::new(1, 8, Rect::unit(), 1.0);
        let b = ValueNoise::new(2, 8, Rect::unit(), 1.0);
        let p = Point::new(0.33, 0.77);
        assert_ne!(a.value(&p), b.value(&p));
    }

    #[test]
    fn value_noise_is_continuous() {
        let n = ValueNoise::new(4, 6, Rect::unit(), 1.0);
        // Tiny steps should produce tiny value changes.
        let mut prev = n.value(&Point::new(0.0, 0.4));
        let mut x: f64 = 0.0;
        while x < 1.0 {
            x += 1e-3;
            let v = n.value(&Point::new(x.min(1.0), 0.4));
            assert!((v - prev).abs() < 0.05, "jump at x={x}");
            prev = v;
        }
    }

    #[test]
    fn sum_field_adds_components() {
        let s = SumField::new()
            .with(LinearGradient {
                a: 1.0,
                b: 0.0,
                c: 0.0,
            })
            .with(LinearGradient {
                a: 0.0,
                b: 1.0,
                c: 1.0,
            });
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(&Point::new(0.25, 0.5)), 1.75);
        assert_eq!(SumField::new().value(&Point::new(0.5, 0.5)), 0.0);
    }

    #[test]
    fn standardization_yields_unit_moments() {
        let g = LinearGradient {
            a: 3.0,
            b: 0.0,
            c: 10.0,
        };
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new(i as f64 / 100.0, 0.0))
            .collect();
        let vals = standardized_values(&g, &points);
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let var: f64 = vals.iter().map(|v| v * v).sum::<f64>() / vals.len() as f64 - mean * mean;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standardization_of_constant_field_is_zero() {
        let g = LinearGradient {
            a: 0.0,
            b: 0.0,
            c: 5.0,
        };
        let points = vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)];
        assert_eq!(standardized_values(&g, &points), vec![0.0, 0.0]);
    }
}
