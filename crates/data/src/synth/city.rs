//! The synthetic city generator.
//!
//! Individuals (schools in the EdGap framing) are placed in Gaussian
//! clusters around urban cores. A latent standardized *affluence* surface
//! `A` drives all five socio-economic features with feature-specific noise.
//! Outcome variables depend on `A` **plus latent spatial effects that are
//! not exposed as features** — the model therefore cannot fully explain
//! outcomes from the feature set, its residuals are spatially
//! autocorrelated, and per-neighborhood mis-calibration (paper Figure 6)
//! emerges on exactly the same code paths real data would exercise.

use crate::dataset::SpatialDataset;
use crate::error::DataError;
use crate::synth::field::{
    standardized_values, LinearGradient, RadialKernel, SumField, ValueNoise,
};
use fsi_geo::{Grid, Point, Rect};
use fsi_ml::rand_util::{normal, rng_from_seed, SeededRng};
use fsi_ml::Matrix;
use rand::RngExt;

/// The five EdGap socio-economic feature names, in column order.
pub const FEATURE_NAMES: [&str; 5] = [
    "unemployment_pct",
    "college_degree_pct",
    "marriage_pct",
    "median_income_k",
    "reduced_lunch_pct",
];

/// Outcome column driving the primary classification task (threshold 22 in
/// the paper).
pub const OUTCOME_ACT: &str = "avg_act";
/// Outcome column driving the secondary task (threshold 10 in the paper).
pub const OUTCOME_EMPLOYMENT: &str = "family_employment_pct";

/// Configuration of a synthetic city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Human-readable name ("Los Angeles", ...).
    pub name: String,
    /// Master seed; every derived surface/noise stream is seeded from it.
    pub seed: u64,
    /// Number of individuals (schools).
    pub n_individuals: usize,
    /// Number of urban clusters.
    pub n_clusters: usize,
    /// Standard deviation of locations around their cluster center.
    pub cluster_std: f64,
    /// Base-grid resolution (`grid_side × grid_side`).
    pub grid_side: usize,
    /// Number of signed affluence kernels.
    pub n_affluence_kernels: usize,
    /// Amplitude of the value-noise component of the affluence surface.
    pub affluence_noise_amp: f64,
    /// Strength of the hidden spatial effect on the ACT outcome, in
    /// standard deviations. Zero removes spatial residual correlation.
    pub latent_strength_act: f64,
    /// Strength of the hidden spatial effect on the employment outcome.
    pub latent_strength_employment: f64,
    /// Multiplier on all per-feature observation noise.
    pub feature_noise: f64,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            name: "Synthetic City".into(),
            seed: 1,
            n_individuals: 1000,
            n_clusters: 6,
            cluster_std: 0.10,
            grid_side: 64,
            n_affluence_kernels: 8,
            affluence_noise_amp: 0.6,
            latent_strength_act: 1.6,
            latent_strength_employment: 1.4,
            feature_noise: 1.0,
        }
    }
}

impl CityConfig {
    fn validate(&self) -> Result<(), DataError> {
        if self.n_individuals == 0 {
            return Err(DataError::InvalidConfig(
                "n_individuals must be positive".into(),
            ));
        }
        if self.n_clusters == 0 {
            return Err(DataError::InvalidConfig(
                "n_clusters must be positive".into(),
            ));
        }
        if self.grid_side < 2 {
            return Err(DataError::InvalidConfig(
                "grid_side must be at least 2".into(),
            ));
        }
        if !(self.cluster_std > 0.0 && self.cluster_std.is_finite()) {
            return Err(DataError::InvalidConfig(
                "cluster_std must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Generates [`SpatialDataset`]s from a [`CityConfig`].
#[derive(Debug, Clone)]
pub struct CityGenerator {
    config: CityConfig,
}

impl CityGenerator {
    /// Creates a generator after validating the configuration.
    pub fn new(config: CityConfig) -> Result<Self, DataError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &CityConfig {
        &self.config
    }

    /// Samples cluster centers away from the map edge.
    fn cluster_centers(&self, rng: &mut SeededRng) -> Vec<Point> {
        (0..self.config.n_clusters)
            .map(|_| Point::new(rng.random_range(0.15..0.85), rng.random_range(0.15..0.85)))
            .collect()
    }

    /// Samples individual locations: cluster choice by weight, Gaussian
    /// offset, clamped into the open unit square.
    fn locations(&self, rng: &mut SeededRng, centers: &[Point]) -> Vec<Point> {
        let weights: Vec<f64> = (0..centers.len())
            .map(|_| rng.random_range(0.5..1.5))
            .collect();
        let total: f64 = weights.iter().sum();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total;
                Some(*acc)
            })
            .collect();
        (0..self.config.n_individuals)
            .map(|_| {
                let u: f64 = rng.random();
                let k = cumulative.iter().position(|&c| u <= c).unwrap_or(0);
                let x = normal(rng, centers[k].x, self.config.cluster_std);
                let y = normal(rng, centers[k].y, self.config.cluster_std);
                Point::new(x.clamp(0.001, 0.999), y.clamp(0.001, 0.999))
            })
            .collect()
    }

    /// Builds the latent affluence surface.
    fn affluence_field(&self, rng: &mut SeededRng, centers: &[Point]) -> SumField {
        let mut field = SumField::new();
        for i in 0..self.config.n_affluence_kernels {
            // Anchor kernels near urban clusters (with jitter) so affluence
            // structure tracks where people actually are.
            let anchor = centers[i % centers.len()];
            let center = Point::new(
                (anchor.x + rng.random_range(-0.15..0.15)).clamp(0.0, 1.0),
                (anchor.y + rng.random_range(-0.15..0.15)).clamp(0.0, 1.0),
            );
            let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            field = field.with(RadialKernel {
                center,
                amplitude: sign * rng.random_range(0.6..1.4),
                radius: rng.random_range(0.10..0.30),
            });
        }
        field = field.with(LinearGradient {
            a: rng.random_range(-0.5..0.5),
            b: rng.random_range(-0.5..0.5),
            c: 0.0,
        });
        field = field.with(ValueNoise::new(
            self.config.seed.wrapping_add(101),
            10,
            Rect::unit(),
            self.config.affluence_noise_amp,
        ));
        field
    }

    /// Builds a latent outcome surface (distinct per task).
    fn latent_field(&self, stream: u64, rng: &mut SeededRng, centers: &[Point]) -> SumField {
        let mut field = SumField::new().with(ValueNoise::new(
            self.config.seed.wrapping_add(stream),
            7,
            Rect::unit(),
            1.0,
        ));
        // A few task-specific hotspots, again anchored to the city.
        for _ in 0..3 {
            let anchor = centers[rng.random_range(0..centers.len())];
            field = field.with(RadialKernel {
                center: Point::new(
                    (anchor.x + rng.random_range(-0.2..0.2)).clamp(0.0, 1.0),
                    (anchor.y + rng.random_range(-0.2..0.2)).clamp(0.0, 1.0),
                ),
                amplitude: rng.random_range(-1.0..1.0),
                radius: rng.random_range(0.08..0.20),
            });
        }
        field
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Result<SpatialDataset, DataError> {
        let cfg = &self.config;
        let mut rng = rng_from_seed(cfg.seed);
        let centers = self.cluster_centers(&mut rng);
        let locations = self.locations(&mut rng, &centers);

        let affluence_field = self.affluence_field(&mut rng, &centers);
        let latent_act_field = self.latent_field(211, &mut rng, &centers);
        let latent_emp_field = self.latent_field(307, &mut rng, &centers);

        let a = standardized_values(&affluence_field, &locations);
        let eta_act = standardized_values(&latent_act_field, &locations);
        let eta_emp = standardized_values(&latent_emp_field, &locations);

        let fnoise = cfg.feature_noise;
        let n = cfg.n_individuals;
        let mut rows = Vec::with_capacity(n);
        let mut act = Vec::with_capacity(n);
        let mut emp = Vec::with_capacity(n);
        for i in 0..n {
            let ai = a[i];
            let unemployment =
                (7.5 - 3.5 * ai + normal(&mut rng, 0.0, 1.6 * fnoise)).clamp(0.5, 35.0);
            let college = (36.0 + 17.0 * ai + normal(&mut rng, 0.0, 6.0 * fnoise)).clamp(2.0, 95.0);
            let marriage =
                (52.0 + 9.0 * ai + normal(&mut rng, 0.0, 7.0 * fnoise)).clamp(10.0, 92.0);
            let income =
                (62.0 + 24.0 * ai + normal(&mut rng, 0.0, 6.0 * fnoise)).clamp(12.0, 250.0);
            let lunch = (45.0 - 21.0 * ai + normal(&mut rng, 0.0, 8.0 * fnoise)).clamp(1.0, 99.0);
            rows.push(vec![unemployment, college, marriage, income, lunch]);

            act.push(
                (21.3
                    + 2.3 * ai
                    + cfg.latent_strength_act * eta_act[i]
                    + normal(&mut rng, 0.0, 0.9))
                .clamp(10.0, 36.0),
            );
            emp.push(
                (10.5
                    + 2.2 * ai
                    + cfg.latent_strength_employment * eta_emp[i]
                    + normal(&mut rng, 0.0, 0.8))
                .clamp(0.0, 60.0),
            );
        }

        let grid = Grid::new(Rect::unit(), cfg.grid_side, cfg.grid_side)?;
        SpatialDataset::new(
            grid,
            FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
            Matrix::from_rows(&rows).map_err(DataError::Ml)?,
            vec![OUTCOME_ACT.into(), OUTCOME_EMPLOYMENT.into()],
            vec![act, emp],
            locations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CityConfig {
        CityConfig {
            n_individuals: 300,
            grid_side: 16,
            seed: 42,
            ..CityConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        let mut c = small_config();
        c.n_individuals = 0;
        assert!(CityGenerator::new(c).is_err());
        let mut c = small_config();
        c.n_clusters = 0;
        assert!(CityGenerator::new(c).is_err());
        let mut c = small_config();
        c.grid_side = 1;
        assert!(CityGenerator::new(c).is_err());
        let mut c = small_config();
        c.cluster_std = 0.0;
        assert!(CityGenerator::new(c).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = CityGenerator::new(small_config()).unwrap();
        let a = gen.generate().unwrap();
        let b = gen.generate().unwrap();
        assert_eq!(a.features(), b.features());
        assert_eq!(
            a.outcome(OUTCOME_ACT).unwrap(),
            b.outcome(OUTCOME_ACT).unwrap()
        );
        assert_eq!(a.cells(), b.cells());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_config();
        let a = CityGenerator::new(cfg.clone()).unwrap().generate().unwrap();
        cfg.seed = 43;
        let b = CityGenerator::new(cfg).unwrap().generate().unwrap();
        assert_ne!(a.features(), b.features());
    }

    #[test]
    fn shapes_and_ranges() {
        let d = CityGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        assert_eq!(d.len(), 300);
        assert_eq!(d.feature_names().len(), 5);
        assert_eq!(d.features().cols(), 5);
        for i in 0..d.len() {
            let row = d.features().row(i);
            assert!((0.5..=35.0).contains(&row[0]), "unemployment {}", row[0]);
            assert!((2.0..=95.0).contains(&row[1]));
            assert!((10.0..=92.0).contains(&row[2]));
            assert!((12.0..=250.0).contains(&row[3]));
            assert!((1.0..=99.0).contains(&row[4]));
        }
        let act = d.outcome(OUTCOME_ACT).unwrap();
        assert!(act.iter().all(|v| (10.0..=36.0).contains(v)));
    }

    #[test]
    fn act_threshold_gives_a_non_degenerate_task() {
        let d = CityGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        let labels = d.threshold_labels(OUTCOME_ACT, 22.0).unwrap();
        let pos = labels.iter().filter(|&&b| b).count() as f64 / labels.len() as f64;
        assert!((0.15..=0.85).contains(&pos), "positive rate {pos}");
        let labels = d.threshold_labels(OUTCOME_EMPLOYMENT, 10.0).unwrap();
        let pos = labels.iter().filter(|&&b| b).count() as f64 / labels.len() as f64;
        assert!(
            (0.15..=0.85).contains(&pos),
            "employment positive rate {pos}"
        );
    }

    #[test]
    fn features_correlate_with_affluence_signal() {
        // Income and college degree should be positively correlated;
        // income and reduced lunch negatively.
        let d = CityGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        let income = d.features().column(3);
        let college = d.features().column(1);
        let lunch = d.features().column(4);
        let corr = |a: &[f64], b: &[f64]| {
            let n = a.len() as f64;
            let ma = a.iter().sum::<f64>() / n;
            let mb = b.iter().sum::<f64>() / n;
            let cov: f64 = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - ma) * (y - mb))
                .sum::<f64>()
                / n;
            let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n;
            let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n;
            cov / (va.sqrt() * vb.sqrt())
        };
        assert!(corr(&income, &college) > 0.4);
        assert!(corr(&income, &lunch) < -0.4);
    }

    #[test]
    fn locations_cluster_rather_than_spread_uniformly() {
        // With few clusters and small std, the occupied-cell fraction
        // should be well below uniform coverage.
        let d = CityGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        let occupied = d.cell_populations().iter().filter(|&&c| c > 0.0).count() as f64;
        let frac = occupied / d.grid().len() as f64;
        assert!(frac < 0.75, "occupied fraction {frac}");
    }
}
