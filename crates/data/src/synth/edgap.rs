//! EdGap-like presets mirroring the paper's two evaluation datasets.
//!
//! The paper (§5.1) uses EdGap socio-economic records of US high-school
//! students: 1153 records for Los Angeles, CA and 966 for Houston, TX.
//! These presets reproduce the record counts, feature schema, outcome
//! variables and thresholds. The urban geometry differs per preset (more,
//! tighter clusters for LA's polycentric sprawl; fewer, looser ones for
//! Houston) so the two "cities" exercise genuinely different spatial
//! distributions, as the paper's two datasets do.

use crate::dataset::SpatialDataset;
use crate::error::DataError;
use crate::synth::city::{CityConfig, CityGenerator};
use fsi_geo::Point;
use fsi_ml::rand_util::rng_from_seed;
use rand::RngExt;

/// The paper's ACT label threshold (§5.2): label = `avg_act >= 22`.
pub const ACT_THRESHOLD: f64 = 22.0;
/// The paper's family-employment label threshold (§5.4): `>= 10` percent.
pub const EMPLOYMENT_THRESHOLD: f64 = 10.0;

/// Configuration for the Los Angeles preset (1153 records).
pub fn los_angeles() -> CityConfig {
    CityConfig {
        name: "Los Angeles".into(),
        seed: 0x1A_2302,
        n_individuals: 1153,
        n_clusters: 7,
        cluster_std: 0.09,
        grid_side: 64,
        n_affluence_kernels: 9,
        affluence_noise_amp: 0.6,
        latent_strength_act: 1.6,
        latent_strength_employment: 1.4,
        feature_noise: 1.0,
    }
}

/// Configuration for the Houston preset (966 records).
pub fn houston() -> CityConfig {
    CityConfig {
        name: "Houston".into(),
        seed: 0x40_2306,
        n_individuals: 966,
        n_clusters: 5,
        cluster_std: 0.12,
        grid_side: 64,
        n_affluence_kernels: 7,
        affluence_noise_amp: 0.7,
        latent_strength_act: 1.7,
        latent_strength_employment: 1.5,
        feature_noise: 1.0,
    }
}

/// Generates the Los Angeles dataset.
pub fn generate_los_angeles() -> Result<SpatialDataset, DataError> {
    CityGenerator::new(los_angeles())?.generate()
}

/// Generates the Houston dataset.
pub fn generate_houston() -> Result<SpatialDataset, DataError> {
    CityGenerator::new(houston())?.generate()
}

/// Samples `k` zip-code seed points at the locations of randomly chosen
/// individuals, so the Voronoi "zip codes" are population-weighted: dense
/// areas get many small zips, sparse areas few large ones — the property
/// real zip codes have.
pub fn sample_zip_seeds(dataset: &SpatialDataset, k: usize, seed: u64) -> Vec<Point> {
    let mut rng = rng_from_seed(seed);
    let n = dataset.len();
    (0..k.max(1))
        .map(|_| dataset.locations()[rng.random_range(0..n)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_record_counts() {
        let la = generate_los_angeles().unwrap();
        assert_eq!(la.len(), 1153);
        let hou = generate_houston().unwrap();
        assert_eq!(hou.len(), 966);
    }

    #[test]
    fn presets_have_the_edgap_schema() {
        let la = generate_los_angeles().unwrap();
        assert_eq!(
            la.feature_names(),
            &[
                "unemployment_pct",
                "college_degree_pct",
                "marriage_pct",
                "median_income_k",
                "reduced_lunch_pct"
            ]
        );
        assert_eq!(la.outcome_names(), &["avg_act", "family_employment_pct"]);
    }

    #[test]
    fn cities_differ() {
        let la = generate_los_angeles().unwrap();
        let hou = generate_houston().unwrap();
        assert_ne!(la.len(), hou.len());
        assert_ne!(
            la.features().row(0),
            hou.features().row(0),
            "different seeds must give different data"
        );
    }

    #[test]
    fn both_tasks_are_learnable_splits() {
        for d in [generate_los_angeles().unwrap(), generate_houston().unwrap()] {
            for (outcome, threshold) in [
                ("avg_act", ACT_THRESHOLD),
                ("family_employment_pct", EMPLOYMENT_THRESHOLD),
            ] {
                let labels = d.threshold_labels(outcome, threshold).unwrap();
                let pos = labels.iter().filter(|&&b| b).count();
                assert!(pos > d.len() / 10, "{outcome}: too few positives");
                assert!(pos < d.len() * 9 / 10, "{outcome}: too few negatives");
            }
        }
    }

    #[test]
    fn zip_seeds_are_at_individual_locations() {
        let la = generate_los_angeles().unwrap();
        let seeds = sample_zip_seeds(&la, 30, 5);
        assert_eq!(seeds.len(), 30);
        for s in &seeds {
            assert!(la.locations().iter().any(|p| p == s));
        }
        // Deterministic.
        assert_eq!(seeds, sample_zip_seeds(&la, 30, 5));
    }
}
