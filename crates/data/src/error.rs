//! Error type for dataset construction, generation and I/O.
//!
//! Part of the workspace error hierarchy: each crate keeps a focused
//! enum, and the `fsi` facade unifies them all under `fsi::FsiError`
//! (with source-chaining back to this type). Application code should
//! match on `FsiError`; match here only when using this crate directly.

use fsi_geo::GeoError;
use fsi_ml::MlError;
use std::fmt;

/// Errors produced while building, generating or (de)serializing datasets.
#[derive(Debug)]
pub enum DataError {
    /// A geometry operation failed (e.g. a location outside the grid).
    Geo(GeoError),
    /// A matrix/validation operation failed.
    Ml(MlError),
    /// Column lengths disagree.
    LengthMismatch {
        /// What was expected.
        expected: usize,
        /// What was received.
        got: usize,
        /// Which column disagreed.
        what: String,
    },
    /// A named outcome or feature does not exist.
    UnknownColumn(String),
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// CSV parsing failed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// An I/O error during CSV read/write.
    Io(std::io::Error),
    /// A generator configuration value is out of range.
    InvalidConfig(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Geo(e) => write!(f, "geometry error: {e}"),
            DataError::Ml(e) => write!(f, "ml error: {e}"),
            DataError::LengthMismatch {
                expected,
                got,
                what,
            } => write!(f, "{what}: expected length {expected}, got {got}"),
            DataError::UnknownColumn(name) => write!(f, "unknown column '{name}'"),
            DataError::DuplicateColumn(name) => write!(f, "duplicate column '{name}'"),
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::InvalidConfig(msg) => write!(f, "invalid generator config: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Geo(e) => Some(e),
            DataError::Ml(e) => Some(e),
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeoError> for DataError {
    fn from(e: GeoError) -> Self {
        DataError::Geo(e)
    }
}

impl From<MlError> for DataError {
    fn from(e: MlError) -> Self {
        DataError::Ml(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_detail() {
        let e: DataError = GeoError::NoSeeds.into();
        assert!(e.to_string().contains("seed"));
        let e: DataError = MlError::EmptyDataset.into();
        assert!(e.to_string().contains("sample"));
    }

    #[test]
    fn csv_error_reports_line() {
        let e = DataError::Csv {
            line: 12,
            message: "bad number".into(),
        };
        assert!(e.to_string().contains("12"));
    }
}
