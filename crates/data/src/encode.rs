//! Design-matrix assembly: socio-economic features plus the neighborhood
//! attribute.
//!
//! The paper feeds "the neighborhood" of each individual to the classifier
//! alongside the other features, and *updates* that attribute whenever the
//! map is re-districted (Algorithm 1, step 3). A raw region identifier is
//! not numerically meaningful to logistic regression or naive Bayes, so
//! the encoding is selectable:
//!
//! * [`LocationEncoding::CentroidXY`] *(default)* — two columns holding the
//!   individual's region centroid, normalized into `[0, 1]`. Compact,
//!   smooth, works for every model; granularity still grows with tree
//!   height because centroids move with the leaves.
//! * [`LocationEncoding::OneHot`] — one indicator column per region; the
//!   closest to "categorical neighborhood id" semantics.
//! * [`LocationEncoding::CellIndex`] — the literal reading: the region id
//!   as a single numeric column (meaningful for trees, crude for linear
//!   models). Kept for the ablation study.

use crate::dataset::SpatialDataset;
use crate::error::DataError;
use fsi_geo::Partition;
use fsi_ml::Matrix;
use serde::{Deserialize, Serialize};

/// How the neighborhood attribute is encoded into classifier columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LocationEncoding {
    /// Region centroid as two normalized coordinates.
    #[default]
    CentroidXY,
    /// One indicator column per region.
    OneHot,
    /// The region id as one numeric column.
    CellIndex,
}

/// A design matrix with provenance: which columns are the base features and
/// which encode the neighborhood.
#[derive(Debug, Clone)]
pub struct DesignMatrix {
    /// The assembled `n × (d + loc)` matrix.
    pub matrix: Matrix,
    /// Column names, aligned with the matrix.
    pub column_names: Vec<String>,
    /// Range of columns holding the neighborhood encoding.
    pub location_columns: std::ops::Range<usize>,
}

impl DesignMatrix {
    /// Sums a per-column vector (e.g. feature importances) into base-feature
    /// values plus one aggregated "neighborhood" value — the row layout of
    /// the paper's Figure 9 heatmaps.
    pub fn aggregate_location(&self, per_column: &[f64]) -> Result<Vec<f64>, DataError> {
        if per_column.len() != self.matrix.cols() {
            return Err(DataError::LengthMismatch {
                expected: self.matrix.cols(),
                got: per_column.len(),
                what: "per-column vector".into(),
            });
        }
        let mut out: Vec<f64> = per_column[..self.location_columns.start].to_vec();
        out.push(per_column[self.location_columns.clone()].iter().sum());
        Ok(out)
    }
}

/// Builds the design matrix for `dataset` under `partition` with the given
/// neighborhood encoding. Base features come first, location columns last.
pub fn build_design_matrix(
    dataset: &SpatialDataset,
    partition: &Partition,
    encoding: LocationEncoding,
) -> Result<DesignMatrix, DataError> {
    let regions = dataset.regions_under(partition)?;
    let n = dataset.len();
    let mut column_names: Vec<String> = dataset.feature_names().to_vec();
    let base_cols = column_names.len();

    let location = match encoding {
        LocationEncoding::CentroidXY => {
            let centroids = partition.region_centroids(dataset.grid())?;
            let b = dataset.grid().bounds();
            let mut m = Matrix::zeros(n, 2);
            for (i, &r) in regions.iter().enumerate() {
                let c = centroids[r];
                m.set(i, 0, (c.x - b.min_x) / b.width());
                m.set(i, 1, (c.y - b.min_y) / b.height());
            }
            column_names.push("neighborhood_x".into());
            column_names.push("neighborhood_y".into());
            m
        }
        LocationEncoding::OneHot => {
            let k = partition.num_regions();
            let mut m = Matrix::zeros(n, k);
            for (i, &r) in regions.iter().enumerate() {
                m.set(i, r, 1.0);
            }
            for r in 0..k {
                column_names.push(format!("neighborhood_{r}"));
            }
            m
        }
        LocationEncoding::CellIndex => {
            let mut m = Matrix::zeros(n, 1);
            for (i, &r) in regions.iter().enumerate() {
                m.set(i, 0, r as f64);
            }
            column_names.push("neighborhood_id".into());
            m
        }
    };

    let matrix = dataset
        .features()
        .hstack(&location)
        .map_err(DataError::Ml)?;
    Ok(DesignMatrix {
        matrix,
        column_names,
        location_columns: base_cols..base_cols + location.cols(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::{Grid, Point, Rect};

    fn tiny() -> SpatialDataset {
        let grid = Grid::new(Rect::unit(), 2, 2).unwrap();
        SpatialDataset::new(
            grid,
            vec!["income".into()],
            Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap(),
            vec![],
            vec![],
            vec![
                Point::new(0.1, 0.1),
                Point::new(0.9, 0.1),
                Point::new(0.9, 0.9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn centroid_encoding_shapes() {
        let d = tiny();
        let p = Partition::uniform(d.grid(), 1, 2).unwrap();
        let dm = build_design_matrix(&d, &p, LocationEncoding::CentroidXY).unwrap();
        assert_eq!(dm.matrix.cols(), 3);
        assert_eq!(dm.location_columns, 1..3);
        assert_eq!(
            dm.column_names,
            vec!["income", "neighborhood_x", "neighborhood_y"]
        );
        // Individual 0 is in the west half: centroid x = 0.25.
        assert!((dm.matrix.get(0, 1) - 0.25).abs() < 1e-12);
        assert!((dm.matrix.get(1, 1) - 0.75).abs() < 1e-12);
        // y centroid of a full-height region is 0.5.
        assert!((dm.matrix.get(0, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn one_hot_encoding_rows_sum_to_one() {
        let d = tiny();
        let p = Partition::uniform(d.grid(), 2, 2).unwrap();
        let dm = build_design_matrix(&d, &p, LocationEncoding::OneHot).unwrap();
        assert_eq!(dm.matrix.cols(), 1 + 4);
        for i in 0..d.len() {
            let s: f64 = dm.matrix.row(i)[1..].iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn cell_index_encoding_single_column() {
        let d = tiny();
        let p = Partition::uniform(d.grid(), 1, 2).unwrap();
        let dm = build_design_matrix(&d, &p, LocationEncoding::CellIndex).unwrap();
        assert_eq!(dm.matrix.cols(), 2);
        assert_eq!(dm.matrix.column(1), vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn aggregate_location_sums_location_block() {
        let d = tiny();
        let p = Partition::uniform(d.grid(), 2, 2).unwrap();
        let dm = build_design_matrix(&d, &p, LocationEncoding::OneHot).unwrap();
        let agg = dm.aggregate_location(&[0.5, 0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(agg.len(), 2);
        assert!((agg[0] - 0.5).abs() < 1e-12);
        assert!((agg[1] - 1.0).abs() < 1e-12);
        assert!(dm.aggregate_location(&[1.0]).is_err());
    }

    #[test]
    fn finer_partitions_move_centroids() {
        let d = tiny();
        let coarse = Partition::single(d.grid());
        let fine = Partition::uniform(d.grid(), 2, 2).unwrap();
        let a = build_design_matrix(&d, &coarse, LocationEncoding::CentroidXY).unwrap();
        let b = build_design_matrix(&d, &fine, LocationEncoding::CentroidXY).unwrap();
        // Under the trivial partition every centroid is the map center.
        assert!((a.matrix.get(0, 1) - 0.5).abs() < 1e-12);
        // Under quadrants, individual 0's centroid moved to its quadrant.
        assert!((b.matrix.get(0, 1) - 0.25).abs() < 1e-12);
    }
}
