//! The transport-agnostic query service: every serving surface — text
//! REPL, HTTP, future RPC — decodes to an [`fsi_proto::Request`], calls
//! [`QueryService::dispatch`], and encodes the returned
//! [`fsi_proto::Response`]. Nothing else in the system answers queries.
//!
//! A service coordinates a [`Topology`] of
//! [`ShardBackend`](crate::topology::ShardBackend)s: point
//! lookups route to exactly one shard (answered in-process for local
//! shards, forwarded for remote ones), range queries scatter-gather
//! across the intersected shards and merge, stats report a per-shard
//! breakdown, and (when constructed with a dataset via
//! [`QueryService::with_rebuild`]) rebuilds run a **two-phase
//! generation barrier**: every shard stages the retrained index before
//! any shard publishes, so no client ever observes a mixed-generation
//! fleet mid-rebuild.
//!
//! The service is **cheap to clone and single-threaded by design**:
//! each clone owns its per-shard [`IndexReader`]s and its reusable batch
//! buffers, while the topology (and thus the live indexes and remote
//! connections) stays shared. A transport spawns one clone per worker
//! thread and dispatches without any locking on the local hot path.

use crate::frozen::{Decision, FrozenIndex};
use crate::rebuild::build_index;
use crate::topology::Topology;
use crate::{IndexReader, RebuildReport, ServeError};
use fsi_cache::{CacheKey, CacheScope, CacheSpec, CacheStats, FrontedLru, ShardedLru};
use fsi_data::SpatialDataset;
use fsi_geo::{Point, Rect};
use fsi_pipeline::{MethodRun, PipelineSpec};
use fsi_proto::{
    CacheStatsBody, DecisionBody, ErrorCode, PreparedBody, Request, Response, ShardStatsBody,
    StatsBody, WirePoint,
};
use std::sync::Arc;
use std::time::Instant;

impl From<Decision> for DecisionBody {
    fn from(d: Decision) -> Self {
        DecisionBody {
            leaf_id: d.leaf_id,
            group: d.group,
            raw_score: d.raw_score,
            calibrated_score: d.calibrated_score,
        }
    }
}

impl From<DecisionBody> for Decision {
    fn from(d: DecisionBody) -> Self {
        Decision {
            leaf_id: d.leaf_id,
            group: d.group,
            raw_score: d.raw_score,
            calibrated_score: d.calibrated_score,
        }
    }
}

/// How a configured decision cache is placed for one service clone.
///
/// Decisions are deterministic per (shard, cell, generation), and a
/// shard's generation uniquely identifies its published index, so a
/// cached decision can never go stale: a hot-swap bumps the generation,
/// which changes every key, and the orphaned entries age out of the LRU.
enum CacheStore {
    /// This clone owns its cache outright — the zero-lock placement,
    /// with a direct-mapped front over the exact LRU (see
    /// [`FrontedLru`]).
    PerWorker(FrontedLru<Decision>),
    /// All clones share one sharded cache behind per-shard mutexes.
    Shared(Arc<ShardedLru<Decision>>),
}

impl CacheStore {
    fn from_spec(spec: &CacheSpec) -> Result<Self, ServeError> {
        spec.validate()?;
        Ok(match spec.scope {
            CacheScope::PerWorker => CacheStore::PerWorker(FrontedLru::new(spec.capacity)?),
            CacheScope::Shared => CacheStore::Shared(Arc::new(ShardedLru::new(spec)?)),
        })
    }

    #[inline]
    fn get(&mut self, key: CacheKey) -> Option<Decision> {
        match self {
            CacheStore::PerWorker(cache) => cache.get(key),
            CacheStore::Shared(cache) => cache.get(key),
        }
    }

    fn insert(&mut self, key: CacheKey, decision: Decision) {
        match self {
            CacheStore::PerWorker(cache) => cache.insert(key, decision),
            CacheStore::Shared(cache) => cache.insert(key, decision),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            CacheStore::PerWorker(cache) => cache.stats(),
            CacheStore::Shared(cache) => cache.stats(),
        }
    }
}

/// The optional decision cache of one service clone: the validated spec
/// it was built from (clones re-derive per-worker placements from it)
/// plus the placement itself.
struct CacheLayer {
    spec: CacheSpec,
    store: CacheStore,
}

/// What one shard slot looks like from this service clone: a private
/// [`IndexReader`] over the local shard's handle (the lock-free hot
/// path), or a marker that queries must be forwarded through the
/// topology's boxed backend.
enum ShardSlot {
    Local(IndexReader),
    Remote,
}

/// The out-of-bounds error a batch lookup answers, naming the offending
/// point by its index *within the batch* regardless of which shard
/// (local or remote) rejected it.
fn batch_oob(index: usize, wp: &WirePoint) -> Response {
    Response::error(
        ErrorCode::OutOfBounds,
        format!(
            "point #{index} at ({}, {}) is outside the index bounds",
            wp.x, wp.y
        ),
    )
}

/// Best-effort abort fan-out: drops staged rebuild state on every shard
/// of the topology — locals directly, remotes via
/// [`Request::RebuildAbort`]. Abort is idempotent and an unreachable
/// remote is skipped (it has nothing durable to publish anyway), so a
/// coordinator can always call this after a partial prepare failure
/// without leaving a stale staged index behind a live shard.
fn abort_all(topology: &Topology) {
    for backend in topology.backends() {
        match backend.as_local() {
            Some(local) => local.abort(),
            None => {
                let _ = backend.dispatch(&Request::RebuildAbort);
            }
        }
    }
}

/// Dispatches typed protocol requests against a topology of shard
/// backends. See the module docs for the design.
pub struct QueryService {
    topology: Arc<Topology>,
    slots: Vec<ShardSlot>,
    rebuild_dataset: Option<Arc<SpatialDataset>>,
    /// Reusable scratch for batch lookups (converted query points).
    points: Vec<Point>,
    /// Reusable scratch for batch lookups (decisions out).
    decisions: Vec<Decision>,
    /// Optional generation-keyed decision cache over point lookups.
    cache: Option<CacheLayer>,
}

impl QueryService {
    /// Creates a service over a [`Topology`] (a deprecated
    /// `ShardRouter` converts via `Into`, preserving its replica
    /// semantics), without rebuild support: `Rebuild` requests answer a
    /// structured [`ErrorCode::RebuildUnavailable`] error.
    pub fn new(topology: impl Into<Topology>) -> Self {
        Self::over(Arc::new(topology.into()), None)
    }

    /// Enables spec-driven rebuilds: a `Rebuild{spec}` request retrains
    /// the pipeline on `dataset` and publishes the compiled index to
    /// every shard through the two-phase barrier, and the
    /// `RebuildPrepare` / `RebuildCommit` pair lets an upstream
    /// coordinator drive this service as one shard of *its* fleet.
    #[must_use]
    pub fn with_rebuild(mut self, dataset: Arc<SpatialDataset>) -> Self {
        self.rebuild_dataset = Some(dataset);
        self
    }

    /// Puts a decision cache in front of point lookups, validating the
    /// spec first. Decisions are keyed by (shard, cell, generation), so
    /// hot-swap rebuilds invalidate implicitly — see [`CacheSpec`] for
    /// the placement choices. Only local shards are cached; remote
    /// shards answer behind their own caches.
    pub fn with_cache(mut self, spec: CacheSpec) -> Result<Self, ServeError> {
        let store = CacheStore::from_spec(&spec)?;
        self.cache = Some(CacheLayer { spec, store });
        Ok(self)
    }

    /// The cache configuration, when one is attached.
    pub fn cache_spec(&self) -> Option<&CacheSpec> {
        self.cache.as_ref().map(|layer| &layer.spec)
    }

    fn over(topology: Arc<Topology>, rebuild_dataset: Option<Arc<SpatialDataset>>) -> Self {
        let slots = topology
            .backends()
            .iter()
            .map(|b| match b.as_local() {
                Some(local) => ShardSlot::Local(local.reader()),
                None => ShardSlot::Remote,
            })
            .collect();
        Self {
            topology,
            slots,
            rebuild_dataset,
            points: Vec::new(),
            decisions: Vec::new(),
            cache: None,
        }
    }

    /// The topology behind this service.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Answers one request. Never panics and never fails at the Rust
    /// level: every failure becomes a [`Response::Error`] with a
    /// machine-readable [`ErrorCode`], so transports can stay thin.
    ///
    /// `#[inline]` so a caller with a statically known request shape
    /// (the benches, the batch loops) folds the variant match away and
    /// builds the `Response` in place instead of memcpying it twice —
    /// without LTO this call is otherwise an opaque cross-crate boundary
    /// on the lookup hot path.
    #[inline]
    pub fn dispatch(&mut self, request: &Request) -> Response {
        match request {
            Request::Lookup { x, y } => self.lookup(*x, *y),
            Request::LookupBatch { points } => self.lookup_batch(points),
            Request::RangeQuery { rect } => self.range_query(rect),
            Request::Stats => self.stats(),
            Request::Rebuild { spec } => self.rebuild(spec),
            Request::RebuildPrepare { spec } => self.rebuild_prepare(spec),
            Request::RebuildCommit => self.rebuild_commit(),
            Request::RebuildAbort => self.rebuild_abort(),
        }
    }

    #[inline]
    fn lookup(&mut self, x: f64, y: f64) -> Response {
        let p = Point::new(x, y);
        // Single-shard fast path: the index's (or the remote's) own
        // bounds check makes the routing step redundant.
        let shard = if self.slots.len() == 1 {
            Some(0)
        } else {
            self.topology.shard_of(&p)
        };
        let decision = match shard {
            Some(shard) => {
                if matches!(self.slots[shard], ShardSlot::Remote) {
                    return self.topology.backends()[shard].dispatch(&Request::Lookup { x, y });
                }
                if self.cache.is_some() {
                    self.cached_decision(shard, &p)
                } else {
                    match &mut self.slots[shard] {
                        ShardSlot::Local(reader) => reader.snapshot().lookup(&p),
                        ShardSlot::Remote => None,
                    }
                }
            }
            None => None,
        };
        match decision {
            Some(decision) => Response::Decision {
                decision: decision.into(),
            },
            None => Response::error(
                ErrorCode::OutOfBounds,
                format!("point ({x}, {y}) is outside the served map bounds"),
            ),
        }
    }

    /// The decision for `p` through the cache; `None` means out of
    /// bounds. Only called with a cache configured and a local `shard`.
    ///
    /// A hit costs the cell computation (the same two divisions the
    /// uncached path pays) plus one hash probe — the tree traversal and
    /// decision assembly are skipped. A miss additionally resolves the
    /// cell through the index and fills the entry, so cold traffic pays
    /// one probe over the uncached path.
    #[inline]
    fn cached_decision(&mut self, shard: usize, p: &Point) -> Option<Decision> {
        let ShardSlot::Local(reader) = &mut self.slots[shard] else {
            // Callers forward remote shards before the cache layer.
            return None;
        };
        let (index, generation) = reader.snapshot_with_generation();
        let cell = index.cell_index(p)?;
        // The shard id rides in the key's high bits: each shard's handle
        // numbers its own generations, so (cell, generation) alone could
        // collide across shards that published different indexes.
        debug_assert!(cell < 1 << 48, "cell id exceeds the shard-packing range");
        let key = CacheKey::new((shard as u64) << 48 | cell, generation);
        let cache = self.cache.as_mut().expect("caller checked cache.is_some()");
        if let Some(decision) = cache.store.get(key) {
            return Some(decision);
        }
        let decision = index.lookup_cell(cell)?;
        cache.store.insert(key, decision);
        Some(decision)
    }

    fn lookup_batch(&mut self, points: &[WirePoint]) -> Response {
        // Cached: every local point goes through the same per-point
        // cache path as single lookups, so batch and single answers (and
        // counters) cannot diverge; remote points forward point-wise.
        if self.cache.is_some() {
            self.decisions.clear();
            self.decisions.reserve(points.len());
            for (i, wp) in points.iter().enumerate() {
                let p = Point::new(wp.x, wp.y);
                let shard = if self.slots.len() == 1 {
                    Some(0)
                } else {
                    self.topology.shard_of(&p)
                };
                let Some(shard) = shard else {
                    self.decisions.clear();
                    return batch_oob(i, wp);
                };
                if matches!(self.slots[shard], ShardSlot::Remote) {
                    match self.topology.backends()[shard]
                        .dispatch(&Request::Lookup { x: wp.x, y: wp.y })
                    {
                        Response::Decision { decision } => self.decisions.push(decision.into()),
                        Response::Error { error } if error.code == ErrorCode::OutOfBounds => {
                            self.decisions.clear();
                            return batch_oob(i, wp);
                        }
                        Response::Error { error } => {
                            self.decisions.clear();
                            return Response::Error { error };
                        }
                        _ => {
                            self.decisions.clear();
                            return Response::error(
                                ErrorCode::Internal,
                                format!("shard {shard} answered an unexpected lookup response"),
                            );
                        }
                    }
                    continue;
                }
                match self.cached_decision(shard, &p) {
                    Some(d) => self.decisions.push(d),
                    None => {
                        self.decisions.clear();
                        return batch_oob(i, wp);
                    }
                }
            }
            return Response::Decisions {
                decisions: self.decisions.iter().map(|&d| d.into()).collect(),
            };
        }
        // Single local shard: feed the whole batch through the frozen
        // index's buffer-reusing batch path.
        if self.slots.len() == 1 {
            if let ShardSlot::Local(_) = self.slots[0] {
                self.points.clear();
                self.points
                    .extend(points.iter().map(|p| Point::new(p.x, p.y)));
                let ShardSlot::Local(reader) = &mut self.slots[0] else {
                    unreachable!("checked above");
                };
                let index = reader.snapshot();
                return match index.lookup_batch(&self.points, &mut self.decisions) {
                    Ok(()) => Response::Decisions {
                        decisions: self.decisions.iter().map(|&d| d.into()).collect(),
                    },
                    Err(e) => Response::error(ErrorCode::OutOfBounds, e.to_string()),
                };
            }
        }
        // Scatter-gather: local points answer inline, remote points are
        // bucketed per shard and forwarded as sub-batches, and every
        // answer lands back at its original batch position.
        let mut out: Vec<Option<DecisionBody>> = vec![None; points.len()];
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.slots.len()];
        for (i, wp) in points.iter().enumerate() {
            let p = Point::new(wp.x, wp.y);
            let shard = if self.slots.len() == 1 {
                Some(0)
            } else {
                self.topology.shard_of(&p)
            };
            let Some(shard) = shard else {
                return batch_oob(i, wp);
            };
            match &mut self.slots[shard] {
                ShardSlot::Local(reader) => match reader.snapshot().lookup(&p) {
                    Some(d) => out[i] = Some(d.into()),
                    None => return batch_oob(i, wp),
                },
                ShardSlot::Remote => buckets[shard].push(i),
            }
        }
        for (shard, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let sub: Vec<WirePoint> = bucket.iter().map(|&i| points[i]).collect();
            let backend = &self.topology.backends()[shard];
            match backend.dispatch(&Request::LookupBatch { points: sub }) {
                Response::Decisions { decisions } if decisions.len() == bucket.len() => {
                    for (&i, d) in bucket.iter().zip(decisions) {
                        out[i] = Some(d);
                    }
                }
                Response::Error { error } if error.code == ErrorCode::OutOfBounds => {
                    // The remote names the offender by its *sub-batch*
                    // index; re-localize to the original batch position
                    // by probing the bucket point-wise.
                    for &i in bucket {
                        let wp = &points[i];
                        if matches!(
                            backend.dispatch(&Request::Lookup { x: wp.x, y: wp.y }),
                            Response::Error { .. }
                        ) {
                            return batch_oob(i, wp);
                        }
                    }
                    return Response::Error { error };
                }
                Response::Error { error } => return Response::Error { error },
                _ => {
                    return Response::error(
                        ErrorCode::Internal,
                        format!("shard {shard} answered an unexpected batch response"),
                    )
                }
            }
        }
        Response::Decisions {
            decisions: out
                .into_iter()
                .map(|d| d.expect("every routed point was answered"))
                .collect(),
        }
    }

    fn range_query(&mut self, rect: &fsi_proto::WireRect) -> Response {
        let query = match Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y) {
            Ok(query) => query,
            Err(e) => return Response::error(ErrorCode::MalformedRequest, e.to_string()),
        };
        let shards = self.topology.covering(&query);
        let mut ids: Vec<usize> = Vec::new();
        for shard in shards {
            match &mut self.slots[shard] {
                ShardSlot::Local(reader) => {
                    ids.extend(reader.snapshot().range_query(&query));
                }
                ShardSlot::Remote => {
                    match self.topology.backends()[shard]
                        .dispatch(&Request::RangeQuery { rect: *rect })
                    {
                        Response::Regions { ids: shard_ids } => ids.extend(shard_ids),
                        Response::Error { error } => return Response::Error { error },
                        _ => {
                            return Response::error(
                                ErrorCode::Internal,
                                format!("shard {shard} answered an unexpected range response"),
                            )
                        }
                    }
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        Response::Regions { ids }
    }

    fn stats(&mut self) -> Response {
        let cache = self.cache.as_ref().map(|layer| {
            let s = layer.store.stats();
            CacheStatsBody {
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                entries: s.len,
                capacity: s.capacity,
            }
        });
        let mut per_shard = Vec::with_capacity(self.slots.len());
        for (shard, slot) in self.slots.iter_mut().enumerate() {
            let d = self.topology.backends()[shard].descriptor();
            match slot {
                ShardSlot::Local(reader) => {
                    let (index, generation) = reader.snapshot_with_generation();
                    per_shard.push(ShardStatsBody {
                        kind: d.kind.to_string(),
                        addr: d.addr,
                        generation,
                        num_leaves: index.num_leaves(),
                        heap_bytes: index.heap_bytes(),
                        backend: index.backend_name().to_string(),
                    });
                }
                ShardSlot::Remote => {
                    let body = match self.topology.backends()[shard].dispatch(&Request::Stats) {
                        Response::Stats { stats } => ShardStatsBody {
                            kind: d.kind.to_string(),
                            addr: d.addr,
                            generation: stats.generations.first().copied().unwrap_or(0),
                            num_leaves: stats.num_leaves,
                            heap_bytes: stats.heap_bytes,
                            backend: stats.backend,
                        },
                        _ => ShardStatsBody {
                            kind: d.kind.to_string(),
                            addr: d.addr,
                            generation: 0,
                            num_leaves: 0,
                            heap_bytes: 0,
                            backend: "unreachable".to_string(),
                        },
                    };
                    per_shard.push(body);
                }
            }
        }
        let generations = per_shard.iter().map(|s| s.generation).collect();
        // Shard-0 convention for the flat summary fields, kept from the
        // replica era so v1 clients keep decoding something sensible;
        // topology-aware clients read `per_shard`.
        let first = &per_shard[0];
        Response::Stats {
            stats: Box::new(StatsBody {
                shards: self.slots.len(),
                generations,
                num_leaves: first.num_leaves,
                heap_bytes: first.heap_bytes,
                backend: first.backend.clone(),
                cache,
                per_shard: Some(per_shard),
            }),
        }
    }

    /// Retrains on the rebuild dataset, mapping failures to structured
    /// protocol errors.
    fn build_from_spec(&self, spec: &PipelineSpec) -> Result<(FrozenIndex, MethodRun), Response> {
        let Some(dataset) = self.rebuild_dataset.clone() else {
            return Err(Response::error(
                ErrorCode::RebuildUnavailable,
                "this service was built without a training dataset; rebuilds are disabled",
            ));
        };
        match build_index(&dataset, spec) {
            Ok(built) => Ok(built),
            Err(crate::ServeError::Pipeline(fsi_pipeline::PipelineError::InvalidConfig(msg))) => {
                Err(Response::error(ErrorCode::InvalidSpec, msg))
            }
            Err(e) => Err(Response::error(ErrorCode::Internal, e.to_string())),
        }
    }

    /// The two-phase publish barrier behind `Rebuild`: stage the global
    /// `index` on every local shard and fan `RebuildPrepare` out to
    /// every remote shard (in parallel — remote prepares retrain and
    /// pay real wall-clock); only when *every* shard holds a staged
    /// index are the commits issued. Any prepare failure aborts all
    /// staged state and leaves the old generation serving everywhere.
    fn publish_two_phase(&self, index: &FrozenIndex, spec: &PipelineSpec) -> Result<u64, Response> {
        let backends = self.topology.backends();
        for (i, b) in backends.iter().enumerate() {
            if let Some(local) = b.as_local() {
                if let Err(e) = local.stage(index) {
                    abort_all(&self.topology);
                    return Err(Response::error(
                        ErrorCode::Internal,
                        format!("shard {i} failed to stage: {e}"),
                    ));
                }
            }
        }
        let remotes: Vec<usize> = backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.as_local().is_none())
            .map(|(i, _)| i)
            .collect();
        let prepares: Vec<(usize, Response)> = std::thread::scope(|scope| {
            let workers: Vec<_> = remotes
                .iter()
                .map(|&i| {
                    let backend = &backends[i];
                    let spec = spec.clone();
                    scope.spawn(move || (i, backend.dispatch(&Request::RebuildPrepare { spec })))
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("prepare worker panicked"))
                .collect()
        });
        for (i, response) in prepares {
            match response {
                Response::Prepared { .. } => {}
                Response::Error { error } => {
                    abort_all(&self.topology);
                    return Err(Response::error(
                        error.code,
                        format!("shard {i} failed to prepare: {}", error.message),
                    ));
                }
                _ => {
                    abort_all(&self.topology);
                    return Err(Response::error(
                        ErrorCode::Internal,
                        format!("shard {i} answered an unexpected prepare response"),
                    ));
                }
            }
        }
        let mut newest = 0;
        for (i, b) in backends.iter().enumerate() {
            let generation = match b.as_local() {
                Some(local) => local.commit().map_err(|e| {
                    Response::error(
                        ErrorCode::Internal,
                        format!("shard {i} failed to commit: {e}"),
                    )
                })?,
                None => match b.dispatch(&Request::RebuildCommit) {
                    Response::Committed { generation } => generation,
                    Response::Error { error } => {
                        return Err(Response::error(
                            error.code,
                            format!("shard {i} failed to commit: {}", error.message),
                        ))
                    }
                    _ => {
                        return Err(Response::error(
                            ErrorCode::Internal,
                            format!("shard {i} answered an unexpected commit response"),
                        ))
                    }
                },
            };
            newest = newest.max(generation);
        }
        Ok(newest)
    }

    fn rebuild(&mut self, spec: &PipelineSpec) -> Response {
        let started = Instant::now();
        let (index, run) = match self.build_from_spec(spec) {
            Ok(built) => built,
            Err(response) => return response,
        };
        let num_leaves = index.num_leaves();
        let generation = match self.publish_two_phase(&index, spec) {
            Ok(generation) => generation,
            Err(response) => return response,
        };
        Response::Rebuilt {
            report: Box::new(RebuildReport {
                spec: spec.clone(),
                generation,
                num_leaves,
                ence: run.eval.full.ence,
                build_time: run.build_time,
                total_time: started.elapsed(),
            }),
        }
    }

    /// Phase one when *this* service is a shard (or mid-tier
    /// coordinator) of an upstream fleet: retrain, stage on every local
    /// shard (re-clipped for partial shards), and forward the prepare to
    /// any nested remotes. Nothing is served until the commit.
    fn rebuild_prepare(&mut self, spec: &PipelineSpec) -> Response {
        let (index, run) = match self.build_from_spec(spec) {
            Ok(built) => built,
            Err(response) => return response,
        };
        // The staged footprint reported back: the clipped footprint for
        // the common single-shard server, the global index's otherwise.
        let mut report = (index.num_leaves(), index.heap_bytes());
        for (i, b) in self.topology.backends().iter().enumerate() {
            match b.as_local() {
                Some(local) => match local.stage(&index) {
                    Ok(staged_report) => {
                        if self.slots.len() == 1 {
                            report = staged_report;
                        }
                    }
                    Err(e) => {
                        abort_all(&self.topology);
                        return Response::error(
                            ErrorCode::Internal,
                            format!("shard {i} failed to stage: {e}"),
                        );
                    }
                },
                None => match b.dispatch(&Request::RebuildPrepare { spec: spec.clone() }) {
                    Response::Prepared { .. } => {}
                    Response::Error { error } => {
                        abort_all(&self.topology);
                        return Response::error(
                            error.code,
                            format!("shard {i} failed to prepare: {}", error.message),
                        );
                    }
                    _ => {
                        abort_all(&self.topology);
                        return Response::error(
                            ErrorCode::Internal,
                            format!("shard {i} answered an unexpected prepare response"),
                        );
                    }
                },
            }
        }
        Response::Prepared {
            prepared: Box::new(PreparedBody {
                num_leaves: report.0,
                heap_bytes: report.1,
                ence: run.eval.full.ence,
                build_time: run.build_time,
            }),
        }
    }

    /// Abandons any staged rebuild on every shard — locals directly,
    /// remotes via the abort fan-out. Idempotent: aborting with nothing
    /// staged changes nothing, so it always answers
    /// [`Response::Aborted`].
    fn rebuild_abort(&mut self) -> Response {
        abort_all(&self.topology);
        Response::Aborted
    }

    /// Phase two: publish whatever the last prepare staged, on every
    /// shard. A commit with no staged index answers
    /// [`ErrorCode::NotPrepared`] without touching anything.
    fn rebuild_commit(&mut self) -> Response {
        let mut newest = 0;
        for (i, b) in self.topology.backends().iter().enumerate() {
            let generation = match b.as_local() {
                Some(local) => match local.commit() {
                    Ok(generation) => generation,
                    Err(e) => {
                        return Response::error(ErrorCode::NotPrepared, format!("shard {i}: {e}"))
                    }
                },
                None => match b.dispatch(&Request::RebuildCommit) {
                    Response::Committed { generation } => generation,
                    Response::Error { error } => {
                        return Response::error(
                            error.code,
                            format!("shard {i} failed to commit: {}", error.message),
                        )
                    }
                    _ => {
                        return Response::error(
                            ErrorCode::Internal,
                            format!("shard {i} answered an unexpected commit response"),
                        )
                    }
                },
            };
            newest = newest.max(generation);
        }
        Response::Committed { generation: newest }
    }
}

impl Clone for QueryService {
    /// Clones share the topology (and thus the live, hot-swappable
    /// indexes and remote connections) but get fresh readers and empty
    /// scratch buffers — one clone per transport worker thread. A
    /// shared cache is shared with the clone; a per-worker cache is
    /// re-created empty from its spec.
    fn clone(&self) -> Self {
        let mut fresh = Self::over(Arc::clone(&self.topology), self.rebuild_dataset.clone());
        if let Some(layer) = &self.cache {
            let store = match &layer.store {
                CacheStore::Shared(shared) => CacheStore::Shared(Arc::clone(shared)),
                CacheStore::PerWorker(_) => {
                    CacheStore::from_spec(&layer.spec).expect("spec validated at construction")
                }
            };
            fresh.cache = Some(CacheLayer {
                spec: layer.spec,
                store,
            });
        }
        fresh
    }
}

/// Convenience: a single-shard service over a freshly frozen index.
impl From<FrozenIndex> for QueryService {
    fn from(index: FrozenIndex) -> Self {
        QueryService::new(Topology::single(crate::IndexHandle::new(index)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{BackendSpec, ShardBackend, ShardDescriptor, TopologySpec};
    use crate::IndexHandle;
    use fsi_geo::{Grid, Partition};
    use fsi_pipeline::ModelSnapshot;
    use fsi_proto::WireRect;
    use std::sync::Mutex;

    fn index() -> FrozenIndex {
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot =
            ModelSnapshot::new(vec![0.2, 0.4, 0.6, 0.8], vec![0.0; 4], vec![0, 1, 2, 3]).unwrap();
        FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap()
    }

    fn service(shards: (usize, usize)) -> QueryService {
        QueryService::new(Topology::partitioned(index(), shards.0, shards.1).unwrap())
    }

    fn dataset() -> Arc<SpatialDataset> {
        Arc::new(
            fsi_data::synth::city::CityGenerator::new(fsi_data::synth::city::CityConfig {
                n_individuals: 200,
                grid_side: 8,
                seed: 5,
                ..Default::default()
            })
            .unwrap()
            .generate()
            .unwrap(),
        )
    }

    /// An in-process stand-in for a remote shard: owns a full
    /// [`QueryService`] (typically over a [`Topology::partial`] clip)
    /// behind a mutex and forwards requests to it — exactly what the
    /// HTTP backend does over a socket, minus the socket.
    struct StubRemote {
        addr: String,
        inner: Mutex<QueryService>,
    }

    impl ShardBackend for StubRemote {
        fn dispatch(&self, request: &Request) -> Response {
            self.inner.lock().unwrap().dispatch(request)
        }

        fn descriptor(&self) -> ShardDescriptor {
            ShardDescriptor {
                kind: "http",
                addr: Some(self.addr.clone()),
            }
        }

        fn generation(&self) -> u64 {
            match self.inner.lock().unwrap().dispatch(&Request::Stats) {
                Response::Stats { stats } => stats.generations.first().copied().unwrap_or(0),
                _ => 0,
            }
        }
    }

    /// A 2×2 coordinator whose NE and SW slots are "remote" shard
    /// servers over partial indexes (stubbed in-process), with the other
    /// two slots local partial indexes.
    fn mixed(rebuild: Option<Arc<SpatialDataset>>) -> QueryService {
        let spec = TopologySpec {
            rows: 2,
            cols: 2,
            shards: vec![
                BackendSpec::Local,
                BackendSpec::Http("shard:1".into()),
                BackendSpec::Http("shard:2".into()),
                BackendSpec::Local,
            ],
        };
        let topology = Topology::from_spec(&spec, index(), |addr| {
            let slot: usize = addr.strip_prefix("shard:").unwrap().parse().unwrap();
            let mut inner = QueryService::new(Topology::partial(&index(), 2, 2, slot).unwrap());
            if let Some(dataset) = &rebuild {
                inner = inner.with_rebuild(Arc::clone(dataset));
            }
            Ok(Box::new(StubRemote {
                addr: addr.to_string(),
                inner: Mutex::new(inner),
            }))
        })
        .unwrap();
        let mut svc = QueryService::new(topology);
        if let Some(dataset) = rebuild {
            svc = svc.with_rebuild(dataset);
        }
        svc
    }

    #[test]
    fn lookup_routes_to_the_right_decision_on_any_shard_count() {
        let reference = index();
        for shape in [(1, 1), (2, 2), (1, 4), (3, 2)] {
            let mut svc = service(shape);
            for p in [(0.1, 0.1), (0.9, 0.1), (0.5, 0.5), (1.0, 1.0), (0.0, 0.9)] {
                let expected: DecisionBody =
                    reference.lookup(&Point::new(p.0, p.1)).unwrap().into();
                match svc.dispatch(&Request::Lookup { x: p.0, y: p.1 }) {
                    Response::Decision { decision } => {
                        assert_eq!(decision, expected, "{shape:?} at {p:?}")
                    }
                    other => panic!("expected decision, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_lookups_answer_structured_errors() {
        let mut svc = service((2, 2));
        match svc.dispatch(&Request::Lookup { x: 5.0, y: 0.5 }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::OutOfBounds),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn batch_matches_singles_and_reports_offending_index() {
        for shape in [(1, 1), (2, 2)] {
            let mut svc = service(shape);
            let points: Vec<WirePoint> = (0..40)
                .map(|i| WirePoint::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.37) % 1.0))
                .collect();
            let Response::Decisions { decisions } = svc.dispatch(&Request::LookupBatch {
                points: points.clone(),
            }) else {
                panic!("expected decisions");
            };
            assert_eq!(decisions.len(), points.len());
            for (p, d) in points.iter().zip(&decisions) {
                match svc.dispatch(&Request::Lookup { x: p.x, y: p.y }) {
                    Response::Decision { decision } => assert_eq!(decision, *d),
                    other => panic!("expected decision, got {other:?}"),
                }
            }
            let mut bad = points.clone();
            bad[17] = WirePoint::new(9.0, 9.0);
            match svc.dispatch(&Request::LookupBatch { points: bad }) {
                Response::Error { error } => {
                    assert_eq!(error.code, ErrorCode::OutOfBounds);
                    assert!(error.message.contains("17"), "{}", error.message);
                }
                other => panic!("expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn range_query_merges_shards_to_the_single_index_answer() {
        let reference = index();
        for shape in [(1, 1), (2, 2), (4, 1)] {
            let mut svc = service(shape);
            for rect in [
                WireRect::new(0.0, 0.0, 1.0, 1.0),
                WireRect::new(0.1, 0.1, 0.2, 0.2),
                WireRect::new(0.1, 0.1, 0.9, 0.2),
                WireRect::new(2.0, 2.0, 3.0, 3.0),
            ] {
                let query = Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y).unwrap();
                let expected = reference.range_query(&query);
                match svc.dispatch(&Request::RangeQuery { rect }) {
                    Response::Regions { ids } => assert_eq!(ids, expected, "{shape:?} {rect:?}"),
                    other => panic!("expected regions, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stats_report_shards_generations_and_footprint() {
        let mut svc = service((2, 2));
        let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.generations, vec![1, 1, 1, 1]);
        assert_eq!(stats.num_leaves, 4);
        assert_eq!(stats.backend, "cells");
        assert!(stats.heap_bytes > 0);
        let per_shard = stats
            .per_shard
            .expect("coordinators report per-shard stats");
        assert_eq!(per_shard.len(), 4);
        for shard in &per_shard {
            assert_eq!(shard.kind, "local");
            assert_eq!(shard.addr, None);
            assert_eq!(shard.generation, 1);
            assert!(shard.num_leaves > 0);
        }
    }

    #[test]
    fn scatter_gather_over_mixed_backends_matches_the_single_box() {
        let reference = index();
        let mut svc = mixed(None);
        // Point lookups: every grid cell center plus the shard edges.
        let mut points: Vec<(f64, f64)> = (0..64)
            .map(|i| (((i % 8) as f64 + 0.5) / 8.0, ((i / 8) as f64 + 0.5) / 8.0))
            .collect();
        points.extend([(0.5, 0.5), (0.5, 0.1), (0.1, 0.5), (0.0, 0.0), (1.0, 1.0)]);
        for &(x, y) in &points {
            let expected: DecisionBody = reference.lookup(&Point::new(x, y)).unwrap().into();
            match svc.dispatch(&Request::Lookup { x, y }) {
                Response::Decision { decision } => assert_eq!(decision, expected, "({x}, {y})"),
                other => panic!("expected decision, got {other:?}"),
            }
        }
        // Batches route through remote sub-batches and come back in
        // original order.
        let wire: Vec<WirePoint> = points.iter().map(|&(x, y)| WirePoint::new(x, y)).collect();
        let Response::Decisions { decisions } = svc.dispatch(&Request::LookupBatch {
            points: wire.clone(),
        }) else {
            panic!("expected decisions");
        };
        for (&(x, y), d) in points.iter().zip(&decisions) {
            let expected: DecisionBody = reference.lookup(&Point::new(x, y)).unwrap().into();
            assert_eq!(*d, expected, "batch at ({x}, {y})");
        }
        let mut bad = wire;
        bad[13] = WirePoint::new(7.0, 7.0);
        match svc.dispatch(&Request::LookupBatch { points: bad }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::OutOfBounds);
                assert!(error.message.contains("13"), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
        // Ranges scatter-gather across local and remote shards.
        for rect in [
            WireRect::new(0.0, 0.0, 1.0, 1.0),
            WireRect::new(0.6, 0.1, 0.9, 0.4),
            WireRect::new(0.1, 0.1, 0.9, 0.9),
        ] {
            let query = Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y).unwrap();
            let expected = reference.range_query(&query);
            match svc.dispatch(&Request::RangeQuery { rect }) {
                Response::Regions { ids } => assert_eq!(ids, expected, "{rect:?}"),
                other => panic!("expected regions, got {other:?}"),
            }
        }
        // Stats carry the backend kind and address per shard.
        let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.generations, vec![1, 1, 1, 1]);
        let per_shard = stats.per_shard.unwrap();
        let kinds: Vec<&str> = per_shard.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds, vec!["local", "http", "http", "local"]);
        assert_eq!(per_shard[1].addr.as_deref(), Some("shard:1"));
        assert_eq!(per_shard[2].addr.as_deref(), Some("shard:2"));
        for shard in &per_shard {
            assert!(shard.num_leaves > 0, "{shard:?}");
        }
    }

    #[test]
    fn two_phase_rebuild_raises_every_shard_in_lockstep() {
        let dataset = dataset();
        let mut svc = mixed(Some(Arc::clone(&dataset)));
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            3,
        );
        let Response::Rebuilt { report } = svc.dispatch(&Request::Rebuild { spec: spec.clone() })
        else {
            panic!("expected rebuild report");
        };
        assert_eq!(report.generation, 2);
        assert_eq!(report.num_leaves, 8);
        assert_eq!(svc.topology().generations(), vec![2, 2, 2, 2]);
        // Every shard now answers from the retrained index: compare
        // against a reference built from the same dataset and spec.
        let (reference, _run) = build_index(&dataset, &spec).unwrap();
        for p in [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9), (0.9, 0.9), (0.5, 0.5)] {
            let expected: DecisionBody = reference.lookup(&Point::new(p.0, p.1)).unwrap().into();
            match svc.dispatch(&Request::Lookup { x: p.0, y: p.1 }) {
                Response::Decision { decision } => assert_eq!(decision, expected, "{p:?}"),
                other => panic!("expected decision, got {other:?}"),
            }
        }
        // A commit with nothing staged is a structured protocol error.
        let mut fresh = mixed(Some(dataset));
        match fresh.dispatch(&Request::RebuildCommit) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::NotPrepared),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn prepare_stages_without_serving_until_the_commit() {
        let mut svc = QueryService::new(Topology::partitioned(index(), 2, 2).unwrap())
            .with_rebuild(dataset());
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            3,
        );
        let before = match svc.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }) {
            Response::Decision { decision } => decision,
            other => panic!("expected decision, got {other:?}"),
        };
        let Response::Prepared { prepared } = svc.dispatch(&Request::RebuildPrepare { spec })
        else {
            panic!("expected prepared");
        };
        assert!(prepared.num_leaves > 0);
        assert!(prepared.heap_bytes > 0);
        // Staged but not live: generation 1 everywhere, old answers.
        assert_eq!(svc.topology().generations(), vec![1, 1, 1, 1]);
        match svc.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }) {
            Response::Decision { decision } => assert_eq!(decision, before),
            other => panic!("expected decision, got {other:?}"),
        }
        let Response::Committed { generation } = svc.dispatch(&Request::RebuildCommit) else {
            panic!("expected committed");
        };
        assert_eq!(generation, 2);
        assert_eq!(svc.topology().generations(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn rebuild_without_a_dataset_is_a_structured_error() {
        let mut svc = service((1, 1));
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            2,
        );
        match svc.dispatch(&Request::Rebuild { spec: spec.clone() }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::RebuildUnavailable),
            other => panic!("expected error, got {other:?}"),
        }
        match svc.dispatch(&Request::RebuildPrepare { spec }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::RebuildUnavailable),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn rebuild_with_a_dataset_publishes_to_every_shard() {
        let mut svc = QueryService::new(Topology::partitioned(index(), 2, 2).unwrap())
            .with_rebuild(dataset());
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            3,
        );
        let Response::Rebuilt { report } = svc.dispatch(&Request::Rebuild { spec: spec.clone() })
        else {
            panic!("expected rebuild report");
        };
        assert_eq!(report.generation, 2);
        assert_eq!(report.spec, spec);
        assert_eq!(report.num_leaves, 8);
        assert_eq!(svc.topology().generations(), vec![2, 2, 2, 2]);
        // Invalid specs come back as structured spec errors.
        let bad = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::FairKd,
            0,
        );
        match svc.dispatch(&Request::Rebuild { spec: bad }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::InvalidSpec);
                assert!(error.message.contains("height"), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    /// Every (shape, scope) combination: cached answers must be
    /// bit-identical to the uncached reference, and the counters must
    /// add up.
    #[test]
    fn cached_lookups_match_uncached_and_count_hits() {
        let reference = index();
        let points: Vec<(f64, f64)> = (0..64)
            .map(|i| (((i % 8) as f64 + 0.5) / 8.0, ((i / 8) as f64 + 0.5) / 8.0))
            .collect();
        for shape in [(1, 1), (2, 2)] {
            // The shared placement splits capacity across 8 shards and
            // cells hash unevenly, so give each shard room for all 64
            // distinct cells — this test is about parity and counting,
            // not eviction.
            for spec in [CacheSpec::per_worker(64), CacheSpec::shared(512)] {
                let mut svc = service(shape).with_cache(spec).unwrap();
                assert_eq!(svc.cache_spec(), Some(&spec));
                for pass in 0..2 {
                    for &(x, y) in &points {
                        let expected: DecisionBody =
                            reference.lookup(&Point::new(x, y)).unwrap().into();
                        match svc.dispatch(&Request::Lookup { x, y }) {
                            Response::Decision { decision } => {
                                assert_eq!(decision, expected, "{shape:?} {spec:?} pass {pass}")
                            }
                            other => panic!("expected decision, got {other:?}"),
                        }
                    }
                }
                let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
                    panic!("expected stats");
                };
                let cache = stats.cache.expect("cache stats must be reported");
                // 64 points over a 4-leaf/64-cell grid: the first pass
                // populates each distinct cell once, the second hits.
                assert_eq!(cache.hits + cache.misses, 128);
                assert_eq!(cache.misses, 64, "{shape:?} {spec:?}");
                assert_eq!(cache.capacity, spec.capacity);
                assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cached_batches_match_singles_and_report_out_of_bounds() {
        let mut plain = service((2, 2));
        let mut cached = service((2, 2))
            .with_cache(CacheSpec::per_worker(16))
            .unwrap();
        let points: Vec<WirePoint> = (0..40)
            .map(|i| WirePoint::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.37) % 1.0))
            .collect();
        let expected = plain.dispatch(&Request::LookupBatch {
            points: points.clone(),
        });
        let got = cached.dispatch(&Request::LookupBatch {
            points: points.clone(),
        });
        assert_eq!(format!("{expected:?}"), format!("{got:?}"));
        let mut bad = points;
        bad[11] = WirePoint::new(-3.0, 0.5);
        match cached.dispatch(&Request::LookupBatch { points: bad }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::OutOfBounds);
                assert!(error.message.contains("11"), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_cache_specs_are_rejected_up_front() {
        let svc = service((1, 1));
        match svc.with_cache(CacheSpec::per_worker(0)) {
            Err(crate::ServeError::Cache(fsi_cache::CacheError::ZeroCapacity)) => {}
            Err(other) => panic!("expected ZeroCapacity, got {other:?}"),
            Ok(_) => panic!("zero-capacity spec must be rejected"),
        }
    }

    #[test]
    fn publish_invalidates_cached_decisions_via_the_generation_key() {
        let handle = IndexHandle::new(index());
        let mut svc = QueryService::new(Topology::single(handle.clone()))
            .with_cache(CacheSpec::per_worker(64))
            .unwrap();
        let (x, y) = (0.1, 0.1);
        let Response::Decision { decision: before } = svc.dispatch(&Request::Lookup { x, y })
        else {
            panic!("expected decision");
        };
        // Same point again: served from cache.
        svc.dispatch(&Request::Lookup { x, y });
        // Publish an index with different scores; the very next lookup
        // must reflect it even though the old entry is still resident.
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot =
            ModelSnapshot::new(vec![0.9, 0.9, 0.9, 0.9], vec![0.0; 4], vec![0, 1, 2, 3]).unwrap();
        handle.publish(FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap());
        let Response::Decision { decision: after } = svc.dispatch(&Request::Lookup { x, y }) else {
            panic!("expected decision");
        };
        assert!((before.raw_score - 0.2).abs() < 1e-12);
        assert!(
            (after.raw_score - 0.9).abs() < 1e-12,
            "stale cache entry served"
        );
    }

    #[test]
    fn shared_caches_are_shared_across_clones_but_per_worker_are_not() {
        let svc = service((1, 1)).with_cache(CacheSpec::shared(64)).unwrap();
        let mut a = svc.clone();
        let mut b = svc.clone();
        a.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }); // miss, fills
        b.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }); // hit via shared store
        let Response::Stats { stats } = b.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        let cache = stats.cache.unwrap();
        assert_eq!((cache.hits, cache.misses), (1, 1));

        let svc = service((1, 1))
            .with_cache(CacheSpec::per_worker(64))
            .unwrap();
        let mut a = svc.clone();
        let mut b = svc.clone();
        a.dispatch(&Request::Lookup { x: 0.1, y: 0.1 });
        b.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }); // its own cold cache: miss
        let Response::Stats { stats } = b.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        let cache = stats.cache.unwrap();
        assert_eq!((cache.hits, cache.misses), (0, 1));
    }

    #[test]
    fn clones_share_swaps_but_not_buffers() {
        let handle = IndexHandle::new(index());
        let svc = QueryService::new(Topology::single(handle.clone()));
        let mut a = svc.clone();
        let mut b = svc;
        handle.publish(index());
        for svc in [&mut a, &mut b] {
            let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
                panic!("expected stats");
            };
            assert_eq!(stats.generations, vec![2]);
        }
    }
}
