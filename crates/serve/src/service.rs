//! The transport-agnostic query service: every serving surface — text
//! REPL, HTTP, future RPC — decodes to an [`fsi_proto::Request`], calls
//! [`QueryService::dispatch`], and encodes the returned
//! [`fsi_proto::Response`]. Nothing else in the system answers queries.
//!
//! A service coordinates a [`Topology`] of
//! [`ShardBackend`](crate::topology::ShardBackend)s: point
//! lookups route to exactly one shard (answered in-process for local
//! shards, forwarded for remote ones), range queries scatter-gather
//! across the intersected shards and merge, stats report a per-shard
//! breakdown, and (when constructed with a dataset via
//! [`QueryService::with_rebuild`]) rebuilds run a **two-phase
//! generation barrier**: every shard stages the retrained index before
//! any shard publishes, so no client ever observes a mixed-generation
//! fleet mid-rebuild.
//!
//! The service is **cheap to clone and single-threaded by design**:
//! each clone owns its per-shard [`IndexReader`]s and its reusable batch
//! buffers, while the topology (and thus the live indexes and remote
//! connections) stays shared. A transport spawns one clone per worker
//! thread and dispatches without any locking on the local hot path.

use crate::frozen::{Decision, FrozenIndex};
use crate::obs::{
    code_index, kind_index, saturating_nanos, MetricsFold, ServiceMetrics, SlowQueryLog,
    SlowQuerySink, KINDS, K_LOOKUP,
};
use crate::rebuild::build_index;
use crate::topology::Topology;
use crate::{IndexReader, RebuildReport, ServeError};
use fsi_cache::{CacheKey, CacheScope, CacheSpec, CacheStats, FrontedLru, ShardedLru};
use fsi_core::CellStats;
use fsi_data::SpatialDataset;
use fsi_geo::{Point, Rect};
use fsi_ingest::{
    baseline_stats, merge_dataset, DeltaBuffer, DriftDetector, IngestError, IngestRecord,
    MaintenanceSpec,
};
use fsi_obs::{Recorder, Registry};
use fsi_pipeline::{MethodRun, PipelineSpec, TaskSpec};
use fsi_proto::{
    CacheStatsBody, DecisionBody, ErrorCode, ErrorCountBody, HealthBody, IngestBody, MetricsBody,
    PreparedBody, RebuildObsBody, Request, RequestKindMetrics, Response, ShardHealthBody,
    ShardObsBody, ShardStatsBody, StatsBody, WirePoint,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default lookup latency sampling: one in 256 point lookups is timed
/// (counts stay exact — see [`QueryService::with_lookup_sampling`]).
/// 256 keeps the amortized clock reads under the obs bench suite's
/// ≤ 1.10x instrumented-dispatch budget.
const DEFAULT_SAMPLE_MASK: u64 = 255;

impl From<Decision> for DecisionBody {
    fn from(d: Decision) -> Self {
        DecisionBody {
            leaf_id: d.leaf_id,
            group: d.group,
            raw_score: d.raw_score,
            calibrated_score: d.calibrated_score,
        }
    }
}

impl From<DecisionBody> for Decision {
    fn from(d: DecisionBody) -> Self {
        Decision {
            leaf_id: d.leaf_id,
            group: d.group,
            raw_score: d.raw_score,
            calibrated_score: d.calibrated_score,
        }
    }
}

/// How a configured decision cache is placed for one service clone.
///
/// Decisions are deterministic per (shard, cell, generation), and a
/// shard's generation uniquely identifies its published index, so a
/// cached decision can never go stale: a hot-swap bumps the generation,
/// which changes every key, and the orphaned entries age out of the LRU.
enum CacheStore {
    /// This clone owns its cache outright — the zero-lock placement,
    /// with a direct-mapped front over the exact LRU (see
    /// [`FrontedLru`]).
    PerWorker(FrontedLru<Decision>),
    /// All clones share one sharded cache behind per-shard mutexes.
    Shared(Arc<ShardedLru<Decision>>),
}

impl CacheStore {
    fn from_spec(spec: &CacheSpec) -> Result<Self, ServeError> {
        spec.validate()?;
        Ok(match spec.scope {
            CacheScope::PerWorker => CacheStore::PerWorker(FrontedLru::new(spec.capacity)?),
            CacheScope::Shared => CacheStore::Shared(Arc::new(ShardedLru::new(spec)?)),
        })
    }

    #[inline]
    fn get(&mut self, key: CacheKey) -> Option<Decision> {
        match self {
            CacheStore::PerWorker(cache) => cache.get(key),
            CacheStore::Shared(cache) => cache.get(key),
        }
    }

    fn insert(&mut self, key: CacheKey, decision: Decision) {
        match self {
            CacheStore::PerWorker(cache) => cache.insert(key, decision),
            CacheStore::Shared(cache) => cache.insert(key, decision),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            CacheStore::PerWorker(cache) => cache.stats(),
            CacheStore::Shared(cache) => cache.stats(),
        }
    }
}

/// The optional decision cache of one service clone: the validated spec
/// it was built from (clones re-derive per-worker placements from it)
/// plus the placement itself.
struct CacheLayer {
    spec: CacheSpec,
    store: CacheStore,
}

/// The streaming-ingestion state of a service, shared by every clone
/// (transport workers ingest concurrently; the buffer is internally
/// sharded, everything else sits behind its own lock or atomic).
///
/// The **cumulative log** is the heart of the distributed story: remote
/// shards retrain from their own seed copy during a two-phase rebuild
/// and tree splits are global, so every maintenance pass merges the
/// seed with the *full* accept-ordered log and ships that same log to
/// every shard in [`Request::RebuildPrepare`]'s `delta` — each shard
/// merges it deterministically and the fleet stays bit-identical. The
/// log is never truncated on the coordinator; the buffer holds only the
/// records accepted since the last drain.
struct IngestState {
    /// The task ingested labels are interpreted under.
    task: TaskSpec,
    /// Concurrent cell-sharded buffer of records accepted since the
    /// last maintenance drain.
    buffer: DeltaBuffer,
    /// Every record ever accepted, in global accept order — the delta
    /// every maintenance rebuild merges and ships.
    log: Mutex<Vec<IngestRecord>>,
    /// Per-cell statistics of the currently *published* dataset (seed
    /// plus every folded-in record) — what drift is measured against.
    baseline: Mutex<CellStats>,
    /// Baseline awaiting the commit of an in-flight delta prepare (the
    /// shard-role half of the two-phase barrier); an abort drops it.
    pending: Mutex<Option<CellStats>>,
    /// Bit pattern of the last measured drift score, refreshed by
    /// maintenance polls and metrics scrapes.
    drift_bits: AtomicU64,
    /// Serializes maintenance/rebuild passes across service clones.
    maintenance: Mutex<()>,
}

impl IngestState {
    fn drift_score(&self) -> f64 {
        f64::from_bits(self.drift_bits.load(Ordering::Relaxed))
    }

    fn store_drift(&self, score: f64) {
        self.drift_bits.store(score.to_bits(), Ordering::Relaxed);
    }

    /// Undoes a failed maintenance pass: the `drained_len` records most
    /// recently appended to the log go back into the buffer (they are
    /// re-accepted, so they get fresh sequence numbers — the canonical
    /// global order is simply re-decided, identically for every shard,
    /// by whichever pass eventually publishes).
    fn restore_unmerged(&self, drained_len: usize) {
        let tail: Vec<IngestRecord> = {
            let mut log = self.log.lock().expect("ingest log lock poisoned");
            let keep = log.len().saturating_sub(drained_len);
            log.split_off(keep)
        };
        for r in tail {
            let _ = self.buffer.accept(r.x, r.y, r.group, r.label);
        }
    }
}

/// What one shard slot looks like from this service clone: a private
/// [`IndexReader`] over the local shard's handle (the lock-free hot
/// path), or a marker that queries must be forwarded through the
/// topology's boxed backend.
enum ShardSlot {
    Local(IndexReader),
    Remote,
}

/// Which rebuild histogram a shard-phase duration lands in.
#[derive(Clone, Copy)]
enum RebuildPhase {
    Prepare,
    Commit,
    Abort,
}

/// The out-of-bounds error a batch lookup answers, naming the offending
/// point by its index *within the batch* regardless of which shard
/// (local or remote) rejected it.
fn batch_oob(index: usize, wp: &WirePoint) -> Response {
    Response::error(
        ErrorCode::OutOfBounds,
        format!(
            "point #{index} at ({}, {}) is outside the index bounds",
            wp.x, wp.y
        ),
    )
}

/// Best-effort abort fan-out: drops staged rebuild state on every shard
/// of the topology — locals directly, remotes via
/// [`Request::RebuildAbort`]. Abort is idempotent and an unreachable
/// remote is skipped (it has nothing durable to publish anyway), so a
/// coordinator can always call this after a partial prepare failure
/// without leaving a stale staged index behind a live shard.
fn abort_all(topology: &Topology) {
    for backend in topology.backends() {
        match backend.as_local() {
            Some(local) => local.abort(),
            None => {
                let _ = backend.dispatch(&Request::RebuildAbort);
            }
        }
    }
}

/// Dispatches typed protocol requests against a topology of shard
/// backends. See the module docs for the design.
pub struct QueryService {
    topology: Arc<Topology>,
    slots: Vec<ShardSlot>,
    rebuild_dataset: Option<Arc<SpatialDataset>>,
    /// Reusable scratch for batch lookups (converted query points).
    points: Vec<Point>,
    /// Reusable scratch for batch lookups (decisions out).
    decisions: Vec<Decision>,
    /// Optional generation-keyed decision cache over point lookups.
    cache: Option<CacheLayer>,
    /// Optional streaming-ingestion state, shared across clones.
    ingest: Option<Arc<IngestState>>,
    /// This clone's telemetry shard in the registry every clone shares;
    /// `None` only when metrics were explicitly disabled
    /// ([`QueryService::with_metrics`]).
    obs: Option<Recorder<ServiceMetrics>>,
    /// Dispatch counter driving lookup latency sampling; also the
    /// high-water mark the batched lookup count is derived from
    /// (`tick - flushed_tick`), so the fast path pays exactly one
    /// counter bump per lookup.
    tick: u64,
    /// `tick` as of the last counter flush.
    flushed_tick: u64,
    /// `tick & sample_mask == 0` selects the lookups that are timed
    /// (and flush the pending count); always a power of two minus one.
    sample_mask: u64,
    /// Threshold-gated slow-query log; off by default.
    slow: Option<SlowQueryLog>,
}

impl QueryService {
    /// Creates a service over a [`Topology`] (a deprecated
    /// `ShardRouter` converts via `Into`, preserving its replica
    /// semantics), without rebuild support: `Rebuild` requests answer a
    /// structured [`ErrorCode::RebuildUnavailable`] error.
    pub fn new(topology: impl Into<Topology>) -> Self {
        Self::over(Arc::new(topology.into()), None)
    }

    /// Enables spec-driven rebuilds: a `Rebuild{spec}` request retrains
    /// the pipeline on `dataset` and publishes the compiled index to
    /// every shard through the two-phase barrier, and the
    /// `RebuildPrepare` / `RebuildCommit` pair lets an upstream
    /// coordinator drive this service as one shard of *its* fleet.
    #[must_use]
    pub fn with_rebuild(mut self, dataset: Arc<SpatialDataset>) -> Self {
        self.rebuild_dataset = Some(dataset);
        self
    }

    /// Puts a decision cache in front of point lookups, validating the
    /// spec first. Decisions are keyed by (shard, cell, generation), so
    /// hot-swap rebuilds invalidate implicitly — see [`CacheSpec`] for
    /// the placement choices. Only local shards are cached; remote
    /// shards answer behind their own caches.
    pub fn with_cache(mut self, spec: CacheSpec) -> Result<Self, ServeError> {
        let store = CacheStore::from_spec(&spec)?;
        self.cache = Some(CacheLayer { spec, store });
        Ok(self)
    }

    /// The cache configuration, when one is attached.
    pub fn cache_spec(&self) -> Option<&CacheSpec> {
        self.cache.as_ref().map(|layer| &layer.spec)
    }

    /// Enables streaming ingestion: `Ingest` / `IngestBatch` requests
    /// append to a concurrent delta buffer (with live per-cell drift
    /// statistics against the `task` baseline), and
    /// [`QueryService::maintain`] folds the buffer into a full
    /// two-phase rebuild when the policy triggers. Requires a training
    /// dataset ([`QueryService::with_rebuild`] first) — the buffer
    /// validates points against its grid, and maintenance merges into
    /// it.
    pub fn with_ingest(mut self, task: TaskSpec) -> Result<Self, ServeError> {
        let dataset = self
            .rebuild_dataset
            .as_ref()
            .ok_or(ServeError::Ingest(IngestError::MissingDataset))?;
        let baseline = baseline_stats(dataset, &task)?;
        let buffer = DeltaBuffer::new(dataset.grid().clone());
        self.ingest = Some(Arc::new(IngestState {
            task,
            buffer,
            log: Mutex::new(Vec::new()),
            baseline: Mutex::new(baseline),
            pending: Mutex::new(None),
            drift_bits: AtomicU64::new(0),
            maintenance: Mutex::new(()),
        }));
        Ok(self)
    }

    /// Whether streaming ingestion is configured
    /// ([`QueryService::with_ingest`]).
    pub fn ingest_enabled(&self) -> bool {
        self.ingest.is_some()
    }

    /// Telemetry is **on by default** — it is cheap enough to leave on
    /// (the `serving/obs_*` bench suite pins instrumented dispatch at
    /// ≤ 1.10× the uninstrumented path). `false` strips the recorder
    /// entirely: the service dispatches exactly as it did before the
    /// observability layer existed and `Metrics` requests answer the
    /// all-zero snapshot.
    #[must_use]
    pub fn with_metrics(mut self, enabled: bool) -> Self {
        if !enabled {
            self.obs = None;
        } else if self.obs.is_none() {
            let n_shards = self.slots.len();
            self.obs = Some(Registry::new(move || ServiceMetrics::new(n_shards)).recorder());
        }
        self
    }

    /// Times one in `every` point lookups (rounded up to a power of
    /// two; the default is 256). A lookup costs tens of nanoseconds and
    /// two clock reads would dwarf it, so lookup *latency* is sampled
    /// while lookup *counts* stay exact — they are batched locally and
    /// flushed on every sampled lookup, on every non-lookup request,
    /// and on every scrape. `1` times every lookup (the concurrency
    /// tests use this so histogram totals equal request counts).
    #[must_use]
    pub fn with_lookup_sampling(mut self, every: u64) -> Self {
        self.sample_mask = every.max(1).next_power_of_two() - 1;
        self
    }

    /// Installs a slow-query log: any request whose dispatch takes at
    /// least `threshold` is counted (`fsi_slow_queries_total`) and
    /// handed to `sink` as a structured
    /// [`SlowQueryRecord`](crate::SlowQueryRecord). Off by default.
    /// Enabling it forces every lookup to be timed — sampling would
    /// miss slow outliers, which are the whole point of the log.
    #[must_use]
    pub fn with_slow_query_log(mut self, threshold: Duration, sink: SlowQuerySink) -> Self {
        self.slow = Some(SlowQueryLog::new(threshold, sink));
        self.sample_mask = 0;
        self
    }

    fn over(topology: Arc<Topology>, rebuild_dataset: Option<Arc<SpatialDataset>>) -> Self {
        let slots: Vec<ShardSlot> = topology
            .backends()
            .iter()
            .map(|b| match b.as_local() {
                Some(local) => ShardSlot::Local(local.reader()),
                None => ShardSlot::Remote,
            })
            .collect();
        let n_shards = slots.len();
        Self {
            topology,
            slots,
            rebuild_dataset,
            points: Vec::new(),
            decisions: Vec::new(),
            cache: None,
            ingest: None,
            obs: Some(Registry::new(move || ServiceMetrics::new(n_shards)).recorder()),
            tick: 0,
            flushed_tick: 0,
            sample_mask: DEFAULT_SAMPLE_MASK,
            slow: None,
        }
    }

    /// The topology behind this service.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Answers one request. Never panics and never fails at the Rust
    /// level: every failure becomes a [`Response::Error`] with a
    /// machine-readable [`ErrorCode`], so transports can stay thin.
    ///
    /// `#[inline]` so a caller with a statically known request shape
    /// (the benches, the batch loops) folds the variant match away and
    /// builds the `Response` in place instead of memcpying it twice —
    /// without LTO this call is otherwise an opaque cross-crate boundary
    /// on the lookup hot path.
    #[inline]
    pub fn dispatch(&mut self, request: &Request) -> Response {
        if self.obs.is_none() {
            return self.dispatch_inner(request);
        }
        self.dispatch_observed(request)
    }

    /// The raw dispatch match — what [`QueryService::with_metrics`]
    /// `(false)` services run directly.
    #[inline]
    fn dispatch_inner(&mut self, request: &Request) -> Response {
        match request {
            Request::Lookup { x, y } => self.lookup(*x, *y),
            Request::LookupBatch { points } => self.lookup_batch(points),
            Request::RangeQuery { rect } => self.range_query(rect),
            Request::Ingest { x, y, group, label } => self.ingest(*x, *y, *group, *label),
            Request::IngestBatch { points } => self.ingest_batch(points),
            Request::Stats => self.stats(),
            Request::Rebuild { spec } => self.rebuild(spec),
            Request::RebuildPrepare { spec, delta } => self.rebuild_prepare(spec, delta.as_deref()),
            Request::RebuildCommit => self.rebuild_commit(),
            Request::RebuildAbort => self.rebuild_abort(),
            Request::Metrics => self.metrics(),
            Request::Health => self.health(),
        }
    }

    /// Instrumented dispatch. Point lookups keep the hot path cheap by
    /// batching their count and sampling their latency; every other
    /// kind is counted and timed per request. The writer order — count
    /// added **before** the histogram records — pairs with the scrape's
    /// histogram-before-counter read, so a torn concurrent scrape can
    /// only under-report latencies relative to counts, never the
    /// reverse.
    #[inline]
    fn dispatch_observed(&mut self, request: &Request) -> Response {
        if let Request::Lookup { x, y } = request {
            if self.slow.is_none() {
                self.tick = self.tick.wrapping_add(1);
                if self.tick & self.sample_mask != 0 {
                    // Tail call: inspecting the returned `Response` here
                    // would force it through a local (one large-enum
                    // memcpy per lookup, ~25% of the whole dispatch), so
                    // the error counting rides inside `lookup_with`'s
                    // cold arms instead.
                    return self.lookup_with(*x, *y, true);
                }
                return self.sampled_lookup(*x, *y);
            }
        }
        self.dispatch_timed(request)
    }

    /// The error-count side channel of the unsampled lookup fast path.
    /// `#[cold]` keeps it (and the recorder deref) out of the inlined
    /// hot loop — the bench gate holds instrumented dispatch at ≤ 1.10x
    /// the uninstrumented path, and every instruction on the fast path
    /// counts against that budget.
    #[cold]
    fn count_error(&self, code: ErrorCode) {
        if let Some(obs) = &self.obs {
            obs.errors[code_index(code)].inc();
        }
    }

    /// The 1-in-`sample_mask+1` timed lookup: records the latency sample
    /// and flushes the batched count. Out of line for the same reason as
    /// [`Self::count_error`].
    #[inline(never)]
    fn sampled_lookup(&mut self, x: f64, y: f64) -> Response {
        let started = Instant::now();
        let response = self.lookup(x, y);
        let nanos = saturating_nanos(started.elapsed());
        let pend = self.take_pending();
        let obs = self.obs.as_ref().expect("dispatch checked obs");
        obs.requests[K_LOOKUP].add(pend);
        obs.latency[K_LOOKUP].record(nanos);
        if let Response::Error { error } = &response {
            obs.errors[code_index(error.code)].inc();
        }
        response
    }

    /// Per-request counting and timing for every non-fast-path request
    /// (all non-lookup kinds, and every request once a slow-query log
    /// forces full timing).
    #[inline(never)]
    fn dispatch_timed(&mut self, request: &Request) -> Response {
        let kind = kind_index(request);
        let started = Instant::now();
        let response = self.dispatch_inner(request);
        let nanos = saturating_nanos(started.elapsed());
        let pend = self.take_pending();
        let obs = self.obs.as_ref().expect("dispatch checked obs");
        if pend > 0 {
            obs.requests[K_LOOKUP].add(pend);
        }
        obs.requests[kind].inc();
        obs.latency[kind].record(nanos);
        if let Response::Error { error } = &response {
            obs.errors[code_index(error.code)].inc();
        }
        if let Some(slow) = &self.slow {
            if nanos >= slow.threshold_nanos {
                obs.slow_queries.inc();
                slow.emit(KINDS[kind], nanos);
            }
        }
        response
    }

    /// Flushes the batched lookup count into the recorder, so a scrape
    /// reads exact totals.
    fn flush_pending(&mut self) {
        let pend = self.take_pending();
        if pend > 0 {
            if let Some(obs) = &self.obs {
                obs.requests[K_LOOKUP].add(pend);
            }
        }
    }

    /// Lookups dispatched since the last flush (the `tick` delta),
    /// resetting the window.
    #[inline]
    fn take_pending(&mut self) -> u64 {
        let pend = self.tick.wrapping_sub(self.flushed_tick);
        self.flushed_tick = self.tick;
        pend
    }

    /// Forwards one request to the backend of a remote shard slot,
    /// timing the round-trip and counting transport failures into the
    /// per-shard telemetry. An `internal`-code failure additionally
    /// gains the shard index and address in its message, so a
    /// multi-shard fleet's transport errors are attributable from the
    /// error body alone; every other code (out-of-bounds, not-prepared,
    /// …) passes through untouched — those are the shard's own answers,
    /// not transport context.
    fn remote_dispatch(&self, shard: usize, request: &Request) -> Response {
        let backend = &self.topology.backends()[shard];
        let Some(obs) = &self.obs else {
            return backend.dispatch(request);
        };
        let started = Instant::now();
        let response = backend.dispatch(request);
        let nanos = saturating_nanos(started.elapsed());
        let sm = &obs.shards[shard];
        sm.requests.inc();
        sm.round_trip.record(nanos);
        match response {
            Response::Error { error } if error.code == ErrorCode::Internal => {
                sm.failures.inc();
                let addr = backend
                    .descriptor()
                    .addr
                    .unwrap_or_else(|| "<no addr>".into());
                Response::error(
                    ErrorCode::Internal,
                    format!("shard {shard} at {addr}: {}", error.message),
                )
            }
            other => other,
        }
    }

    /// Fans one request out to the given remote shard slots
    /// concurrently — scoped threads, one per shard, the same shape the
    /// two-phase prepare fan-out uses — and returns each shard's
    /// response paired with its slot index, in input order. Telemetry
    /// matches the sequential [`remote_dispatch`](Self::remote_dispatch)
    /// path exactly: per-shard request counters and round-trip
    /// histograms, transport failures counted, and `internal`-code
    /// errors gaining the shard index and address. With zero or one
    /// shard the scope is skipped entirely, so single-remote topologies
    /// pay no thread-spawn cost.
    fn remote_fanout(&self, shards: &[usize], request: &Request) -> Vec<(usize, Response)> {
        if shards.len() <= 1 {
            return shards
                .iter()
                .map(|&shard| (shard, self.remote_dispatch(shard, request)))
                .collect();
        }
        let backends = self.topology.backends();
        let timed: Vec<(usize, Response, Duration)> = std::thread::scope(|scope| {
            let workers: Vec<_> = shards
                .iter()
                .map(|&i| {
                    let backend = &backends[i];
                    scope.spawn(move || {
                        let started = Instant::now();
                        let response = backend.dispatch(request);
                        (i, response, started.elapsed())
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("fan-out worker panicked"))
                .collect()
        });
        timed
            .into_iter()
            .map(|(i, response, elapsed)| {
                let Some(obs) = &self.obs else {
                    return (i, response);
                };
                let sm = &obs.shards[i];
                sm.requests.inc();
                sm.round_trip.record(saturating_nanos(elapsed));
                let response = match response {
                    Response::Error { error } if error.code == ErrorCode::Internal => {
                        sm.failures.inc();
                        let addr = backends[i]
                            .descriptor()
                            .addr
                            .unwrap_or_else(|| "<no addr>".into());
                        Response::error(
                            ErrorCode::Internal,
                            format!("shard {i} at {addr}: {}", error.message),
                        )
                    }
                    other => other,
                };
                (i, response)
            })
            .collect()
    }

    /// [`Self::remote_fanout`] with a *different* request per shard —
    /// the shape batched lookups need, where each shard receives its
    /// own sub-batch. Same concurrency (scoped threads, one per job),
    /// same telemetry, same single-job fast path that skips the scope.
    fn remote_fanout_each(&self, jobs: Vec<(usize, Request)>) -> Vec<(usize, Response)> {
        if jobs.len() <= 1 {
            return jobs
                .into_iter()
                .map(|(shard, request)| {
                    let response = self.remote_dispatch(shard, &request);
                    (shard, response)
                })
                .collect();
        }
        let backends = self.topology.backends();
        let timed: Vec<(usize, Response, Duration)> = std::thread::scope(|scope| {
            let workers: Vec<_> = jobs
                .iter()
                .map(|(i, request)| {
                    let i = *i;
                    let backend = &backends[i];
                    scope.spawn(move || {
                        let started = Instant::now();
                        let response = backend.dispatch(request);
                        (i, response, started.elapsed())
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("fan-out worker panicked"))
                .collect()
        });
        timed
            .into_iter()
            .map(|(i, response, elapsed)| {
                let Some(obs) = &self.obs else {
                    return (i, response);
                };
                let sm = &obs.shards[i];
                sm.requests.inc();
                sm.round_trip.record(saturating_nanos(elapsed));
                let response = match response {
                    Response::Error { error } if error.code == ErrorCode::Internal => {
                        sm.failures.inc();
                        let addr = backends[i]
                            .descriptor()
                            .addr
                            .unwrap_or_else(|| "<no addr>".into());
                        Response::error(
                            ErrorCode::Internal,
                            format!("shard {i} at {addr}: {}", error.message),
                        )
                    }
                    other => other,
                };
                (i, response)
            })
            .collect()
    }

    #[inline]
    fn lookup(&mut self, x: f64, y: f64) -> Response {
        self.lookup_with(x, y, false)
    }

    /// Point lookup. `count_errors` additionally bumps the per-code
    /// error counter in the (cold) error arms — the instrumented fast
    /// path passes `true` so its caller can return this tail call
    /// as-is instead of inspecting (and memcpying) the response; every
    /// other caller passes `false` and counts at its own layer. The
    /// flag is a compile-time constant at each inlined call site.
    #[inline]
    fn lookup_with(&mut self, x: f64, y: f64, count_errors: bool) -> Response {
        let p = Point::new(x, y);
        // Single-shard fast path: the index's (or the remote's) own
        // bounds check makes the routing step redundant.
        let shard = if self.slots.len() == 1 {
            Some(0)
        } else {
            self.topology.shard_of(&p)
        };
        let decision = match shard {
            Some(shard) => {
                if matches!(self.slots[shard], ShardSlot::Remote) {
                    let response = self.remote_dispatch(shard, &Request::Lookup { x, y });
                    if count_errors {
                        if let Response::Error { error } = &response {
                            self.count_error(error.code);
                        }
                    }
                    return response;
                }
                if self.cache.is_some() {
                    self.cached_decision(shard, &p)
                } else {
                    match &mut self.slots[shard] {
                        ShardSlot::Local(reader) => reader.snapshot().lookup(&p),
                        ShardSlot::Remote => None,
                    }
                }
            }
            None => None,
        };
        match decision {
            Some(decision) => Response::Decision {
                decision: decision.into(),
            },
            None => {
                if count_errors {
                    self.count_error(ErrorCode::OutOfBounds);
                }
                Response::error(
                    ErrorCode::OutOfBounds,
                    format!("point ({x}, {y}) is outside the served map bounds"),
                )
            }
        }
    }

    /// The decision for `p` through the cache; `None` means out of
    /// bounds. Only called with a cache configured and a local `shard`.
    ///
    /// A hit costs the cell computation (the same two divisions the
    /// uncached path pays) plus one hash probe — the tree traversal and
    /// decision assembly are skipped. A miss additionally resolves the
    /// cell through the index and fills the entry, so cold traffic pays
    /// one probe over the uncached path.
    #[inline]
    fn cached_decision(&mut self, shard: usize, p: &Point) -> Option<Decision> {
        let ShardSlot::Local(reader) = &mut self.slots[shard] else {
            // Callers forward remote shards before the cache layer.
            return None;
        };
        let (index, generation) = reader.snapshot_with_generation();
        let cell = index.cell_index(p)?;
        // The shard id rides in the key's high bits: each shard's handle
        // numbers its own generations, so (cell, generation) alone could
        // collide across shards that published different indexes.
        debug_assert!(cell < 1 << 48, "cell id exceeds the shard-packing range");
        let key = CacheKey::new((shard as u64) << 48 | cell, generation);
        let cache = self.cache.as_mut().expect("caller checked cache.is_some()");
        if let Some(decision) = cache.store.get(key) {
            if let Some(obs) = &self.obs {
                obs.cache_hits.inc();
            }
            return Some(decision);
        }
        let decision = index.lookup_cell(cell)?;
        cache.store.insert(key, decision);
        if let Some(obs) = &self.obs {
            obs.cache_misses.inc();
        }
        Some(decision)
    }

    fn lookup_batch(&mut self, points: &[WirePoint]) -> Response {
        // Cached: every local point goes through the same per-point
        // cache path as single lookups, so batch and single answers (and
        // counters) cannot diverge; remote points forward point-wise.
        if self.cache.is_some() {
            self.decisions.clear();
            self.decisions.reserve(points.len());
            for (i, wp) in points.iter().enumerate() {
                let p = Point::new(wp.x, wp.y);
                let shard = if self.slots.len() == 1 {
                    Some(0)
                } else {
                    self.topology.shard_of(&p)
                };
                let Some(shard) = shard else {
                    self.decisions.clear();
                    return batch_oob(i, wp);
                };
                if matches!(self.slots[shard], ShardSlot::Remote) {
                    match self.remote_dispatch(shard, &Request::Lookup { x: wp.x, y: wp.y }) {
                        Response::Decision { decision } => self.decisions.push(decision.into()),
                        Response::Error { error } if error.code == ErrorCode::OutOfBounds => {
                            self.decisions.clear();
                            return batch_oob(i, wp);
                        }
                        Response::Error { error } => {
                            self.decisions.clear();
                            return Response::Error { error };
                        }
                        _ => {
                            self.decisions.clear();
                            return Response::error(
                                ErrorCode::Internal,
                                format!("shard {shard} answered an unexpected lookup response"),
                            );
                        }
                    }
                    continue;
                }
                match self.cached_decision(shard, &p) {
                    Some(d) => self.decisions.push(d),
                    None => {
                        self.decisions.clear();
                        return batch_oob(i, wp);
                    }
                }
            }
            return Response::Decisions {
                decisions: self.decisions.iter().map(|&d| d.into()).collect(),
            };
        }
        // Single local shard: feed the whole batch through the frozen
        // index's buffer-reusing batch path.
        if self.slots.len() == 1 {
            if let ShardSlot::Local(_) = self.slots[0] {
                self.points.clear();
                self.points
                    .extend(points.iter().map(|p| Point::new(p.x, p.y)));
                let ShardSlot::Local(reader) = &mut self.slots[0] else {
                    unreachable!("checked above");
                };
                let index = reader.snapshot();
                return match index.lookup_batch(&self.points, &mut self.decisions) {
                    Ok(()) => Response::Decisions {
                        decisions: self.decisions.iter().map(|&d| d.into()).collect(),
                    },
                    Err(e) => Response::error(ErrorCode::OutOfBounds, e.to_string()),
                };
            }
        }
        // Scatter-gather: local points answer inline, remote points are
        // bucketed per shard and forwarded as sub-batches, and every
        // answer lands back at its original batch position.
        let mut out: Vec<Option<DecisionBody>> = vec![None; points.len()];
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.slots.len()];
        for (i, wp) in points.iter().enumerate() {
            let p = Point::new(wp.x, wp.y);
            let shard = if self.slots.len() == 1 {
                Some(0)
            } else {
                self.topology.shard_of(&p)
            };
            let Some(shard) = shard else {
                return batch_oob(i, wp);
            };
            match &mut self.slots[shard] {
                ShardSlot::Local(reader) => match reader.snapshot().lookup(&p) {
                    Some(d) => out[i] = Some(d.into()),
                    None => return batch_oob(i, wp),
                },
                ShardSlot::Remote => buckets[shard].push(i),
            }
        }
        // The per-shard sub-batches fan out concurrently — one scoped
        // thread per shard, like every other scatter — instead of
        // paying the shards' round-trips back to back.
        let jobs: Vec<(usize, Request)> = buckets
            .iter()
            .enumerate()
            .filter(|(_, bucket)| !bucket.is_empty())
            .map(|(shard, bucket)| {
                let sub: Vec<WirePoint> = bucket.iter().map(|&i| points[i]).collect();
                (shard, Request::LookupBatch { points: sub })
            })
            .collect();
        for (shard, response) in self.remote_fanout_each(jobs) {
            let bucket = &buckets[shard];
            match response {
                Response::Decisions { decisions } if decisions.len() == bucket.len() => {
                    for (&i, d) in bucket.iter().zip(decisions) {
                        out[i] = Some(d);
                    }
                }
                Response::Error { error } if error.code == ErrorCode::OutOfBounds => {
                    // The remote names the offender by its *sub-batch*
                    // index; re-localize to the original batch position
                    // by probing the bucket point-wise.
                    for &i in bucket {
                        let wp = &points[i];
                        if matches!(
                            self.remote_dispatch(shard, &Request::Lookup { x: wp.x, y: wp.y }),
                            Response::Error { .. }
                        ) {
                            return batch_oob(i, wp);
                        }
                    }
                    return Response::Error { error };
                }
                Response::Error { error } => return Response::Error { error },
                _ => {
                    return Response::error(
                        ErrorCode::Internal,
                        format!("shard {shard} answered an unexpected batch response"),
                    )
                }
            }
        }
        Response::Decisions {
            decisions: out
                .into_iter()
                .map(|d| d.expect("every routed point was answered"))
                .collect(),
        }
    }

    /// The error an ingest answers on a service built without
    /// [`QueryService::with_ingest`].
    fn ingest_unavailable() -> Response {
        Response::error(
            ErrorCode::RebuildUnavailable,
            "this service was built without streaming ingestion; \
             construct it with a training dataset and task",
        )
    }

    /// The `Ingested` acknowledgement: this request's accept count, the
    /// coordinator buffer's occupancy, and the newest generation of the
    /// *local* shards (remote generations would cost a round-trip per
    /// write; they move in lockstep under the two-phase barrier anyway).
    fn ingested(&self, state: &IngestState, accepted: u64) -> Response {
        let mut generation = 0;
        for backend in self.topology.backends() {
            if let Some(local) = backend.as_local() {
                generation = generation.max(local.handle().generation());
            }
        }
        Response::Ingested {
            accepted,
            buffered: state.buffer.occupancy(),
            generation,
        }
    }

    /// One streamed observation. Out-of-bounds points are a structured
    /// error (mirroring `Lookup`); accepted points land in the
    /// coordinator's buffer *and* are forwarded to the owning remote
    /// shard so its own occupancy and drift telemetry see the traffic.
    /// The forward is advisory — the coordinator's log is the one
    /// source of truth for maintenance, so a shard without ingestion
    /// configured simply declines without affecting the accept.
    fn ingest(&mut self, x: f64, y: f64, group: u32, label: bool) -> Response {
        let Some(state) = self.ingest.as_ref().map(Arc::clone) else {
            return Self::ingest_unavailable();
        };
        if state.buffer.accept(x, y, group, label).is_none() {
            return Response::error(
                ErrorCode::OutOfBounds,
                format!("point ({x}, {y}) is outside the served map bounds"),
            );
        }
        if self.slots.len() > 1 {
            if let Some(shard) = self.topology.shard_of(&Point::new(x, y)) {
                if matches!(self.slots[shard], ShardSlot::Remote) {
                    let _ = self.remote_dispatch(shard, &Request::Ingest { x, y, group, label });
                }
            }
        }
        self.ingested(&state, 1)
    }

    /// The bulk write path: accepts in request order (so the global
    /// sequence matches the batch), buckets remote-owned points per
    /// shard and forwards the sub-batches — the same scatter shape as
    /// [`Self::lookup_batch`], minus the gather (the coordinator's own
    /// buffer already holds every point). Out-of-bounds points are
    /// skipped, not fatal: `accepted` reports how many landed and the
    /// rejected tally is scraped via the ingest telemetry.
    fn ingest_batch(&mut self, points: &[IngestBody]) -> Response {
        let Some(state) = self.ingest.as_ref().map(Arc::clone) else {
            return Self::ingest_unavailable();
        };
        let mut accepted = 0u64;
        let mut buckets: Vec<Vec<IngestBody>> = vec![Vec::new(); self.slots.len()];
        for b in points {
            if state.buffer.accept(b.x, b.y, b.group, b.label).is_none() {
                continue;
            }
            accepted += 1;
            if self.slots.len() > 1 {
                if let Some(shard) = self.topology.shard_of(&Point::new(b.x, b.y)) {
                    if matches!(self.slots[shard], ShardSlot::Remote) {
                        buckets[shard].push(*b);
                    }
                }
            }
        }
        for (shard, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let _ = self.remote_dispatch(
                shard,
                &Request::IngestBatch {
                    points: bucket.clone(),
                },
            );
        }
        self.ingested(&state, accepted)
    }

    fn range_query(&mut self, rect: &fsi_proto::WireRect) -> Response {
        let query = match Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y) {
            Ok(query) => query,
            Err(e) => return Response::error(ErrorCode::MalformedRequest, e.to_string()),
        };
        let shards = self.topology.covering(&query);
        let mut ids: Vec<usize> = Vec::new();
        let mut remote: Vec<usize> = Vec::new();
        for shard in shards {
            if let ShardSlot::Local(reader) = &mut self.slots[shard] {
                ids.extend(reader.snapshot().range_query(&query));
            } else {
                remote.push(shard);
            }
        }
        let request = Request::RangeQuery { rect: *rect };
        for (shard, response) in self.remote_fanout(&remote, &request) {
            match response {
                Response::Regions { ids: shard_ids } => ids.extend(shard_ids),
                Response::Error { error } => return Response::Error { error },
                _ => {
                    return Response::error(
                        ErrorCode::Internal,
                        format!("shard {shard} answered an unexpected range response"),
                    )
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        Response::Regions { ids }
    }

    fn stats(&mut self) -> Response {
        self.flush_pending();
        let cache = self.cache.as_ref().map(|layer| {
            let s = layer.store.stats();
            CacheStatsBody {
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                entries: s.len,
                capacity: s.capacity,
            }
        });
        let mut per_shard: Vec<Option<ShardStatsBody>> = Vec::with_capacity(self.slots.len());
        let mut remote: Vec<usize> = Vec::new();
        for shard in 0..self.slots.len() {
            let d = self.topology.backends()[shard].descriptor();
            if let ShardSlot::Local(reader) = &mut self.slots[shard] {
                let (index, generation) = reader.snapshot_with_generation();
                per_shard.push(Some(ShardStatsBody {
                    kind: d.kind.to_string(),
                    addr: d.addr,
                    generation,
                    num_leaves: index.num_leaves(),
                    heap_bytes: index.heap_bytes(),
                    backend: index.backend_name().to_string(),
                    unreachable: None,
                    error: None,
                }));
            } else {
                per_shard.push(None);
                remote.push(shard);
            }
        }
        for (shard, response) in self.remote_fanout(&remote, &Request::Stats) {
            let d = self.topology.backends()[shard].descriptor();
            per_shard[shard] = Some(match response {
                Response::Stats { stats } => ShardStatsBody {
                    kind: d.kind.to_string(),
                    addr: d.addr,
                    generation: stats.generations.first().copied().unwrap_or(0),
                    num_leaves: stats.num_leaves,
                    heap_bytes: stats.heap_bytes,
                    backend: stats.backend,
                    unreachable: None,
                    error: None,
                },
                // Graceful degradation: a dead shard marks its own row
                // instead of failing the whole scatter-gather, so the
                // live part of the fleet still reports.
                other => ShardStatsBody {
                    kind: d.kind.to_string(),
                    addr: d.addr,
                    generation: 0,
                    num_leaves: 0,
                    heap_bytes: 0,
                    backend: "unreachable".to_string(),
                    unreachable: Some(true),
                    error: Some(match other {
                        Response::Error { error } => error.message,
                        _ => format!("shard {shard} answered an unexpected stats response"),
                    }),
                },
            });
        }
        let per_shard: Vec<ShardStatsBody> = per_shard
            .into_iter()
            .map(|body| body.expect("every shard slot answered stats"))
            .collect();
        let generations = per_shard.iter().map(|s| s.generation).collect();
        // Shard-0 convention for the flat summary fields, kept from the
        // replica era so v1 clients keep decoding something sensible;
        // topology-aware clients read `per_shard`.
        let first = &per_shard[0];
        Response::Stats {
            stats: Box::new(StatsBody {
                shards: self.slots.len(),
                generations,
                num_leaves: first.num_leaves,
                heap_bytes: first.heap_bytes,
                backend: first.backend.clone(),
                cache,
                per_shard: Some(per_shard),
                // The answering worker's merged local snapshot (no
                // remote scatter-gather — that is what `Metrics` is
                // for); absent when metrics are disabled, exactly like
                // a pre-observability peer's stats.
                metrics: self.obs.is_some().then(|| Box::new(self.snapshot_body())),
                health: Some(Box::new(self.health_body())),
            }),
        }
    }

    /// The fleet health picture, answered entirely from
    /// coordinator-local state — replica-set breaker atomics for
    /// resilient slots, a synthesized `"up"` row for plain backends —
    /// with **no** scatter-gather, so it stays cheap enough to poll
    /// aggressively during the very outage it is reporting on.
    fn health_body(&self) -> HealthBody {
        let shards = self
            .topology
            .backends()
            .iter()
            .enumerate()
            .map(|(shard, b)| match b.health() {
                Some(mut h) => {
                    h.shard = shard;
                    h
                }
                None => {
                    let d = b.descriptor();
                    ShardHealthBody {
                        shard,
                        kind: d.kind.to_string(),
                        addr: d.addr,
                        state: "up".to_string(),
                        replicas: Vec::new(),
                    }
                }
            })
            .collect();
        HealthBody { shards }
    }

    /// Answer to [`Request::Health`].
    fn health(&mut self) -> Response {
        Response::Health {
            health: Box::new(self.health_body()),
        }
    }

    /// Answer to [`Request::Metrics`]: the worker-merged snapshot of
    /// this service's registry, with each remote shard's own snapshot
    /// scatter-gathered into
    /// [`ShardObsBody::remote`](fsi_proto::ShardObsBody) so one scrape
    /// of the coordinator sees the whole fleet.
    fn metrics(&mut self) -> Response {
        self.flush_pending();
        let mut body = self.snapshot_body();
        if self.obs.is_some() {
            let remote: Vec<usize> = (0..self.slots.len())
                .filter(|&shard| matches!(self.slots[shard], ShardSlot::Remote))
                .collect();
            for (shard, response) in self.remote_fanout(&remote, &Request::Metrics) {
                if let Response::Metrics { metrics } = response {
                    body.shards[shard].remote = Some(metrics);
                }
            }
        }
        Response::Metrics {
            metrics: Box::new(body),
        }
    }

    /// The merged telemetry snapshot of every worker clone sharing this
    /// service's registry — counts summed, histograms merged, the
    /// generation gauge folded with the live local shard generations.
    /// Purely local: remote shards appear with the coordinator-side
    /// view only (`remote: None`); dispatch a [`Request::Metrics`] for
    /// the scatter-gathered fleet snapshot. Unflushed batched lookup
    /// counts from *other* clones may lag by up to the sampling
    /// interval; this clone's are flushed first.
    pub fn metrics_snapshot(&mut self) -> MetricsBody {
        self.flush_pending();
        self.snapshot_body()
    }

    fn snapshot_body(&self) -> MetricsBody {
        let Some(obs) = &self.obs else {
            return MetricsBody::empty();
        };
        let fold = MetricsFold::collect(obs.registry(), self.slots.len());
        let mut generation = fold.generation;
        for backend in self.topology.backends() {
            if let Some(local) = backend.as_local() {
                generation = generation.max(local.handle().generation());
            }
        }
        // Hit/miss totals come from the recorder (folded across every
        // worker, which a per-worker store cannot report); eviction and
        // occupancy figures from this clone's store, like `stats()`.
        let cache = self.cache.as_ref().map(|layer| {
            let s = layer.store.stats();
            CacheStatsBody {
                hits: fold.cache_hits,
                misses: fold.cache_misses,
                evictions: s.evictions,
                entries: s.len,
                capacity: s.capacity,
            }
        });
        // A scrape re-measures drift so the gauge is live even when no
        // maintenance thread is polling; the stored bits are the
        // fallback if the baseline shape ever disagrees mid-swap.
        let ingest = self.ingest.as_ref().map(|state| {
            let score = {
                let baseline = state.baseline.lock().expect("baseline lock poisoned");
                DriftDetector::new()
                    .measure(&baseline, &state.buffer)
                    .map(|r| r.score)
                    .unwrap_or_else(|_| state.drift_score())
            };
            state.store_drift(score);
            fsi_proto::IngestObsBody {
                accepted: state.buffer.accepted(),
                rejected: state.buffer.rejected(),
                buffered: state.buffer.occupancy(),
                drift_score: score,
                maintenance: fold.maintenance.clone(),
            }
        });
        let shards = fold
            .shards
            .into_iter()
            .enumerate()
            .map(|(shard, sf)| {
                let backend = &self.topology.backends()[shard];
                let d = backend.descriptor();
                let transport = backend.transport_stats().unwrap_or_default();
                ShardObsBody {
                    shard,
                    kind: d.kind.to_string(),
                    addr: d.addr,
                    requests: sf.requests,
                    failures: sf.failures,
                    reconnects: transport.reconnects,
                    round_trip: sf.round_trip,
                    remote: None,
                    replicas: backend.health().map(|h| h.replicas),
                }
            })
            .collect();
        MetricsBody {
            requests: KINDS
                .iter()
                .zip(fold.requests)
                .zip(fold.latency)
                .map(|((kind, count), latency)| RequestKindMetrics {
                    kind: (*kind).to_string(),
                    count,
                    latency,
                })
                .collect(),
            errors: crate::obs::CODES
                .iter()
                .zip(fold.errors)
                .filter(|(_, count)| *count > 0)
                .map(|(code, count)| ErrorCountBody { code: *code, count })
                .collect(),
            slow_queries: fold.slow_queries,
            generation,
            cache,
            shards,
            rebuild: RebuildObsBody {
                prepare: fold.prepare,
                commit: fold.commit,
                abort: fold.abort,
            },
            http: None,
            ingest,
        }
    }

    /// Retrains on the rebuild dataset, mapping failures to structured
    /// protocol errors.
    fn build_from_spec(&self, spec: &PipelineSpec) -> Result<(FrozenIndex, MethodRun), Response> {
        let Some(dataset) = self.rebuild_dataset.clone() else {
            return Err(Response::error(
                ErrorCode::RebuildUnavailable,
                "this service was built without a training dataset; rebuilds are disabled",
            ));
        };
        match build_index(&dataset, spec) {
            Ok(built) => Ok(built),
            Err(crate::ServeError::Pipeline(fsi_pipeline::PipelineError::InvalidConfig(msg))) => {
                Err(Response::error(ErrorCode::InvalidSpec, msg))
            }
            Err(e) => Err(Response::error(ErrorCode::Internal, e.to_string())),
        }
    }

    /// The two-phase publish barrier behind `Rebuild`: stage the global
    /// `index` on every local shard and fan `RebuildPrepare` out to
    /// every remote shard (in parallel — remote prepares retrain and
    /// pay real wall-clock); only when *every* shard holds a staged
    /// index are the commits issued. Any prepare failure aborts all
    /// staged state and leaves the old generation serving everywhere.
    /// A maintenance pass threads the full ingest log through `delta`
    /// so every remote shard retrains on the identical merged dataset;
    /// plain rebuilds pass `None`.
    fn publish_two_phase(
        &self,
        index: &FrozenIndex,
        spec: &PipelineSpec,
        delta: Option<&[IngestBody]>,
    ) -> Result<u64, Response> {
        let backends = self.topology.backends();
        for (i, b) in backends.iter().enumerate() {
            if let Some(local) = b.as_local() {
                let started = Instant::now();
                let staged = local.stage(index);
                self.record_rebuild_phase(RebuildPhase::Prepare, started);
                if let Err(e) = staged {
                    self.abort_all_timed();
                    return Err(Response::error(
                        ErrorCode::Internal,
                        format!("shard {i} failed to stage: {e}"),
                    ));
                }
            }
        }
        let remotes: Vec<usize> = backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.as_local().is_none())
            .map(|(i, _)| i)
            .collect();
        let prepares: Vec<(usize, Response, Duration)> = std::thread::scope(|scope| {
            let workers: Vec<_> = remotes
                .iter()
                .map(|&i| {
                    let backend = &backends[i];
                    let spec = spec.clone();
                    let delta = delta.map(<[IngestBody]>::to_vec);
                    scope.spawn(move || {
                        let started = Instant::now();
                        let response = backend.dispatch(&Request::RebuildPrepare { spec, delta });
                        (i, response, started.elapsed())
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("prepare worker panicked"))
                .collect()
        });
        for (i, response, elapsed) in prepares {
            if let Some(obs) = &self.obs {
                obs.rebuild_prepare.record(saturating_nanos(elapsed));
            }
            match response {
                Response::Prepared { .. } => {}
                Response::Error { error } => {
                    self.abort_all_timed();
                    return Err(Response::error(
                        error.code,
                        format!("shard {i} failed to prepare: {}", error.message),
                    ));
                }
                _ => {
                    self.abort_all_timed();
                    return Err(Response::error(
                        ErrorCode::Internal,
                        format!("shard {i} answered an unexpected prepare response"),
                    ));
                }
            }
        }
        let mut newest = 0;
        for (i, b) in backends.iter().enumerate() {
            let started = Instant::now();
            let generation = match b.as_local() {
                Some(local) => {
                    let committed = local.commit();
                    self.record_rebuild_phase(RebuildPhase::Commit, started);
                    committed.map_err(|e| {
                        Response::error(
                            ErrorCode::Internal,
                            format!("shard {i} failed to commit: {e}"),
                        )
                    })?
                }
                None => {
                    let response = b.dispatch(&Request::RebuildCommit);
                    self.record_rebuild_phase(RebuildPhase::Commit, started);
                    match response {
                        Response::Committed { generation } => generation,
                        Response::Error { error } => {
                            return Err(Response::error(
                                error.code,
                                format!("shard {i} failed to commit: {}", error.message),
                            ))
                        }
                        _ => {
                            return Err(Response::error(
                                ErrorCode::Internal,
                                format!("shard {i} answered an unexpected commit response"),
                            ))
                        }
                    }
                }
            };
            newest = newest.max(generation);
        }
        if let Some(obs) = &self.obs {
            obs.generation.raise(newest);
        }
        Ok(newest)
    }

    /// Records one shard-phase duration into the rebuild histograms.
    fn record_rebuild_phase(&self, phase: RebuildPhase, started: Instant) {
        if let Some(obs) = &self.obs {
            let nanos = saturating_nanos(started.elapsed());
            match phase {
                RebuildPhase::Prepare => obs.rebuild_prepare.record(nanos),
                RebuildPhase::Commit => obs.rebuild_commit.record(nanos),
                RebuildPhase::Abort => obs.rebuild_abort.record(nanos),
            }
        }
    }

    /// The abort fan-out, timed per shard into the rebuild telemetry.
    fn abort_all_timed(&self) {
        if self.obs.is_none() {
            abort_all(&self.topology);
            return;
        }
        for backend in self.topology.backends() {
            let started = Instant::now();
            match backend.as_local() {
                Some(local) => local.abort(),
                None => {
                    let _ = backend.dispatch(&Request::RebuildAbort);
                }
            }
            self.record_rebuild_phase(RebuildPhase::Abort, started);
        }
    }

    fn rebuild(&mut self, spec: &PipelineSpec) -> Response {
        let started = Instant::now();
        // With ingestion configured, a manual rebuild behaves like a
        // forced maintenance pass: drain, merge the full log, publish
        // with the delta — otherwise the published index would silently
        // forget every streamed point.
        if self.ingest.is_some() {
            return self.rebuild_merged(spec, started);
        }
        let (index, run) = match self.build_from_spec(spec) {
            Ok(built) => built,
            Err(response) => return response,
        };
        let num_leaves = index.num_leaves();
        let generation = match self.publish_two_phase(&index, spec, None) {
            Ok(generation) => generation,
            Err(response) => return response,
        };
        Response::Rebuilt {
            report: Box::new(RebuildReport {
                spec: spec.clone(),
                generation,
                num_leaves,
                ence: run.eval.full.ence,
                build_time: run.build_time,
                total_time: started.elapsed(),
            }),
        }
    }

    /// The incremental-maintenance rebuild: drain the buffer into the
    /// cumulative log, retrain on `seed + log`, and drive the two-phase
    /// barrier with the full log as the delta. On any failure the
    /// drained records are restored (nothing accepted is ever lost) and
    /// the old generation keeps serving.
    fn rebuild_merged(&mut self, spec: &PipelineSpec, started: Instant) -> Response {
        let state = Arc::clone(self.ingest.as_ref().expect("caller checked ingest"));
        let _guard = state.maintenance.lock().expect("maintenance lock poisoned");
        let Some(seed) = self.rebuild_dataset.clone() else {
            return Response::error(
                ErrorCode::RebuildUnavailable,
                "this service was built without a training dataset; rebuilds are disabled",
            );
        };
        let drained = state.buffer.drain();
        let drained_len = drained.len();
        let log: Vec<IngestRecord> = {
            let mut log = state.log.lock().expect("ingest log lock poisoned");
            log.extend(drained);
            log.clone()
        };
        let merged = match merge_dataset(&seed, &state.task, &log) {
            Ok(merged) => merged,
            Err(e) => {
                state.restore_unmerged(drained_len);
                return Response::error(ErrorCode::Internal, format!("delta merge failed: {e}"));
            }
        };
        let (index, run) = match build_index(&merged, spec) {
            Ok(built) => built,
            Err(crate::ServeError::Pipeline(fsi_pipeline::PipelineError::InvalidConfig(msg))) => {
                state.restore_unmerged(drained_len);
                return Response::error(ErrorCode::InvalidSpec, msg);
            }
            Err(e) => {
                state.restore_unmerged(drained_len);
                return Response::error(ErrorCode::Internal, e.to_string());
            }
        };
        let refreshed = match baseline_stats(&merged, &state.task) {
            Ok(refreshed) => refreshed,
            Err(e) => {
                state.restore_unmerged(drained_len);
                return Response::error(ErrorCode::Internal, e.to_string());
            }
        };
        let delta: Vec<IngestBody> = log.iter().map(|r| r.to_wire()).collect();
        let num_leaves = index.num_leaves();
        match self.publish_two_phase(&index, spec, Some(&delta)) {
            Ok(generation) => {
                *state.baseline.lock().expect("baseline lock poisoned") = refreshed;
                state.store_drift(0.0);
                Response::Rebuilt {
                    report: Box::new(RebuildReport {
                        spec: spec.clone(),
                        generation,
                        num_leaves,
                        ence: run.eval.full.ence,
                        build_time: run.build_time,
                        total_time: started.elapsed(),
                    }),
                }
            }
            Err(response) => {
                state.restore_unmerged(drained_len);
                response
            }
        }
    }

    /// One maintenance poll: measure drift against the frozen baseline,
    /// check the policy's triggers, and — when one fires — fold the
    /// buffer into a full two-phase rebuild. Returns the new generation
    /// when a rebuild published, `None` when nothing was due. The
    /// background driver ([`crate::MaintenanceHandle`]) calls this on
    /// the policy's poll cadence; callers can also invoke it directly
    /// for deterministic tests.
    pub fn maintain(
        &mut self,
        policy: &MaintenanceSpec,
        spec: &PipelineSpec,
    ) -> Result<Option<u64>, ServeError> {
        let Some(state) = self.ingest.as_ref().map(Arc::clone) else {
            return Err(ServeError::IngestUnavailable);
        };
        let report = {
            let baseline = state.baseline.lock().expect("baseline lock poisoned");
            DriftDetector::new().measure(&baseline, &state.buffer)?
        };
        state.store_drift(report.score);
        if policy
            .due(report.score, report.buffered, state.buffer.oldest_age())
            .is_none()
        {
            return Ok(None);
        }
        let started = Instant::now();
        match self.rebuild_merged(spec, started) {
            Response::Rebuilt { report } => {
                if let Some(obs) = &self.obs {
                    obs.maintenance.record(saturating_nanos(started.elapsed()));
                }
                Ok(Some(report.generation))
            }
            Response::Error { error } => {
                // Keep the failure visible in the scrape even though no
                // transport dispatched this pass.
                self.count_error(error.code);
                Err(ServeError::Maintenance(error.message))
            }
            other => Err(ServeError::Maintenance(format!(
                "unexpected rebuild response: {other:?}"
            ))),
        }
    }

    /// Phase one when *this* service is a shard (or mid-tier
    /// coordinator) of an upstream fleet: retrain, stage on every local
    /// shard (re-clipped for partial shards), and forward the prepare to
    /// any nested remotes. Nothing is served until the commit.
    ///
    /// A `delta` (a maintenance coordinator's full ingest log) is
    /// merged into this shard's own seed dataset before retraining —
    /// the merge is deterministic, so every shard that receives the
    /// same `(spec, delta)` stages a bit-identical index. The task the
    /// labels are interpreted under rides in `spec.task`, so a shard
    /// needs no ingestion configuration of its own to participate.
    fn rebuild_prepare(&mut self, spec: &PipelineSpec, delta: Option<&[IngestBody]>) -> Response {
        let (index, run) = match delta {
            None => match self.build_from_spec(spec) {
                Ok(built) => built,
                Err(response) => return response,
            },
            Some(points) => {
                let Some(seed) = self.rebuild_dataset.clone() else {
                    return Response::error(
                        ErrorCode::RebuildUnavailable,
                        "this service was built without a training dataset; rebuilds are disabled",
                    );
                };
                let records: Vec<IngestRecord> = points
                    .iter()
                    .enumerate()
                    .map(|(i, b)| IngestRecord::from_wire(i as u64, b))
                    .collect();
                let merged = match merge_dataset(&seed, &spec.task, &records) {
                    Ok(merged) => merged,
                    Err(e) => {
                        return Response::error(
                            ErrorCode::Internal,
                            format!("delta merge failed: {e}"),
                        )
                    }
                };
                let built = match build_index(&merged, spec) {
                    Ok(built) => built,
                    Err(crate::ServeError::Pipeline(
                        fsi_pipeline::PipelineError::InvalidConfig(msg),
                    )) => return Response::error(ErrorCode::InvalidSpec, msg),
                    Err(e) => return Response::error(ErrorCode::Internal, e.to_string()),
                };
                // This shard's own drift baseline moves with the commit:
                // stage the refreshed statistics alongside the index.
                if let Some(state) = &self.ingest {
                    match baseline_stats(&merged, &state.task) {
                        Ok(b) => {
                            *state.pending.lock().expect("pending lock poisoned") = Some(b);
                        }
                        Err(e) => return Response::error(ErrorCode::Internal, e.to_string()),
                    }
                }
                built
            }
        };
        // The staged footprint reported back: the clipped footprint for
        // the common single-shard server, the global index's otherwise.
        let mut report = (index.num_leaves(), index.heap_bytes());
        for (i, b) in self.topology.backends().iter().enumerate() {
            let started = Instant::now();
            match b.as_local() {
                Some(local) => {
                    let staged = local.stage(&index);
                    self.record_rebuild_phase(RebuildPhase::Prepare, started);
                    match staged {
                        Ok(staged_report) => {
                            if self.slots.len() == 1 {
                                report = staged_report;
                            }
                        }
                        Err(e) => {
                            self.abort_all_timed();
                            return Response::error(
                                ErrorCode::Internal,
                                format!("shard {i} failed to stage: {e}"),
                            );
                        }
                    }
                }
                None => {
                    let response = b.dispatch(&Request::RebuildPrepare {
                        spec: spec.clone(),
                        delta: delta.map(<[IngestBody]>::to_vec),
                    });
                    self.record_rebuild_phase(RebuildPhase::Prepare, started);
                    match response {
                        Response::Prepared { .. } => {}
                        Response::Error { error } => {
                            self.abort_all_timed();
                            return Response::error(
                                error.code,
                                format!("shard {i} failed to prepare: {}", error.message),
                            );
                        }
                        _ => {
                            self.abort_all_timed();
                            return Response::error(
                                ErrorCode::Internal,
                                format!("shard {i} answered an unexpected prepare response"),
                            );
                        }
                    }
                }
            }
        }
        Response::Prepared {
            prepared: Box::new(PreparedBody {
                num_leaves: report.0,
                heap_bytes: report.1,
                ence: run.eval.full.ence,
                build_time: run.build_time,
            }),
        }
    }

    /// Abandons any staged rebuild on every shard — locals directly,
    /// remotes via the abort fan-out. Idempotent: aborting with nothing
    /// staged changes nothing, so it always answers
    /// [`Response::Aborted`]. A baseline staged by a delta prepare is
    /// dropped with the index it described.
    fn rebuild_abort(&mut self) -> Response {
        if let Some(state) = &self.ingest {
            *state.pending.lock().expect("pending lock poisoned") = None;
        }
        self.abort_all_timed();
        Response::Aborted
    }

    /// Phase two: publish whatever the last prepare staged, on every
    /// shard. A commit with no staged index answers
    /// [`ErrorCode::NotPrepared`] without touching anything.
    fn rebuild_commit(&mut self) -> Response {
        let mut newest = 0;
        for (i, b) in self.topology.backends().iter().enumerate() {
            let started = Instant::now();
            let generation = match b.as_local() {
                Some(local) => {
                    let committed = local.commit();
                    self.record_rebuild_phase(RebuildPhase::Commit, started);
                    match committed {
                        Ok(generation) => generation,
                        Err(e) => {
                            return Response::error(
                                ErrorCode::NotPrepared,
                                format!("shard {i}: {e}"),
                            )
                        }
                    }
                }
                None => {
                    let response = b.dispatch(&Request::RebuildCommit);
                    self.record_rebuild_phase(RebuildPhase::Commit, started);
                    match response {
                        Response::Committed { generation } => generation,
                        Response::Error { error } => {
                            return Response::error(
                                error.code,
                                format!("shard {i} failed to commit: {}", error.message),
                            )
                        }
                        _ => {
                            return Response::error(
                                ErrorCode::Internal,
                                format!("shard {i} answered an unexpected commit response"),
                            )
                        }
                    }
                }
            };
            newest = newest.max(generation);
        }
        // A delta prepare staged a refreshed drift baseline; committing
        // the merged index makes it current. The local buffer and log
        // are superseded — every point this shard accepted was also
        // logged by the coordinator whose delta just published.
        if let Some(state) = &self.ingest {
            if let Some(refreshed) = state.pending.lock().expect("pending lock poisoned").take() {
                *state.baseline.lock().expect("baseline lock poisoned") = refreshed;
                state.buffer.drain();
                state.log.lock().expect("ingest log lock poisoned").clear();
                state.store_drift(0.0);
            }
        }
        if let Some(obs) = &self.obs {
            obs.generation.raise(newest);
        }
        Response::Committed { generation: newest }
    }
}

impl Clone for QueryService {
    /// Clones share the topology (and thus the live, hot-swappable
    /// indexes and remote connections) but get fresh readers and empty
    /// scratch buffers — one clone per transport worker thread. A
    /// shared cache is shared with the clone; a per-worker cache is
    /// re-created empty from its spec. The telemetry recorder clones
    /// into a **fresh shard of the same registry** (per-worker
    /// placement, merged on scrape), carrying the sampling and
    /// slow-query configuration along.
    fn clone(&self) -> Self {
        let mut fresh = Self::over(Arc::clone(&self.topology), self.rebuild_dataset.clone());
        if let Some(layer) = &self.cache {
            let store = match &layer.store {
                CacheStore::Shared(shared) => CacheStore::Shared(Arc::clone(shared)),
                CacheStore::PerWorker(_) => {
                    CacheStore::from_spec(&layer.spec).expect("spec validated at construction")
                }
            };
            fresh.cache = Some(CacheLayer {
                spec: layer.spec,
                store,
            });
        }
        fresh.ingest = self.ingest.clone();
        fresh.obs = self.obs.clone();
        fresh.sample_mask = self.sample_mask;
        fresh.slow = self.slow.clone();
        fresh
    }
}

/// Convenience: a single-shard service over a freshly frozen index.
impl From<FrozenIndex> for QueryService {
    fn from(index: FrozenIndex) -> Self {
        QueryService::new(Topology::single(crate::IndexHandle::new(index)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{BackendSpec, ShardBackend, ShardDescriptor, TopologySpec};
    use crate::IndexHandle;
    use fsi_geo::{Grid, Partition};
    use fsi_pipeline::ModelSnapshot;
    use fsi_proto::WireRect;
    use std::sync::Mutex;

    fn index() -> FrozenIndex {
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot =
            ModelSnapshot::new(vec![0.2, 0.4, 0.6, 0.8], vec![0.0; 4], vec![0, 1, 2, 3]).unwrap();
        FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap()
    }

    fn service(shards: (usize, usize)) -> QueryService {
        QueryService::new(Topology::partitioned(index(), shards.0, shards.1).unwrap())
    }

    fn dataset() -> Arc<SpatialDataset> {
        Arc::new(
            fsi_data::synth::city::CityGenerator::new(fsi_data::synth::city::CityConfig {
                n_individuals: 200,
                grid_side: 8,
                seed: 5,
                ..Default::default()
            })
            .unwrap()
            .generate()
            .unwrap(),
        )
    }

    /// An in-process stand-in for a remote shard: owns a full
    /// [`QueryService`] (typically over a [`Topology::partial`] clip)
    /// behind a mutex and forwards requests to it — exactly what the
    /// HTTP backend does over a socket, minus the socket.
    struct StubRemote {
        addr: String,
        inner: Mutex<QueryService>,
    }

    impl ShardBackend for StubRemote {
        fn dispatch(&self, request: &Request) -> Response {
            self.inner.lock().unwrap().dispatch(request)
        }

        fn descriptor(&self) -> ShardDescriptor {
            ShardDescriptor {
                kind: "http",
                addr: Some(self.addr.clone()),
            }
        }

        fn generation(&self) -> u64 {
            match self.inner.lock().unwrap().dispatch(&Request::Stats) {
                Response::Stats { stats } => stats.generations.first().copied().unwrap_or(0),
                _ => 0,
            }
        }
    }

    /// A 2×2 coordinator whose NE and SW slots are "remote" shard
    /// servers over partial indexes (stubbed in-process), with the other
    /// two slots local partial indexes.
    fn mixed(rebuild: Option<Arc<SpatialDataset>>) -> QueryService {
        let spec = TopologySpec {
            rows: 2,
            cols: 2,
            shards: vec![
                BackendSpec::Local,
                BackendSpec::Http("shard:1".into()),
                BackendSpec::Http("shard:2".into()),
                BackendSpec::Local,
            ],
        };
        let topology = Topology::from_spec(&spec, index(), |addr: &str| {
            let slot: usize = addr.strip_prefix("shard:").unwrap().parse().unwrap();
            let mut inner = QueryService::new(Topology::partial(&index(), 2, 2, slot).unwrap());
            if let Some(dataset) = &rebuild {
                inner = inner.with_rebuild(Arc::clone(dataset));
            }
            Ok(Box::new(StubRemote {
                addr: addr.to_string(),
                inner: Mutex::new(inner),
            }) as Box<dyn ShardBackend>)
        })
        .unwrap();
        let mut svc = QueryService::new(topology);
        if let Some(dataset) = rebuild {
            svc = svc.with_rebuild(dataset);
        }
        svc
    }

    #[test]
    fn lookup_routes_to_the_right_decision_on_any_shard_count() {
        let reference = index();
        for shape in [(1, 1), (2, 2), (1, 4), (3, 2)] {
            let mut svc = service(shape);
            for p in [(0.1, 0.1), (0.9, 0.1), (0.5, 0.5), (1.0, 1.0), (0.0, 0.9)] {
                let expected: DecisionBody =
                    reference.lookup(&Point::new(p.0, p.1)).unwrap().into();
                match svc.dispatch(&Request::Lookup { x: p.0, y: p.1 }) {
                    Response::Decision { decision } => {
                        assert_eq!(decision, expected, "{shape:?} at {p:?}")
                    }
                    other => panic!("expected decision, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_lookups_answer_structured_errors() {
        let mut svc = service((2, 2));
        match svc.dispatch(&Request::Lookup { x: 5.0, y: 0.5 }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::OutOfBounds),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn batch_matches_singles_and_reports_offending_index() {
        for shape in [(1, 1), (2, 2)] {
            let mut svc = service(shape);
            let points: Vec<WirePoint> = (0..40)
                .map(|i| WirePoint::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.37) % 1.0))
                .collect();
            let Response::Decisions { decisions } = svc.dispatch(&Request::LookupBatch {
                points: points.clone(),
            }) else {
                panic!("expected decisions");
            };
            assert_eq!(decisions.len(), points.len());
            for (p, d) in points.iter().zip(&decisions) {
                match svc.dispatch(&Request::Lookup { x: p.x, y: p.y }) {
                    Response::Decision { decision } => assert_eq!(decision, *d),
                    other => panic!("expected decision, got {other:?}"),
                }
            }
            let mut bad = points.clone();
            bad[17] = WirePoint::new(9.0, 9.0);
            match svc.dispatch(&Request::LookupBatch { points: bad }) {
                Response::Error { error } => {
                    assert_eq!(error.code, ErrorCode::OutOfBounds);
                    assert!(error.message.contains("17"), "{}", error.message);
                }
                other => panic!("expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn range_query_merges_shards_to_the_single_index_answer() {
        let reference = index();
        for shape in [(1, 1), (2, 2), (4, 1)] {
            let mut svc = service(shape);
            for rect in [
                WireRect::new(0.0, 0.0, 1.0, 1.0),
                WireRect::new(0.1, 0.1, 0.2, 0.2),
                WireRect::new(0.1, 0.1, 0.9, 0.2),
                WireRect::new(2.0, 2.0, 3.0, 3.0),
            ] {
                let query = Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y).unwrap();
                let expected = reference.range_query(&query);
                match svc.dispatch(&Request::RangeQuery { rect }) {
                    Response::Regions { ids } => assert_eq!(ids, expected, "{shape:?} {rect:?}"),
                    other => panic!("expected regions, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stats_report_shards_generations_and_footprint() {
        let mut svc = service((2, 2));
        let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.generations, vec![1, 1, 1, 1]);
        assert_eq!(stats.num_leaves, 4);
        assert_eq!(stats.backend, "cells");
        assert!(stats.heap_bytes > 0);
        let per_shard = stats
            .per_shard
            .expect("coordinators report per-shard stats");
        assert_eq!(per_shard.len(), 4);
        for shard in &per_shard {
            assert_eq!(shard.kind, "local");
            assert_eq!(shard.addr, None);
            assert_eq!(shard.generation, 1);
            assert!(shard.num_leaves > 0);
        }
    }

    #[test]
    fn scatter_gather_over_mixed_backends_matches_the_single_box() {
        let reference = index();
        let mut svc = mixed(None);
        // Point lookups: every grid cell center plus the shard edges.
        let mut points: Vec<(f64, f64)> = (0..64)
            .map(|i| (((i % 8) as f64 + 0.5) / 8.0, ((i / 8) as f64 + 0.5) / 8.0))
            .collect();
        points.extend([(0.5, 0.5), (0.5, 0.1), (0.1, 0.5), (0.0, 0.0), (1.0, 1.0)]);
        for &(x, y) in &points {
            let expected: DecisionBody = reference.lookup(&Point::new(x, y)).unwrap().into();
            match svc.dispatch(&Request::Lookup { x, y }) {
                Response::Decision { decision } => assert_eq!(decision, expected, "({x}, {y})"),
                other => panic!("expected decision, got {other:?}"),
            }
        }
        // Batches route through remote sub-batches and come back in
        // original order.
        let wire: Vec<WirePoint> = points.iter().map(|&(x, y)| WirePoint::new(x, y)).collect();
        let Response::Decisions { decisions } = svc.dispatch(&Request::LookupBatch {
            points: wire.clone(),
        }) else {
            panic!("expected decisions");
        };
        for (&(x, y), d) in points.iter().zip(&decisions) {
            let expected: DecisionBody = reference.lookup(&Point::new(x, y)).unwrap().into();
            assert_eq!(*d, expected, "batch at ({x}, {y})");
        }
        let mut bad = wire;
        bad[13] = WirePoint::new(7.0, 7.0);
        match svc.dispatch(&Request::LookupBatch { points: bad }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::OutOfBounds);
                assert!(error.message.contains("13"), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
        // Ranges scatter-gather across local and remote shards.
        for rect in [
            WireRect::new(0.0, 0.0, 1.0, 1.0),
            WireRect::new(0.6, 0.1, 0.9, 0.4),
            WireRect::new(0.1, 0.1, 0.9, 0.9),
        ] {
            let query = Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y).unwrap();
            let expected = reference.range_query(&query);
            match svc.dispatch(&Request::RangeQuery { rect }) {
                Response::Regions { ids } => assert_eq!(ids, expected, "{rect:?}"),
                other => panic!("expected regions, got {other:?}"),
            }
        }
        // Stats carry the backend kind and address per shard.
        let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.generations, vec![1, 1, 1, 1]);
        let per_shard = stats.per_shard.unwrap();
        let kinds: Vec<&str> = per_shard.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds, vec!["local", "http", "http", "local"]);
        assert_eq!(per_shard[1].addr.as_deref(), Some("shard:1"));
        assert_eq!(per_shard[2].addr.as_deref(), Some("shard:2"));
        for shard in &per_shard {
            assert!(shard.num_leaves > 0, "{shard:?}");
        }
    }

    #[test]
    fn two_phase_rebuild_raises_every_shard_in_lockstep() {
        let dataset = dataset();
        let mut svc = mixed(Some(Arc::clone(&dataset)));
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            3,
        );
        let Response::Rebuilt { report } = svc.dispatch(&Request::Rebuild { spec: spec.clone() })
        else {
            panic!("expected rebuild report");
        };
        assert_eq!(report.generation, 2);
        assert_eq!(report.num_leaves, 8);
        assert_eq!(svc.topology().generations(), vec![2, 2, 2, 2]);
        // Every shard now answers from the retrained index: compare
        // against a reference built from the same dataset and spec.
        let (reference, _run) = build_index(&dataset, &spec).unwrap();
        for p in [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9), (0.9, 0.9), (0.5, 0.5)] {
            let expected: DecisionBody = reference.lookup(&Point::new(p.0, p.1)).unwrap().into();
            match svc.dispatch(&Request::Lookup { x: p.0, y: p.1 }) {
                Response::Decision { decision } => assert_eq!(decision, expected, "{p:?}"),
                other => panic!("expected decision, got {other:?}"),
            }
        }
        // A commit with nothing staged is a structured protocol error.
        let mut fresh = mixed(Some(dataset));
        match fresh.dispatch(&Request::RebuildCommit) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::NotPrepared),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn prepare_stages_without_serving_until_the_commit() {
        let mut svc = QueryService::new(Topology::partitioned(index(), 2, 2).unwrap())
            .with_rebuild(dataset());
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            3,
        );
        let before = match svc.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }) {
            Response::Decision { decision } => decision,
            other => panic!("expected decision, got {other:?}"),
        };
        let Response::Prepared { prepared } =
            svc.dispatch(&Request::RebuildPrepare { spec, delta: None })
        else {
            panic!("expected prepared");
        };
        assert!(prepared.num_leaves > 0);
        assert!(prepared.heap_bytes > 0);
        // Staged but not live: generation 1 everywhere, old answers.
        assert_eq!(svc.topology().generations(), vec![1, 1, 1, 1]);
        match svc.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }) {
            Response::Decision { decision } => assert_eq!(decision, before),
            other => panic!("expected decision, got {other:?}"),
        }
        let Response::Committed { generation } = svc.dispatch(&Request::RebuildCommit) else {
            panic!("expected committed");
        };
        assert_eq!(generation, 2);
        assert_eq!(svc.topology().generations(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn rebuild_without_a_dataset_is_a_structured_error() {
        let mut svc = service((1, 1));
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            2,
        );
        match svc.dispatch(&Request::Rebuild { spec: spec.clone() }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::RebuildUnavailable),
            other => panic!("expected error, got {other:?}"),
        }
        match svc.dispatch(&Request::RebuildPrepare { spec, delta: None }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::RebuildUnavailable),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn rebuild_with_a_dataset_publishes_to_every_shard() {
        let mut svc = QueryService::new(Topology::partitioned(index(), 2, 2).unwrap())
            .with_rebuild(dataset());
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            3,
        );
        let Response::Rebuilt { report } = svc.dispatch(&Request::Rebuild { spec: spec.clone() })
        else {
            panic!("expected rebuild report");
        };
        assert_eq!(report.generation, 2);
        assert_eq!(report.spec, spec);
        assert_eq!(report.num_leaves, 8);
        assert_eq!(svc.topology().generations(), vec![2, 2, 2, 2]);
        // Invalid specs come back as structured spec errors.
        let bad = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::FairKd,
            0,
        );
        match svc.dispatch(&Request::Rebuild { spec: bad }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::InvalidSpec);
                assert!(error.message.contains("height"), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    /// Every (shape, scope) combination: cached answers must be
    /// bit-identical to the uncached reference, and the counters must
    /// add up.
    #[test]
    fn cached_lookups_match_uncached_and_count_hits() {
        let reference = index();
        let points: Vec<(f64, f64)> = (0..64)
            .map(|i| (((i % 8) as f64 + 0.5) / 8.0, ((i / 8) as f64 + 0.5) / 8.0))
            .collect();
        for shape in [(1, 1), (2, 2)] {
            // The shared placement splits capacity across 8 shards and
            // cells hash unevenly, so give each shard room for all 64
            // distinct cells — this test is about parity and counting,
            // not eviction.
            for spec in [CacheSpec::per_worker(64), CacheSpec::shared(512)] {
                let mut svc = service(shape).with_cache(spec).unwrap();
                assert_eq!(svc.cache_spec(), Some(&spec));
                for pass in 0..2 {
                    for &(x, y) in &points {
                        let expected: DecisionBody =
                            reference.lookup(&Point::new(x, y)).unwrap().into();
                        match svc.dispatch(&Request::Lookup { x, y }) {
                            Response::Decision { decision } => {
                                assert_eq!(decision, expected, "{shape:?} {spec:?} pass {pass}")
                            }
                            other => panic!("expected decision, got {other:?}"),
                        }
                    }
                }
                let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
                    panic!("expected stats");
                };
                let cache = stats.cache.expect("cache stats must be reported");
                // 64 points over a 4-leaf/64-cell grid: the first pass
                // populates each distinct cell once, the second hits.
                assert_eq!(cache.hits + cache.misses, 128);
                assert_eq!(cache.misses, 64, "{shape:?} {spec:?}");
                assert_eq!(cache.capacity, spec.capacity);
                assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cached_batches_match_singles_and_report_out_of_bounds() {
        let mut plain = service((2, 2));
        let mut cached = service((2, 2))
            .with_cache(CacheSpec::per_worker(16))
            .unwrap();
        let points: Vec<WirePoint> = (0..40)
            .map(|i| WirePoint::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.37) % 1.0))
            .collect();
        let expected = plain.dispatch(&Request::LookupBatch {
            points: points.clone(),
        });
        let got = cached.dispatch(&Request::LookupBatch {
            points: points.clone(),
        });
        assert_eq!(format!("{expected:?}"), format!("{got:?}"));
        let mut bad = points;
        bad[11] = WirePoint::new(-3.0, 0.5);
        match cached.dispatch(&Request::LookupBatch { points: bad }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::OutOfBounds);
                assert!(error.message.contains("11"), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_cache_specs_are_rejected_up_front() {
        let svc = service((1, 1));
        match svc.with_cache(CacheSpec::per_worker(0)) {
            Err(crate::ServeError::Cache(fsi_cache::CacheError::ZeroCapacity)) => {}
            Err(other) => panic!("expected ZeroCapacity, got {other:?}"),
            Ok(_) => panic!("zero-capacity spec must be rejected"),
        }
    }

    #[test]
    fn publish_invalidates_cached_decisions_via_the_generation_key() {
        let handle = IndexHandle::new(index());
        let mut svc = QueryService::new(Topology::single(handle.clone()))
            .with_cache(CacheSpec::per_worker(64))
            .unwrap();
        let (x, y) = (0.1, 0.1);
        let Response::Decision { decision: before } = svc.dispatch(&Request::Lookup { x, y })
        else {
            panic!("expected decision");
        };
        // Same point again: served from cache.
        svc.dispatch(&Request::Lookup { x, y });
        // Publish an index with different scores; the very next lookup
        // must reflect it even though the old entry is still resident.
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot =
            ModelSnapshot::new(vec![0.9, 0.9, 0.9, 0.9], vec![0.0; 4], vec![0, 1, 2, 3]).unwrap();
        handle.publish(FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap());
        let Response::Decision { decision: after } = svc.dispatch(&Request::Lookup { x, y }) else {
            panic!("expected decision");
        };
        assert!((before.raw_score - 0.2).abs() < 1e-12);
        assert!(
            (after.raw_score - 0.9).abs() < 1e-12,
            "stale cache entry served"
        );
    }

    #[test]
    fn shared_caches_are_shared_across_clones_but_per_worker_are_not() {
        let svc = service((1, 1)).with_cache(CacheSpec::shared(64)).unwrap();
        let mut a = svc.clone();
        let mut b = svc.clone();
        a.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }); // miss, fills
        b.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }); // hit via shared store
        let Response::Stats { stats } = b.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        let cache = stats.cache.unwrap();
        assert_eq!((cache.hits, cache.misses), (1, 1));

        let svc = service((1, 1))
            .with_cache(CacheSpec::per_worker(64))
            .unwrap();
        let mut a = svc.clone();
        let mut b = svc.clone();
        a.dispatch(&Request::Lookup { x: 0.1, y: 0.1 });
        b.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }); // its own cold cache: miss
        let Response::Stats { stats } = b.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        let cache = stats.cache.unwrap();
        assert_eq!((cache.hits, cache.misses), (0, 1));
    }

    #[test]
    fn instrumented_dispatch_counts_requests_latency_and_errors() {
        let mut svc = service((2, 2)).with_lookup_sampling(1);
        for p in [(0.1, 0.1), (0.9, 0.1), (0.5, 0.5)] {
            svc.dispatch(&Request::Lookup { x: p.0, y: p.1 });
        }
        svc.dispatch(&Request::Lookup { x: 5.0, y: 0.5 }); // out of bounds
        svc.dispatch(&Request::RangeQuery {
            rect: WireRect::new(0.1, 0.1, 0.4, 0.4),
        });
        svc.dispatch(&Request::Stats);
        let body = svc.metrics_snapshot();
        assert_eq!(body.count_for("lookup"), 4);
        assert_eq!(body.count_for("range_query"), 1);
        assert_eq!(body.count_for("stats"), 1);
        assert_eq!(body.generation, 1);
        let lookup = body
            .requests
            .iter()
            .find(|r| r.kind == "lookup")
            .expect("every kind is listed");
        // Sampling is 1-in-1, so every lookup also lands in the
        // latency histogram.
        assert_eq!(lookup.latency.count(), 4);
        let oob = body
            .errors
            .iter()
            .find(|e| e.code == ErrorCode::OutOfBounds)
            .expect("out-of-bounds error counted");
        assert_eq!(oob.count, 1);
    }

    #[test]
    fn unsampled_lookups_still_count_once_flushed() {
        // Default sampling is 1-in-256: ten lookups won't all be timed,
        // but the request counter must still reach ten on snapshot.
        let mut svc = service((1, 1));
        for i in 0..10 {
            let x = (i as f64 * 0.09) % 1.0;
            svc.dispatch(&Request::Lookup { x, y: x });
        }
        let body = svc.metrics_snapshot();
        assert_eq!(body.count_for("lookup"), 10);
        let lookup = body.requests.iter().find(|r| r.kind == "lookup").unwrap();
        assert!(lookup.latency.count() <= 10);
    }

    #[test]
    fn metrics_scatter_gather_collects_remote_snapshots() {
        let mut svc = mixed(None).with_lookup_sampling(1);
        // One lookup per quadrant so every shard sees traffic.
        for p in [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9), (0.9, 0.9)] {
            svc.dispatch(&Request::Lookup { x: p.0, y: p.1 });
        }
        let Response::Metrics { metrics } = svc.dispatch(&Request::Metrics) else {
            panic!("expected metrics");
        };
        assert_eq!(metrics.count_for("lookup"), 4);
        assert_eq!(metrics.shards.len(), 4);
        let kinds: Vec<&str> = metrics.shards.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds, vec!["local", "http", "http", "local"]);
        for shard in &metrics.shards {
            assert_eq!(shard.failures, 0, "{shard:?}");
            if shard.kind == "http" {
                assert!(shard.addr.is_some());
                assert_eq!(shard.requests, 1, "{shard:?}");
                assert_eq!(shard.round_trip.count(), 1);
                let remote = shard.remote.as_ref().expect("remote snapshot gathered");
                assert_eq!(remote.count_for("lookup"), 1, "{shard:?}");
            } else {
                assert!(shard.remote.is_none());
            }
        }
    }

    #[test]
    fn disabling_metrics_reports_an_empty_body_and_no_stats_metrics() {
        let mut svc = service((1, 1)).with_metrics(false);
        svc.dispatch(&Request::Lookup { x: 0.1, y: 0.1 });
        let body = svc.metrics_snapshot();
        assert_eq!(body.total_requests(), 0);
        assert!(body.requests.is_empty());
        let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        assert!(stats.metrics.is_none());
    }

    #[test]
    fn stats_embed_a_metrics_body_when_telemetry_is_on() {
        let mut svc = service((1, 1)).with_lookup_sampling(1);
        svc.dispatch(&Request::Lookup { x: 0.1, y: 0.1 });
        let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        let metrics = stats.metrics.expect("telemetry on by default");
        assert_eq!(metrics.count_for("lookup"), 1);
    }

    #[test]
    fn cache_counters_flow_into_the_metrics_body() {
        let mut svc = service((1, 1))
            .with_cache(CacheSpec::per_worker(64))
            .unwrap();
        for _ in 0..2 {
            for i in 0..8 {
                let x = (i as f64 + 0.5) / 8.0;
                svc.dispatch(&Request::Lookup { x, y: x });
            }
        }
        let body = svc.metrics_snapshot();
        let cache = body.cache.expect("cache stats in the metrics body");
        assert_eq!(cache.misses, 8);
        assert_eq!(cache.hits, 8);
        assert_eq!(cache.capacity, 64);
    }

    #[test]
    fn slow_query_log_emits_records_and_bumps_the_counter() {
        let records: Arc<Mutex<Vec<crate::obs::SlowQueryRecord>>> =
            Arc::new(Mutex::new(Vec::new()));
        let sink_records = Arc::clone(&records);
        let mut svc = service((1, 1)).with_slow_query_log(
            Duration::ZERO,
            Arc::new(move |r| sink_records.lock().unwrap().push(r.clone())),
        );
        svc.dispatch(&Request::Lookup { x: 0.1, y: 0.1 });
        svc.dispatch(&Request::Stats);
        let seen = records.lock().unwrap().clone();
        assert!(seen.len() >= 2, "{seen:?}");
        assert!(seen.iter().any(|r| r.kind == "lookup"), "{seen:?}");
        assert!(seen.iter().any(|r| r.kind == "stats"), "{seen:?}");
        assert_eq!(seen[0].threshold_nanos, 0);
        let body = svc.metrics_snapshot();
        assert!(body.slow_queries >= 2, "{}", body.slow_queries);
    }

    #[test]
    fn rebuild_phases_record_durations_and_raise_the_generation_gauge() {
        let mut svc = QueryService::new(Topology::partitioned(index(), 2, 2).unwrap())
            .with_rebuild(dataset());
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            3,
        );
        let Response::Rebuilt { .. } = svc.dispatch(&Request::Rebuild { spec }) else {
            panic!("expected rebuild report");
        };
        let body = svc.metrics_snapshot();
        assert_eq!(body.generation, 2);
        // One prepare and one commit sample per shard, no aborts.
        assert_eq!(body.rebuild.prepare.count(), 4);
        assert_eq!(body.rebuild.commit.count(), 4);
        assert_eq!(body.rebuild.abort.count(), 0);
    }

    /// Satellite 1: a failing remote transport must surface the shard
    /// index and address, not a context-free `Internal`.
    #[test]
    fn remote_transport_failures_name_the_shard_and_address() {
        struct DownRemote {
            addr: String,
        }
        impl ShardBackend for DownRemote {
            fn dispatch(&self, _request: &Request) -> Response {
                Response::error(
                    ErrorCode::Internal,
                    format!("remote shard {}: connection refused", self.addr),
                )
            }
            fn descriptor(&self) -> ShardDescriptor {
                ShardDescriptor {
                    kind: "http",
                    addr: Some(self.addr.clone()),
                }
            }
            fn generation(&self) -> u64 {
                0
            }
        }
        let spec = TopologySpec {
            rows: 1,
            cols: 2,
            shards: vec![
                BackendSpec::Local,
                BackendSpec::Http("10.0.0.9:4000".into()),
            ],
        };
        let topology = Topology::from_spec(&spec, index(), |addr: &str| {
            Ok(Box::new(DownRemote {
                addr: addr.to_string(),
            }) as Box<dyn ShardBackend>)
        })
        .unwrap();
        let mut svc = QueryService::new(topology);
        match svc.dispatch(&Request::Lookup { x: 0.9, y: 0.5 }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::Internal);
                assert!(
                    error.message.contains("shard 1 at 10.0.0.9:4000"),
                    "{}",
                    error.message
                );
                assert!(
                    error.message.contains("connection refused"),
                    "{}",
                    error.message
                );
            }
            other => panic!("expected error, got {other:?}"),
        }
        let body = svc.metrics_snapshot();
        let shard = &body.shards[1];
        assert_eq!(shard.failures, 1, "{shard:?}");
        assert_eq!(shard.requests, 1);
    }

    #[test]
    fn recorder_clones_merge_into_one_scrape() {
        let svc = service((1, 1)).with_lookup_sampling(1);
        let mut a = svc.clone();
        let mut b = svc.clone();
        a.dispatch(&Request::Lookup { x: 0.1, y: 0.1 });
        b.dispatch(&Request::Lookup { x: 0.9, y: 0.9 });
        b.dispatch(&Request::Stats);
        // Either clone's snapshot folds every worker's shard.
        let body = a.metrics_snapshot();
        assert_eq!(body.count_for("lookup"), 2);
        assert_eq!(body.count_for("stats"), 1);
    }

    #[test]
    fn clones_share_swaps_but_not_buffers() {
        let handle = IndexHandle::new(index());
        let svc = QueryService::new(Topology::single(handle.clone()));
        let mut a = svc.clone();
        let mut b = svc;
        handle.publish(index());
        for svc in [&mut a, &mut b] {
            let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
                panic!("expected stats");
            };
            assert_eq!(stats.generations, vec![2]);
        }
    }

    fn ingest_spec() -> PipelineSpec {
        PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            3,
        )
    }

    fn ingest_service(shards: (usize, usize)) -> QueryService {
        QueryService::new(Topology::partitioned(index(), shards.0, shards.1).unwrap())
            .with_rebuild(dataset())
            .with_ingest(fsi_pipeline::TaskSpec::act())
            .unwrap()
    }

    #[test]
    fn ingest_without_configuration_is_a_structured_error() {
        let mut svc = service((1, 1));
        match svc.dispatch(&Request::Ingest {
            x: 0.5,
            y: 0.5,
            group: 0,
            label: true,
        }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::RebuildUnavailable);
                assert!(error.message.contains("ingestion"), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn ingest_requires_a_rebuild_dataset() {
        let err = service((1, 1))
            .with_ingest(fsi_pipeline::TaskSpec::act())
            .err()
            .expect("with_ingest without a dataset must fail");
        assert!(matches!(err, ServeError::Ingest(_)), "{err}");
    }

    #[test]
    fn ingest_accepts_in_bounds_and_rejects_out_of_bounds() {
        let mut svc = ingest_service((2, 2));
        match svc.dispatch(&Request::Ingest {
            x: 0.25,
            y: 0.75,
            group: 1,
            label: true,
        }) {
            Response::Ingested {
                accepted,
                buffered,
                generation,
            } => {
                assert_eq!(accepted, 1);
                assert_eq!(buffered, 1);
                assert_eq!(generation, 1);
            }
            other => panic!("expected ingested, got {other:?}"),
        }
        match svc.dispatch(&Request::Ingest {
            x: 7.0,
            y: 0.5,
            group: 0,
            label: false,
        }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::OutOfBounds),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn ingest_batch_counts_only_landed_points() {
        let mut svc = ingest_service((1, 1));
        let points = vec![
            fsi_proto::IngestBody::new(0.1, 0.2, 0, true),
            fsi_proto::IngestBody::new(9.0, 9.0, 1, false), // out of bounds
            fsi_proto::IngestBody::new(0.8, 0.9, 1, true),
        ];
        match svc.dispatch(&Request::IngestBatch { points }) {
            Response::Ingested {
                accepted, buffered, ..
            } => {
                assert_eq!(accepted, 2);
                assert_eq!(buffered, 2);
            }
            other => panic!("expected ingested, got {other:?}"),
        }
    }

    #[test]
    fn manual_rebuild_merges_the_buffer_and_resets_it() {
        let mut svc = ingest_service((2, 2)).with_metrics(true);
        for i in 0..6u32 {
            let response = svc.dispatch(&Request::Ingest {
                x: 0.05 + 0.15 * f64::from(i),
                y: 0.35,
                group: i % 2,
                label: i % 2 == 0,
            });
            assert!(matches!(response, Response::Ingested { .. }));
        }
        let Response::Rebuilt { report } = svc.dispatch(&Request::Rebuild {
            spec: ingest_spec(),
        }) else {
            panic!("expected rebuilt");
        };
        assert_eq!(report.generation, 2);
        assert_eq!(svc.topology().generations(), vec![2, 2, 2, 2]);
        let ingest = svc
            .metrics_snapshot()
            .ingest
            .expect("ingest telemetry missing");
        assert_eq!(ingest.accepted, 6);
        assert_eq!(ingest.buffered, 0, "rebuild must drain the buffer");
        assert_eq!(ingest.drift_score, 0.0);
        // The next ingest stacks on the new generation.
        match svc.dispatch(&Request::Ingest {
            x: 0.5,
            y: 0.5,
            group: 0,
            label: true,
        }) {
            Response::Ingested { generation, .. } => assert_eq!(generation, 2),
            other => panic!("expected ingested, got {other:?}"),
        }
    }

    #[test]
    fn maintain_without_ingest_is_an_error() {
        let mut svc = service((1, 1));
        let err = svc
            .maintain(&fsi_ingest::MaintenanceSpec::default(), &ingest_spec())
            .expect_err("maintain without ingest must fail");
        assert!(matches!(err, ServeError::IngestUnavailable), "{err}");
    }

    #[test]
    fn maintain_publishes_on_occupancy_and_idles_when_quiet() {
        let mut svc = ingest_service((2, 2)).with_metrics(true);
        let policy = fsi_ingest::MaintenanceSpec {
            drift_threshold: 1e18,
            max_buffered: 4,
            max_staleness_ms: 0,
            poll_interval_ms: 1,
        };
        // Empty buffer: nothing due.
        assert!(svc.maintain(&policy, &ingest_spec()).unwrap().is_none());
        for i in 0..5u32 {
            svc.dispatch(&Request::Ingest {
                x: 0.1 + 0.18 * f64::from(i),
                y: 0.6,
                group: i % 2,
                label: i % 2 == 1,
            });
        }
        let generation = svc
            .maintain(&policy, &ingest_spec())
            .unwrap()
            .expect("occupancy past max_buffered must trigger");
        assert_eq!(generation, 2);
        assert_eq!(svc.topology().generations(), vec![2, 2, 2, 2]);
        // The trigger consumed the buffer; the next poll idles.
        assert!(svc.maintain(&policy, &ingest_spec()).unwrap().is_none());
        let body = svc.metrics_snapshot();
        let ingest = body.ingest.expect("ingest telemetry missing");
        assert_eq!(ingest.buffered, 0);
        assert_eq!(
            ingest.maintenance.count(),
            1,
            "maintenance histogram must record the pass"
        );
    }

    #[test]
    fn mixed_topology_ingest_keeps_the_coordinator_authoritative() {
        let mut svc = mixed(Some(dataset()))
            .with_ingest(fsi_pipeline::TaskSpec::act())
            .unwrap();
        // One point per quadrant: two land on local slots, two are
        // forwarded (advisorily) to the stub remotes, which decline —
        // the coordinator's buffer still accepts all four.
        let quadrants = [(0.25, 0.25), (0.75, 0.25), (0.25, 0.75), (0.75, 0.75)];
        for (i, (x, y)) in quadrants.into_iter().enumerate() {
            match svc.dispatch(&Request::Ingest {
                x,
                y,
                group: (i % 2) as u32,
                label: i % 2 == 0,
            }) {
                Response::Ingested {
                    accepted, buffered, ..
                } => {
                    assert_eq!(accepted, 1);
                    assert_eq!(buffered, i as u64 + 1);
                }
                other => panic!("expected ingested, got {other:?}"),
            }
        }
        // A manual rebuild ships the merged delta through the two-phase
        // barrier; the stub remotes merge the same log and commit.
        let Response::Rebuilt { report } = svc.dispatch(&Request::Rebuild {
            spec: ingest_spec(),
        }) else {
            panic!("expected rebuilt");
        };
        assert_eq!(report.generation, 2);
        assert_eq!(svc.topology().generations(), vec![2, 2, 2, 2]);
    }
}
