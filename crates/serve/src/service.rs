//! The transport-agnostic query service: every serving surface — text
//! REPL, HTTP, future RPC — decodes to an [`fsi_proto::Request`], calls
//! [`QueryService::dispatch`], and encodes the returned
//! [`fsi_proto::Response`]. Nothing else in the system answers queries.
//!
//! A service fronts a [`ShardRouter`]: point lookups route to exactly
//! one shard, range queries fan out to the intersected shards and merge,
//! stats report per-shard generations, and (when constructed with a
//! dataset via [`QueryService::with_rebuild`]) a `Rebuild` request
//! retrains the pipeline and hot-swaps the result into every shard.
//!
//! The service is **cheap to clone and single-threaded by design**:
//! each clone owns its per-shard [`IndexReader`]s and its reusable batch
//! buffers, while the router (and thus the live indexes) stays shared.
//! A transport spawns one clone per worker thread and dispatches without
//! any locking on the hot path.

use crate::frozen::{Decision, FrozenIndex};
use crate::rebuild::build_index;
use crate::shard::ShardRouter;
use crate::{IndexReader, RebuildReport, ServeError};
use fsi_cache::{CacheKey, CacheScope, CacheSpec, CacheStats, FrontedLru, ShardedLru};
use fsi_data::SpatialDataset;
use fsi_geo::{Point, Rect};
use fsi_pipeline::PipelineSpec;
use fsi_proto::{CacheStatsBody, DecisionBody, ErrorCode, Request, Response, StatsBody, WirePoint};
use std::sync::Arc;
use std::time::Instant;

impl From<Decision> for DecisionBody {
    fn from(d: Decision) -> Self {
        DecisionBody {
            leaf_id: d.leaf_id,
            group: d.group,
            raw_score: d.raw_score,
            calibrated_score: d.calibrated_score,
        }
    }
}

impl From<DecisionBody> for Decision {
    fn from(d: DecisionBody) -> Self {
        Decision {
            leaf_id: d.leaf_id,
            group: d.group,
            raw_score: d.raw_score,
            calibrated_score: d.calibrated_score,
        }
    }
}

/// How a configured decision cache is placed for one service clone.
///
/// Decisions are deterministic per (shard, cell, generation), and a
/// shard's generation uniquely identifies its published index, so a
/// cached decision can never go stale: a hot-swap bumps the generation,
/// which changes every key, and the orphaned entries age out of the LRU.
enum CacheStore {
    /// This clone owns its cache outright — the zero-lock placement,
    /// with a direct-mapped front over the exact LRU (see
    /// [`FrontedLru`]).
    PerWorker(FrontedLru<Decision>),
    /// All clones share one sharded cache behind per-shard mutexes.
    Shared(Arc<ShardedLru<Decision>>),
}

impl CacheStore {
    fn from_spec(spec: &CacheSpec) -> Result<Self, ServeError> {
        spec.validate()?;
        Ok(match spec.scope {
            CacheScope::PerWorker => CacheStore::PerWorker(FrontedLru::new(spec.capacity)?),
            CacheScope::Shared => CacheStore::Shared(Arc::new(ShardedLru::new(spec)?)),
        })
    }

    #[inline]
    fn get(&mut self, key: CacheKey) -> Option<Decision> {
        match self {
            CacheStore::PerWorker(cache) => cache.get(key),
            CacheStore::Shared(cache) => cache.get(key),
        }
    }

    fn insert(&mut self, key: CacheKey, decision: Decision) {
        match self {
            CacheStore::PerWorker(cache) => cache.insert(key, decision),
            CacheStore::Shared(cache) => cache.insert(key, decision),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            CacheStore::PerWorker(cache) => cache.stats(),
            CacheStore::Shared(cache) => cache.stats(),
        }
    }
}

/// The optional decision cache of one service clone: the validated spec
/// it was built from (clones re-derive per-worker placements from it)
/// plus the placement itself.
struct CacheLayer {
    spec: CacheSpec,
    store: CacheStore,
}

/// Dispatches typed protocol requests against a sharded set of live
/// indexes. See the module docs for the design.
pub struct QueryService {
    router: Arc<ShardRouter>,
    readers: Vec<IndexReader>,
    rebuild_dataset: Option<Arc<SpatialDataset>>,
    /// Reusable scratch for batch lookups (converted query points).
    points: Vec<Point>,
    /// Reusable scratch for batch lookups (decisions out).
    decisions: Vec<Decision>,
    /// Optional generation-keyed decision cache over point lookups.
    cache: Option<CacheLayer>,
}

impl QueryService {
    /// Creates a service over `router`, without rebuild support:
    /// `Rebuild` requests answer a structured
    /// [`ErrorCode::RebuildUnavailable`] error.
    pub fn new(router: ShardRouter) -> Self {
        Self::over(Arc::new(router), None)
    }

    /// Enables spec-driven rebuilds: a `Rebuild{spec}` request retrains
    /// the pipeline on `dataset` and publishes the compiled index to
    /// every shard.
    #[must_use]
    pub fn with_rebuild(mut self, dataset: Arc<SpatialDataset>) -> Self {
        self.rebuild_dataset = Some(dataset);
        self
    }

    /// Puts a decision cache in front of point lookups, validating the
    /// spec first. Decisions are keyed by (shard, cell, generation), so
    /// hot-swap rebuilds invalidate implicitly — see [`CacheSpec`] for
    /// the placement choices.
    pub fn with_cache(mut self, spec: CacheSpec) -> Result<Self, ServeError> {
        let store = CacheStore::from_spec(&spec)?;
        self.cache = Some(CacheLayer { spec, store });
        Ok(self)
    }

    /// The cache configuration, when one is attached.
    pub fn cache_spec(&self) -> Option<&CacheSpec> {
        self.cache.as_ref().map(|layer| &layer.spec)
    }

    fn over(router: Arc<ShardRouter>, rebuild_dataset: Option<Arc<SpatialDataset>>) -> Self {
        let readers = router.handles().iter().map(|h| h.reader()).collect();
        Self {
            router,
            readers,
            rebuild_dataset,
            points: Vec::new(),
            decisions: Vec::new(),
            cache: None,
        }
    }

    /// The router behind this service.
    pub fn router(&self) -> &Arc<ShardRouter> {
        &self.router
    }

    /// Answers one request. Never panics and never fails at the Rust
    /// level: every failure becomes a [`Response::Error`] with a
    /// machine-readable [`ErrorCode`], so transports can stay thin.
    ///
    /// `#[inline]` so a caller with a statically known request shape
    /// (the benches, the batch loops) folds the variant match away and
    /// builds the `Response` in place instead of memcpying it twice —
    /// without LTO this call is otherwise an opaque cross-crate boundary
    /// on the lookup hot path.
    #[inline]
    pub fn dispatch(&mut self, request: &Request) -> Response {
        match request {
            Request::Lookup { x, y } => self.lookup(*x, *y),
            Request::LookupBatch { points } => self.lookup_batch(points),
            Request::RangeQuery { rect } => self.range_query(rect),
            Request::Stats => self.stats(),
            Request::Rebuild { spec } => self.rebuild(spec),
        }
    }

    #[inline]
    fn lookup(&mut self, x: f64, y: f64) -> Response {
        let p = Point::new(x, y);
        // Single-shard fast path: the index's own bounds check makes the
        // router redundant, so the dispatch overhead over a raw
        // `FrozenIndex::lookup` is one reader generation load plus the
        // (boxed-slim) Response move.
        let decision = if self.cache.is_some() {
            self.cached_decision(&p)
        } else if self.readers.len() == 1 {
            self.readers[0].snapshot().lookup(&p)
        } else {
            self.router
                .shard_of(&p)
                .and_then(|shard| self.readers[shard].snapshot().lookup(&p))
        };
        match decision {
            Some(decision) => Response::Decision {
                decision: decision.into(),
            },
            None => Response::error(
                ErrorCode::OutOfBounds,
                format!("point ({x}, {y}) is outside the served map bounds"),
            ),
        }
    }

    /// The decision for `p` through the cache; `None` means out of
    /// bounds. Only called when a cache is configured.
    ///
    /// A hit costs the cell computation (the same two divisions the
    /// uncached path pays) plus one hash probe — the tree traversal and
    /// decision assembly are skipped. A miss additionally resolves the
    /// cell through the index and fills the entry, so cold traffic pays
    /// one probe over the uncached path.
    #[inline]
    fn cached_decision(&mut self, p: &Point) -> Option<Decision> {
        let shard = if self.readers.len() == 1 {
            0
        } else {
            self.router.shard_of(p)?
        };
        let (index, generation) = self.readers[shard].snapshot_with_generation();
        let cell = index.cell_index(p)?;
        // The shard id rides in the key's high bits: each shard's handle
        // numbers its own generations, so (cell, generation) alone could
        // collide across shards that published different indexes.
        debug_assert!(cell < 1 << 48, "cell id exceeds the shard-packing range");
        let key = CacheKey::new((shard as u64) << 48 | cell, generation);
        let cache = self.cache.as_mut().expect("caller checked cache.is_some()");
        if let Some(decision) = cache.store.get(key) {
            return Some(decision);
        }
        let decision = index.lookup_cell(cell)?;
        cache.store.insert(key, decision);
        Some(decision)
    }

    fn lookup_batch(&mut self, points: &[WirePoint]) -> Response {
        // Cached: every point goes through the same per-point cache path
        // as single lookups, so batch and single answers (and counters)
        // cannot diverge.
        if self.cache.is_some() {
            self.decisions.clear();
            self.decisions.reserve(points.len());
            for (index, wp) in points.iter().enumerate() {
                let p = Point::new(wp.x, wp.y);
                match self.cached_decision(&p) {
                    Some(d) => self.decisions.push(d),
                    None => {
                        self.decisions.clear();
                        return Response::error(
                            ErrorCode::OutOfBounds,
                            format!(
                                "point #{index} at ({}, {}) is outside the index bounds",
                                wp.x, wp.y
                            ),
                        );
                    }
                }
            }
            return Response::Decisions {
                decisions: self.decisions.iter().map(|&d| d.into()).collect(),
            };
        }
        // Single shard: feed the whole batch through the frozen index's
        // buffer-reusing batch path.
        if self.router.shards() == 1 {
            self.points.clear();
            self.points
                .extend(points.iter().map(|p| Point::new(p.x, p.y)));
            let index = self.readers[0].snapshot();
            return match index.lookup_batch(&self.points, &mut self.decisions) {
                Ok(()) => Response::Decisions {
                    decisions: self.decisions.iter().map(|&d| d.into()).collect(),
                },
                Err(e) => Response::error(ErrorCode::OutOfBounds, e.to_string()),
            };
        }
        // Sharded: route point by point, reusing the decision buffer.
        self.decisions.clear();
        self.decisions.reserve(points.len());
        for (index, wp) in points.iter().enumerate() {
            let p = Point::new(wp.x, wp.y);
            let decision = self
                .router
                .shard_of(&p)
                .and_then(|shard| self.readers[shard].snapshot().lookup(&p));
            match decision {
                Some(d) => self.decisions.push(d),
                None => {
                    self.decisions.clear();
                    return Response::error(
                        ErrorCode::OutOfBounds,
                        format!(
                            "point #{index} at ({}, {}) is outside the index bounds",
                            wp.x, wp.y
                        ),
                    );
                }
            }
        }
        Response::Decisions {
            decisions: self.decisions.iter().map(|&d| d.into()).collect(),
        }
    }

    fn range_query(&mut self, rect: &fsi_proto::WireRect) -> Response {
        let query = match Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y) {
            Ok(query) => query,
            Err(e) => return Response::error(ErrorCode::MalformedRequest, e.to_string()),
        };
        let shards = self.router.covering(&query);
        let mut ids: Vec<usize> = Vec::new();
        for shard in shards {
            let index = self.readers[shard].snapshot();
            let mut shard_ids = index.range_query(&query);
            ids.append(&mut shard_ids);
        }
        ids.sort_unstable();
        ids.dedup();
        Response::Regions { ids }
    }

    fn stats(&mut self) -> Response {
        let generations = self.router.generations();
        let cache = self.cache.as_ref().map(|layer| {
            let s = layer.store.stats();
            CacheStatsBody {
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                entries: s.len,
                capacity: s.capacity,
            }
        });
        let index = self.readers[0].snapshot();
        Response::Stats {
            stats: Box::new(StatsBody {
                shards: self.router.shards(),
                generations,
                num_leaves: index.num_leaves(),
                heap_bytes: index.heap_bytes(),
                backend: index.backend_name().to_string(),
                cache,
            }),
        }
    }

    fn rebuild(&mut self, spec: &PipelineSpec) -> Response {
        let Some(dataset) = self.rebuild_dataset.clone() else {
            return Response::error(
                ErrorCode::RebuildUnavailable,
                "this service was built without a training dataset; rebuilds are disabled",
            );
        };
        let started = Instant::now();
        let (index, run) = match build_index(&dataset, spec) {
            Ok(built) => built,
            Err(crate::ServeError::Pipeline(fsi_pipeline::PipelineError::InvalidConfig(msg))) => {
                return Response::error(ErrorCode::InvalidSpec, msg)
            }
            Err(e) => return Response::error(ErrorCode::Internal, e.to_string()),
        };
        let num_leaves = index.num_leaves();
        let generation = self.router.publish(index);
        Response::Rebuilt {
            report: Box::new(RebuildReport {
                spec: spec.clone(),
                generation,
                num_leaves,
                ence: run.eval.full.ence,
                build_time: run.build_time,
                total_time: started.elapsed(),
            }),
        }
    }
}

impl Clone for QueryService {
    /// Clones share the router (and thus the live, hot-swappable
    /// indexes) but get fresh readers and empty scratch buffers — one
    /// clone per transport worker thread. A shared cache is shared with
    /// the clone; a per-worker cache is re-created empty from its spec.
    fn clone(&self) -> Self {
        let mut fresh = Self::over(Arc::clone(&self.router), self.rebuild_dataset.clone());
        if let Some(layer) = &self.cache {
            let store = match &layer.store {
                CacheStore::Shared(shared) => CacheStore::Shared(Arc::clone(shared)),
                CacheStore::PerWorker(_) => {
                    CacheStore::from_spec(&layer.spec).expect("spec validated at construction")
                }
            };
            fresh.cache = Some(CacheLayer {
                spec: layer.spec,
                store,
            });
        }
        fresh
    }
}

/// Convenience: a single-shard service over a freshly frozen index.
impl From<FrozenIndex> for QueryService {
    fn from(index: FrozenIndex) -> Self {
        QueryService::new(ShardRouter::single(crate::IndexHandle::new(index)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexHandle;
    use fsi_geo::{Grid, Partition};
    use fsi_pipeline::ModelSnapshot;
    use fsi_proto::WireRect;

    fn index() -> FrozenIndex {
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot =
            ModelSnapshot::new(vec![0.2, 0.4, 0.6, 0.8], vec![0.0; 4], vec![0, 1, 2, 3]).unwrap();
        FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap()
    }

    fn service(shards: (usize, usize)) -> QueryService {
        QueryService::new(ShardRouter::new(index(), shards.0, shards.1).unwrap())
    }

    #[test]
    fn lookup_routes_to_the_right_decision_on_any_shard_count() {
        let reference = index();
        for shape in [(1, 1), (2, 2), (1, 4), (3, 2)] {
            let mut svc = service(shape);
            for p in [(0.1, 0.1), (0.9, 0.1), (0.5, 0.5), (1.0, 1.0), (0.0, 0.9)] {
                let expected: DecisionBody =
                    reference.lookup(&Point::new(p.0, p.1)).unwrap().into();
                match svc.dispatch(&Request::Lookup { x: p.0, y: p.1 }) {
                    Response::Decision { decision } => {
                        assert_eq!(decision, expected, "{shape:?} at {p:?}")
                    }
                    other => panic!("expected decision, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_lookups_answer_structured_errors() {
        let mut svc = service((2, 2));
        match svc.dispatch(&Request::Lookup { x: 5.0, y: 0.5 }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::OutOfBounds),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn batch_matches_singles_and_reports_offending_index() {
        for shape in [(1, 1), (2, 2)] {
            let mut svc = service(shape);
            let points: Vec<WirePoint> = (0..40)
                .map(|i| WirePoint::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.37) % 1.0))
                .collect();
            let Response::Decisions { decisions } = svc.dispatch(&Request::LookupBatch {
                points: points.clone(),
            }) else {
                panic!("expected decisions");
            };
            assert_eq!(decisions.len(), points.len());
            for (p, d) in points.iter().zip(&decisions) {
                match svc.dispatch(&Request::Lookup { x: p.x, y: p.y }) {
                    Response::Decision { decision } => assert_eq!(decision, *d),
                    other => panic!("expected decision, got {other:?}"),
                }
            }
            let mut bad = points.clone();
            bad[17] = WirePoint::new(9.0, 9.0);
            match svc.dispatch(&Request::LookupBatch { points: bad }) {
                Response::Error { error } => {
                    assert_eq!(error.code, ErrorCode::OutOfBounds);
                    assert!(error.message.contains("17"), "{}", error.message);
                }
                other => panic!("expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn range_query_merges_shards_to_the_single_index_answer() {
        let reference = index();
        for shape in [(1, 1), (2, 2), (4, 1)] {
            let mut svc = service(shape);
            for rect in [
                WireRect::new(0.0, 0.0, 1.0, 1.0),
                WireRect::new(0.1, 0.1, 0.2, 0.2),
                WireRect::new(0.1, 0.1, 0.9, 0.2),
                WireRect::new(2.0, 2.0, 3.0, 3.0),
            ] {
                let query = Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y).unwrap();
                let expected = reference.range_query(&query);
                match svc.dispatch(&Request::RangeQuery { rect }) {
                    Response::Regions { ids } => assert_eq!(ids, expected, "{shape:?} {rect:?}"),
                    other => panic!("expected regions, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stats_report_shards_generations_and_footprint() {
        let mut svc = service((2, 2));
        let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.generations, vec![1, 1, 1, 1]);
        assert_eq!(stats.num_leaves, 4);
        assert_eq!(stats.backend, "cells");
        assert!(stats.heap_bytes > 0);
    }

    #[test]
    fn rebuild_without_a_dataset_is_a_structured_error() {
        let mut svc = service((1, 1));
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            2,
        );
        match svc.dispatch(&Request::Rebuild { spec }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::RebuildUnavailable),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn rebuild_with_a_dataset_publishes_to_every_shard() {
        let dataset =
            fsi_data::synth::city::CityGenerator::new(fsi_data::synth::city::CityConfig {
                n_individuals: 200,
                grid_side: 8,
                seed: 5,
                ..Default::default()
            })
            .unwrap()
            .generate()
            .unwrap();
        let mut svc = QueryService::new(ShardRouter::new(index(), 2, 2).unwrap())
            .with_rebuild(Arc::new(dataset));
        let spec = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            3,
        );
        let Response::Rebuilt { report } = svc.dispatch(&Request::Rebuild { spec: spec.clone() })
        else {
            panic!("expected rebuild report");
        };
        assert_eq!(report.generation, 2);
        assert_eq!(report.spec, spec);
        assert_eq!(report.num_leaves, 8);
        assert_eq!(svc.router().generations(), vec![2, 2, 2, 2]);
        // Invalid specs come back as structured spec errors.
        let bad = PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::FairKd,
            0,
        );
        match svc.dispatch(&Request::Rebuild { spec: bad }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::InvalidSpec);
                assert!(error.message.contains("height"), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    /// Every (shape, scope) combination: cached answers must be
    /// bit-identical to the uncached reference, and the counters must
    /// add up.
    #[test]
    fn cached_lookups_match_uncached_and_count_hits() {
        let reference = index();
        let points: Vec<(f64, f64)> = (0..64)
            .map(|i| (((i % 8) as f64 + 0.5) / 8.0, ((i / 8) as f64 + 0.5) / 8.0))
            .collect();
        for shape in [(1, 1), (2, 2)] {
            // The shared placement splits capacity across 8 shards and
            // cells hash unevenly, so give each shard room for all 64
            // distinct cells — this test is about parity and counting,
            // not eviction.
            for spec in [CacheSpec::per_worker(64), CacheSpec::shared(512)] {
                let mut svc = service(shape).with_cache(spec).unwrap();
                assert_eq!(svc.cache_spec(), Some(&spec));
                for pass in 0..2 {
                    for &(x, y) in &points {
                        let expected: DecisionBody =
                            reference.lookup(&Point::new(x, y)).unwrap().into();
                        match svc.dispatch(&Request::Lookup { x, y }) {
                            Response::Decision { decision } => {
                                assert_eq!(decision, expected, "{shape:?} {spec:?} pass {pass}")
                            }
                            other => panic!("expected decision, got {other:?}"),
                        }
                    }
                }
                let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
                    panic!("expected stats");
                };
                let cache = stats.cache.expect("cache stats must be reported");
                // 64 points over a 4-leaf/64-cell grid: the first pass
                // populates each distinct cell once, the second hits.
                assert_eq!(cache.hits + cache.misses, 128);
                assert_eq!(cache.misses, 64, "{shape:?} {spec:?}");
                assert_eq!(cache.capacity, spec.capacity);
                assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cached_batches_match_singles_and_report_out_of_bounds() {
        let mut plain = service((2, 2));
        let mut cached = service((2, 2))
            .with_cache(CacheSpec::per_worker(16))
            .unwrap();
        let points: Vec<WirePoint> = (0..40)
            .map(|i| WirePoint::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.37) % 1.0))
            .collect();
        let expected = plain.dispatch(&Request::LookupBatch {
            points: points.clone(),
        });
        let got = cached.dispatch(&Request::LookupBatch {
            points: points.clone(),
        });
        assert_eq!(format!("{expected:?}"), format!("{got:?}"));
        let mut bad = points;
        bad[11] = WirePoint::new(-3.0, 0.5);
        match cached.dispatch(&Request::LookupBatch { points: bad }) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::OutOfBounds);
                assert!(error.message.contains("11"), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_cache_specs_are_rejected_up_front() {
        let svc = service((1, 1));
        match svc.with_cache(CacheSpec::per_worker(0)) {
            Err(crate::ServeError::Cache(fsi_cache::CacheError::ZeroCapacity)) => {}
            Err(other) => panic!("expected ZeroCapacity, got {other:?}"),
            Ok(_) => panic!("zero-capacity spec must be rejected"),
        }
    }

    #[test]
    fn publish_invalidates_cached_decisions_via_the_generation_key() {
        let handle = IndexHandle::new(index());
        let mut svc = QueryService::new(ShardRouter::single(handle.clone()))
            .with_cache(CacheSpec::per_worker(64))
            .unwrap();
        let (x, y) = (0.1, 0.1);
        let Response::Decision { decision: before } = svc.dispatch(&Request::Lookup { x, y })
        else {
            panic!("expected decision");
        };
        // Same point again: served from cache.
        svc.dispatch(&Request::Lookup { x, y });
        // Publish an index with different scores; the very next lookup
        // must reflect it even though the old entry is still resident.
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot =
            ModelSnapshot::new(vec![0.9, 0.9, 0.9, 0.9], vec![0.0; 4], vec![0, 1, 2, 3]).unwrap();
        handle.publish(FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap());
        let Response::Decision { decision: after } = svc.dispatch(&Request::Lookup { x, y }) else {
            panic!("expected decision");
        };
        assert!((before.raw_score - 0.2).abs() < 1e-12);
        assert!(
            (after.raw_score - 0.9).abs() < 1e-12,
            "stale cache entry served"
        );
    }

    #[test]
    fn shared_caches_are_shared_across_clones_but_per_worker_are_not() {
        let svc = service((1, 1)).with_cache(CacheSpec::shared(64)).unwrap();
        let mut a = svc.clone();
        let mut b = svc.clone();
        a.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }); // miss, fills
        b.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }); // hit via shared store
        let Response::Stats { stats } = b.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        let cache = stats.cache.unwrap();
        assert_eq!((cache.hits, cache.misses), (1, 1));

        let svc = service((1, 1))
            .with_cache(CacheSpec::per_worker(64))
            .unwrap();
        let mut a = svc.clone();
        let mut b = svc.clone();
        a.dispatch(&Request::Lookup { x: 0.1, y: 0.1 });
        b.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }); // its own cold cache: miss
        let Response::Stats { stats } = b.dispatch(&Request::Stats) else {
            panic!("expected stats");
        };
        let cache = stats.cache.unwrap();
        assert_eq!((cache.hits, cache.misses), (0, 1));
    }

    #[test]
    fn clones_share_swaps_but_not_buffers() {
        let handle = IndexHandle::new(index());
        let svc = QueryService::new(ShardRouter::single(handle.clone()));
        let mut a = svc.clone();
        let mut b = svc;
        handle.publish(index());
        for svc in [&mut a, &mut b] {
            let Response::Stats { stats } = svc.dispatch(&Request::Stats) else {
                panic!("expected stats");
            };
            assert_eq!(stats.generations, vec![2]);
        }
    }
}
