//! Service-side telemetry: the per-worker `ServiceMetrics` shard
//! every [`crate::QueryService`] clone records into, the scrape fold
//! that merges worker shards into a wire [`fsi_proto::MetricsBody`],
//! the Prometheus text renderer behind every `/metrics` surface, and
//! the slow-query log vocabulary.
//!
//! Placement mirrors the decision cache (`fsi-cache`): cloning a
//! service registers a fresh metrics shard in the shared
//! [`fsi_obs::Registry`], so the dispatch hot path touches only its own
//! uncontended atomics, and a scrape folds every worker's shard —
//! including retired ones, because counters are cumulative.
//!
//! ## The torn-snapshot contract
//!
//! Writers bump the request **counter before** recording the latency
//! **histogram**; the fold reads each shard's **histograms before its
//! counters**. With `Release` stores and `Acquire` loads throughout
//! (see `fsi-obs`), a scrape that races a dispatch can therefore only
//! observe `latency.count() ≤ requests` — never a latency sample whose
//! request is missing.

use fsi_obs::expo::Exposition;
use fsi_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
use fsi_proto::{ErrorCode, MetricsBody, Request};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Request kinds in dispatch order — the index space of the per-kind
/// counter and histogram arrays.
pub(crate) const KINDS: [&str; 12] = [
    "lookup",
    "lookup_batch",
    "range_query",
    "stats",
    "rebuild",
    "rebuild_prepare",
    "rebuild_commit",
    "rebuild_abort",
    "metrics",
    "ingest",
    "ingest_batch",
    "health",
];

/// Index of `"lookup"` in [`KINDS`] — the sampled hot path.
pub(crate) const K_LOOKUP: usize = 0;

/// Error codes in wire order — the index space of the error tally.
pub(crate) const CODES: [ErrorCode; 7] = [
    ErrorCode::MalformedRequest,
    ErrorCode::UnsupportedVersion,
    ErrorCode::OutOfBounds,
    ErrorCode::InvalidSpec,
    ErrorCode::RebuildUnavailable,
    ErrorCode::NotPrepared,
    ErrorCode::Internal,
];

/// The [`KINDS`] index of a request.
#[inline]
pub(crate) fn kind_index(request: &Request) -> usize {
    match request {
        Request::Lookup { .. } => 0,
        Request::LookupBatch { .. } => 1,
        Request::RangeQuery { .. } => 2,
        Request::Stats => 3,
        Request::Rebuild { .. } => 4,
        Request::RebuildPrepare { .. } => 5,
        Request::RebuildCommit => 6,
        Request::RebuildAbort => 7,
        Request::Metrics => 8,
        Request::Ingest { .. } => 9,
        Request::IngestBatch { .. } => 10,
        Request::Health => 11,
    }
}

/// The [`CODES`] index of an error code.
#[inline]
pub(crate) fn code_index(code: ErrorCode) -> usize {
    match code {
        ErrorCode::MalformedRequest => 0,
        ErrorCode::UnsupportedVersion => 1,
        ErrorCode::OutOfBounds => 2,
        ErrorCode::InvalidSpec => 3,
        ErrorCode::RebuildUnavailable => 4,
        ErrorCode::NotPrepared => 5,
        ErrorCode::Internal => 6,
    }
}

/// A `Duration` as nanoseconds, saturating at `u64::MAX` (585 years).
#[inline]
pub(crate) fn saturating_nanos(elapsed: Duration) -> u64 {
    elapsed.as_nanos().min(u64::MAX as u128) as u64
}

/// Coordinator-side telemetry for one shard slot.
pub(crate) struct ShardMetrics {
    /// Requests forwarded to this shard.
    pub(crate) requests: Counter,
    /// Forwarded requests answered with an `internal` transport error.
    pub(crate) failures: Counter,
    /// Coordinator-observed round-trip latency, nanoseconds.
    pub(crate) round_trip: Histogram,
}

impl ShardMetrics {
    fn new() -> Self {
        Self {
            requests: Counter::new(),
            failures: Counter::new(),
            round_trip: Histogram::new(),
        }
    }
}

/// One worker's metrics shard — everything a `QueryService` clone
/// records, merged across clones by [`MetricsFold::collect`].
pub(crate) struct ServiceMetrics {
    /// Requests dispatched, by [`KINDS`] index.
    pub(crate) requests: [Counter; KINDS.len()],
    /// Dispatch latency in nanoseconds, by [`KINDS`] index. Lookups
    /// may be sampled, so `latency[k].count() ≤ requests[k]`.
    pub(crate) latency: [Histogram; KINDS.len()],
    /// Error responses, by [`CODES`] index.
    pub(crate) errors: [Counter; CODES.len()],
    /// Decision-cache hits observed by this worker.
    pub(crate) cache_hits: Counter,
    /// Decision-cache misses observed by this worker.
    pub(crate) cache_misses: Counter,
    /// Requests over the slow-query threshold.
    pub(crate) slow_queries: Counter,
    /// Highest generation this worker has published (raised on rebuild
    /// commits; the scrape also folds in the live local generations).
    pub(crate) generation: Gauge,
    /// Per-shard forwarding telemetry, in topology order.
    pub(crate) shards: Vec<ShardMetrics>,
    /// Two-phase rebuild prepare/stage durations, per shard-phase.
    pub(crate) rebuild_prepare: Histogram,
    /// Commit/publish durations, per shard-phase.
    pub(crate) rebuild_commit: Histogram,
    /// Abort durations, per shard-phase.
    pub(crate) rebuild_abort: Histogram,
    /// End-to-end maintenance rebuild durations (drain + merge +
    /// retrain + two-phase publish).
    pub(crate) maintenance: Histogram,
}

impl ServiceMetrics {
    /// A zeroed shard for a topology of `n_shards` slots.
    pub(crate) fn new(n_shards: usize) -> Self {
        Self {
            requests: std::array::from_fn(|_| Counter::new()),
            latency: std::array::from_fn(|_| Histogram::new()),
            errors: std::array::from_fn(|_| Counter::new()),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            slow_queries: Counter::new(),
            generation: Gauge::new(),
            shards: (0..n_shards).map(|_| ShardMetrics::new()).collect(),
            rebuild_prepare: Histogram::new(),
            rebuild_commit: Histogram::new(),
            rebuild_abort: Histogram::new(),
            maintenance: Histogram::new(),
        }
    }
}

/// One shard's merged forwarding telemetry out of a fold.
pub(crate) struct ShardFold {
    pub(crate) requests: u64,
    pub(crate) failures: u64,
    pub(crate) round_trip: HistogramSnapshot,
}

/// Every worker shard of a registry merged into plain values — the
/// scrape primitive behind `QueryService::metrics_snapshot`.
pub(crate) struct MetricsFold {
    pub(crate) requests: [u64; KINDS.len()],
    pub(crate) latency: [HistogramSnapshot; KINDS.len()],
    pub(crate) errors: [u64; CODES.len()],
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) slow_queries: u64,
    pub(crate) generation: u64,
    pub(crate) shards: Vec<ShardFold>,
    pub(crate) prepare: HistogramSnapshot,
    pub(crate) commit: HistogramSnapshot,
    pub(crate) abort: HistogramSnapshot,
    pub(crate) maintenance: HistogramSnapshot,
}

impl MetricsFold {
    /// Merges every worker shard. Counters sum, histograms merge, the
    /// generation gauge takes the maximum. Per shard the histograms
    /// are read **before** the counters (the torn-snapshot contract —
    /// see the module docs).
    pub(crate) fn collect(registry: &Registry<ServiceMetrics>, n_shards: usize) -> Self {
        let zero = Self {
            requests: [0; KINDS.len()],
            latency: std::array::from_fn(|_| HistogramSnapshot::empty()),
            errors: [0; CODES.len()],
            cache_hits: 0,
            cache_misses: 0,
            slow_queries: 0,
            generation: 0,
            shards: (0..n_shards)
                .map(|_| ShardFold {
                    requests: 0,
                    failures: 0,
                    round_trip: HistogramSnapshot::empty(),
                })
                .collect(),
            prepare: HistogramSnapshot::empty(),
            commit: HistogramSnapshot::empty(),
            abort: HistogramSnapshot::empty(),
            maintenance: HistogramSnapshot::empty(),
        };
        registry.fold(zero, |mut acc, m| {
            for k in 0..KINDS.len() {
                acc.latency[k].merge(&m.latency[k].snapshot());
                acc.requests[k] += m.requests[k].get();
            }
            for (sf, sm) in acc.shards.iter_mut().zip(&m.shards) {
                sf.round_trip.merge(&sm.round_trip.snapshot());
                sf.requests += sm.requests.get();
                sf.failures += sm.failures.get();
            }
            acc.prepare.merge(&m.rebuild_prepare.snapshot());
            acc.commit.merge(&m.rebuild_commit.snapshot());
            acc.abort.merge(&m.rebuild_abort.snapshot());
            acc.maintenance.merge(&m.maintenance.snapshot());
            for c in 0..CODES.len() {
                acc.errors[c] += m.errors[c].get();
            }
            acc.cache_hits += m.cache_hits.get();
            acc.cache_misses += m.cache_misses.get();
            acc.slow_queries += m.slow_queries.get();
            acc.generation = acc.generation.max(m.generation.get());
            acc
        })
    }
}

/// One slow-query log entry, handed to the configured sink.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowQueryRecord {
    /// Request kind in snake case (`"lookup"`, `"rebuild"`, …).
    pub kind: String,
    /// Dispatch duration, nanoseconds.
    pub nanos: u64,
    /// The threshold that was crossed, nanoseconds.
    pub threshold_nanos: u64,
}

/// Where slow-query records go — a pluggable sink (a logger, a channel,
/// a test vector behind a mutex).
pub type SlowQuerySink = Arc<dyn Fn(&SlowQueryRecord) + Send + Sync>;

/// The installed slow-query log of one service clone.
#[derive(Clone)]
pub(crate) struct SlowQueryLog {
    pub(crate) threshold_nanos: u64,
    sink: SlowQuerySink,
}

impl SlowQueryLog {
    pub(crate) fn new(threshold: Duration, sink: SlowQuerySink) -> Self {
        Self {
            threshold_nanos: saturating_nanos(threshold),
            sink,
        }
    }

    pub(crate) fn emit(&self, kind: &str, nanos: u64) {
        (self.sink)(&SlowQueryRecord {
            kind: kind.to_string(),
            nanos,
            threshold_nanos: self.threshold_nanos,
        });
    }
}

/// Renders a scraped [`MetricsBody`] as Prometheus text exposition
/// (version 0.0.4) — what `GET /metrics`, the REPL `metrics` command
/// and `redistricting_cli serve --metrics` print.
///
/// Latency histograms are recorded in nanoseconds and exposed as
/// summary families in **seconds**. Per-shard families carry `shard`
/// and `backend` labels; nested remote snapshots
/// ([`fsi_proto::ShardObsBody::remote`]) are not flattened into the
/// text — scrape each shard server's own `/metrics` for its interior.
pub fn prometheus_text(body: &MetricsBody) -> String {
    let mut e = Exposition::new();
    e.family(
        "fsi_requests_total",
        "counter",
        "Requests dispatched, by request kind.",
    );
    for r in &body.requests {
        e.sample_u64("fsi_requests_total", &[("kind", &r.kind)], r.count);
    }
    e.family(
        "fsi_request_latency_seconds",
        "summary",
        "Dispatch latency by request kind (point lookups may be sampled).",
    );
    for r in &body.requests {
        e.summary(
            "fsi_request_latency_seconds",
            &[("kind", &r.kind)],
            &r.latency,
            1e9,
        );
    }
    if !body.errors.is_empty() {
        e.family(
            "fsi_errors_total",
            "counter",
            "Error responses, by error code.",
        );
        for err in &body.errors {
            let code = err.code.to_string();
            e.sample_u64("fsi_errors_total", &[("code", &code)], err.count);
        }
    }
    e.family(
        "fsi_slow_queries_total",
        "counter",
        "Requests over the slow-query log threshold.",
    );
    e.sample_u64("fsi_slow_queries_total", &[], body.slow_queries);
    e.family(
        "fsi_generation",
        "gauge",
        "Highest observed index snapshot generation.",
    );
    e.sample_u64("fsi_generation", &[], body.generation);
    if let Some(cache) = &body.cache {
        e.family("fsi_cache_hits_total", "counter", "Decision-cache hits.");
        e.sample_u64("fsi_cache_hits_total", &[], cache.hits);
        e.family(
            "fsi_cache_misses_total",
            "counter",
            "Decision-cache misses.",
        );
        e.sample_u64("fsi_cache_misses_total", &[], cache.misses);
        e.family(
            "fsi_cache_evictions_total",
            "counter",
            "Decision-cache evictions.",
        );
        e.sample_u64("fsi_cache_evictions_total", &[], cache.evictions);
        e.family("fsi_cache_entries", "gauge", "Decision-cache live entries.");
        e.sample_u64("fsi_cache_entries", &[], cache.entries as u64);
        e.family("fsi_cache_capacity", "gauge", "Decision-cache capacity.");
        e.sample_u64("fsi_cache_capacity", &[], cache.capacity as u64);
    }
    if !body.shards.is_empty() {
        e.family(
            "fsi_shard_requests_total",
            "counter",
            "Requests the coordinator forwarded, by shard.",
        );
        for s in &body.shards {
            let shard = s.shard.to_string();
            e.sample_u64(
                "fsi_shard_requests_total",
                &[("shard", &shard), ("backend", &s.kind)],
                s.requests,
            );
        }
        e.family(
            "fsi_shard_failures_total",
            "counter",
            "Forwarded requests that failed with an internal transport error.",
        );
        for s in &body.shards {
            let shard = s.shard.to_string();
            e.sample_u64(
                "fsi_shard_failures_total",
                &[("shard", &shard), ("backend", &s.kind)],
                s.failures,
            );
        }
        e.family(
            "fsi_shard_reconnects_total",
            "counter",
            "Transport reconnect attempts, by shard.",
        );
        for s in &body.shards {
            let shard = s.shard.to_string();
            e.sample_u64(
                "fsi_shard_reconnects_total",
                &[("shard", &shard), ("backend", &s.kind)],
                s.reconnects,
            );
        }
        e.family(
            "fsi_shard_round_trip_seconds",
            "summary",
            "Coordinator-observed shard round-trip latency.",
        );
        for s in &body.shards {
            let shard = s.shard.to_string();
            e.summary(
                "fsi_shard_round_trip_seconds",
                &[("shard", &shard), ("backend", &s.kind)],
                &s.round_trip,
                1e9,
            );
        }
    }
    // Resilience telemetry: one row per replica of every replicated
    // shard slot, flattened out of the coordinator's health snapshot.
    let replicas: Vec<(usize, &fsi_proto::ReplicaHealthBody)> = body
        .shards
        .iter()
        .filter_map(|s| s.replicas.as_deref().map(|r| (s.shard, r)))
        .flat_map(|(shard, r)| r.iter().map(move |rep| (shard, rep)))
        .collect();
    if !replicas.is_empty() {
        {
            let mut counter =
                |name: &str, help: &str, get: &dyn Fn(&fsi_proto::ReplicaHealthBody) -> u64| {
                    e.family(name, "counter", help);
                    for (shard, r) in &replicas {
                        let shard = shard.to_string();
                        let replica = r.replica.to_string();
                        e.sample_u64(name, &[("shard", &shard), ("replica", &replica)], get(r));
                    }
                };
            counter(
                "fsi_resil_attempts_total",
                "Dispatch attempts, per replica.",
                &|r| r.attempts,
            );
            counter(
                "fsi_resil_failures_total",
                "Transport-failed attempts, per replica.",
                &|r| r.failures,
            );
            counter(
                "fsi_resil_retries_total",
                "Retries steered to this replica after a sibling failed.",
                &|r| r.retries,
            );
            counter(
                "fsi_resil_hedges_total",
                "Hedged duplicate attempts sent to this replica.",
                &|r| r.hedges,
            );
            counter(
                "fsi_resil_hedge_wins_total",
                "Hedged attempts that answered before the primary.",
                &|r| r.hedge_wins,
            );
        }
        e.family(
            "fsi_resil_breaker_transitions_total",
            "counter",
            "Circuit-breaker transitions, per replica and target state.",
        );
        for (shard, r) in &replicas {
            let shard = shard.to_string();
            let replica = r.replica.to_string();
            for (into, count) in [
                ("open", r.opens),
                ("half_open", r.half_opens),
                ("closed", r.closes),
            ] {
                e.sample_u64(
                    "fsi_resil_breaker_transitions_total",
                    &[("shard", &shard), ("replica", &replica), ("into", into)],
                    count,
                );
            }
        }
        e.family(
            "fsi_resil_breaker_state",
            "gauge",
            "Current circuit-breaker state, per replica (state as a label).",
        );
        for (shard, r) in &replicas {
            let shard = shard.to_string();
            let replica = r.replica.to_string();
            e.sample_u64(
                "fsi_resil_breaker_state",
                &[
                    ("shard", &shard),
                    ("replica", &replica),
                    ("state", &r.state),
                ],
                1,
            );
        }
        e.family(
            "fsi_resil_attempt_latency_seconds",
            "summary",
            "Sampled per-attempt latency, per replica.",
        );
        for (shard, r) in &replicas {
            let shard = shard.to_string();
            let replica = r.replica.to_string();
            e.summary(
                "fsi_resil_attempt_latency_seconds",
                &[("shard", &shard), ("replica", &replica)],
                &r.latency,
                1e9,
            );
        }
    }
    e.family(
        "fsi_rebuild_phase_seconds",
        "summary",
        "Two-phase rebuild durations, per shard-phase.",
    );
    e.summary(
        "fsi_rebuild_phase_seconds",
        &[("phase", "prepare")],
        &body.rebuild.prepare,
        1e9,
    );
    e.summary(
        "fsi_rebuild_phase_seconds",
        &[("phase", "commit")],
        &body.rebuild.commit,
        1e9,
    );
    e.summary(
        "fsi_rebuild_phase_seconds",
        &[("phase", "abort")],
        &body.rebuild.abort,
        1e9,
    );
    if let Some(ingest) = &body.ingest {
        e.family(
            "fsi_ingest_accepted_total",
            "counter",
            "Points accepted into the delta buffer.",
        );
        e.sample_u64("fsi_ingest_accepted_total", &[], ingest.accepted);
        e.family(
            "fsi_ingest_rejected_total",
            "counter",
            "Ingested points rejected for falling outside the grid.",
        );
        e.sample_u64("fsi_ingest_rejected_total", &[], ingest.rejected);
        e.family(
            "fsi_ingest_buffered",
            "gauge",
            "Points currently in the delta buffer.",
        );
        e.sample_u64("fsi_ingest_buffered", &[], ingest.buffered);
        e.family(
            "fsi_ingest_drift_score",
            "gauge",
            "Last measured maximum subtree drift score.",
        );
        e.sample("fsi_ingest_drift_score", &[], ingest.drift_score);
        e.family(
            "fsi_maintenance_rebuild_seconds",
            "summary",
            "End-to-end drift-triggered maintenance rebuild durations.",
        );
        e.summary(
            "fsi_maintenance_rebuild_seconds",
            &[],
            &ingest.maintenance,
            1e9,
        );
    }
    if let Some(http) = &body.http {
        e.family(
            "fsi_http_connections_total",
            "counter",
            "HTTP connections accepted.",
        );
        e.sample_u64("fsi_http_connections_total", &[], http.connections);
        e.family(
            "fsi_http_active_connections",
            "gauge",
            "HTTP connections currently open.",
        );
        e.sample_u64("fsi_http_active_connections", &[], http.active);
        e.family(
            "fsi_http_requests_total",
            "counter",
            "HTTP requests handled.",
        );
        e.sample_u64("fsi_http_requests_total", &[], http.requests);
        e.family(
            "fsi_http_phase_seconds",
            "summary",
            "HTTP request phase timings (read, handle, write).",
        );
        e.summary(
            "fsi_http_phase_seconds",
            &[("phase", "read")],
            &http.read,
            1e9,
        );
        e.summary(
            "fsi_http_phase_seconds",
            &[("phase", "handle")],
            &http.handle,
            1e9,
        );
        e.summary(
            "fsi_http_phase_seconds",
            &[("phase", "write")],
            &http.write,
            1e9,
        );
    }
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_proto::{
        CacheStatsBody, ErrorCountBody, HttpObsBody, RebuildObsBody, RequestKindMetrics,
        ShardObsBody,
    };

    #[test]
    fn kind_and_code_indexes_agree_with_their_tables() {
        assert_eq!(kind_index(&Request::Lookup { x: 0.0, y: 0.0 }), K_LOOKUP);
        assert_eq!(KINDS[kind_index(&Request::Metrics)], "metrics");
        assert_eq!(KINDS[kind_index(&Request::Stats)], "stats");
        assert_eq!(
            KINDS[kind_index(&Request::Ingest {
                x: 0.0,
                y: 0.0,
                group: 0,
                label: false,
            })],
            "ingest"
        );
        assert_eq!(
            KINDS[kind_index(&Request::IngestBatch { points: vec![] })],
            "ingest_batch"
        );
        assert_eq!(KINDS[kind_index(&Request::Health)], "health");
        for (i, code) in CODES.iter().enumerate() {
            assert_eq!(code_index(*code), i);
        }
    }

    #[test]
    fn fold_merges_worker_shards_and_maxes_the_generation() {
        let registry = Registry::new(|| ServiceMetrics::new(2));
        let a = registry.recorder();
        let b = a.clone();
        a.requests[K_LOOKUP].add(3);
        a.latency[K_LOOKUP].record(500);
        b.requests[K_LOOKUP].add(2);
        b.latency[K_LOOKUP].record(700);
        a.errors[code_index(ErrorCode::OutOfBounds)].inc();
        a.generation.raise(4);
        b.generation.raise(2);
        a.shards[1].requests.inc();
        b.shards[1].requests.add(4);
        b.shards[1].round_trip.record(1_000);
        let fold = MetricsFold::collect(a.registry(), 2);
        assert_eq!(fold.requests[K_LOOKUP], 5);
        assert_eq!(fold.latency[K_LOOKUP].count(), 2);
        assert_eq!(fold.errors[code_index(ErrorCode::OutOfBounds)], 1);
        assert_eq!(fold.generation, 4);
        assert_eq!(fold.shards[1].requests, 5);
        assert_eq!(fold.shards[1].round_trip.count(), 1);
        assert_eq!(fold.shards[0].requests, 0);
    }

    #[test]
    fn prometheus_text_covers_every_family() {
        let h = Histogram::new();
        h.record(1_000);
        let snap = h.snapshot();
        let body = MetricsBody {
            requests: vec![RequestKindMetrics {
                kind: "lookup".into(),
                count: 7,
                latency: snap.clone(),
            }],
            errors: vec![ErrorCountBody {
                code: ErrorCode::OutOfBounds,
                count: 2,
            }],
            slow_queries: 1,
            generation: 3,
            cache: Some(CacheStatsBody {
                hits: 5,
                misses: 4,
                evictions: 1,
                entries: 3,
                capacity: 64,
            }),
            shards: vec![ShardObsBody {
                shard: 0,
                kind: "replicas".into(),
                addr: Some("127.0.0.1:7878".into()),
                requests: 6,
                failures: 1,
                reconnects: 2,
                round_trip: snap.clone(),
                remote: None,
                replicas: Some(vec![fsi_proto::ReplicaHealthBody {
                    replica: 1,
                    kind: "http".into(),
                    addr: Some("127.0.0.1:7879".into()),
                    state: "open".into(),
                    consecutive_failures: 3,
                    attempts: 10,
                    failures: 4,
                    retries: 3,
                    hedges: 2,
                    hedge_wins: 1,
                    opens: 1,
                    half_opens: 0,
                    closes: 0,
                    latency: snap.clone(),
                }]),
            }],
            rebuild: RebuildObsBody {
                prepare: snap.clone(),
                commit: snap.clone(),
                abort: HistogramSnapshot::empty(),
            },
            http: Some(HttpObsBody {
                connections: 2,
                active: 1,
                requests: 9,
                read: snap.clone(),
                handle: snap.clone(),
                write: snap.clone(),
            }),
            ingest: Some(fsi_proto::IngestObsBody {
                accepted: 11,
                rejected: 2,
                buffered: 6,
                drift_score: 0.375,
                maintenance: snap,
            }),
        };
        let text = prometheus_text(&body);
        for needle in [
            "# TYPE fsi_requests_total counter\n",
            "fsi_requests_total{kind=\"lookup\"} 7\n",
            "fsi_request_latency_seconds{kind=\"lookup\",quantile=\"0.5\"} ",
            "fsi_request_latency_seconds_count{kind=\"lookup\"} 1\n",
            "fsi_errors_total{code=\"out_of_bounds\"} 2\n",
            "fsi_slow_queries_total 1\n",
            "fsi_generation 3\n",
            "fsi_cache_hits_total 5\n",
            "fsi_cache_misses_total 4\n",
            "fsi_cache_evictions_total 1\n",
            "fsi_cache_entries 3\n",
            "fsi_cache_capacity 64\n",
            "fsi_shard_requests_total{shard=\"0\",backend=\"replicas\"} 6\n",
            "fsi_shard_failures_total{shard=\"0\",backend=\"replicas\"} 1\n",
            "fsi_shard_reconnects_total{shard=\"0\",backend=\"replicas\"} 2\n",
            "fsi_shard_round_trip_seconds_count{shard=\"0\",backend=\"replicas\"} 1\n",
            "fsi_resil_attempts_total{shard=\"0\",replica=\"1\"} 10\n",
            "fsi_resil_failures_total{shard=\"0\",replica=\"1\"} 4\n",
            "fsi_resil_retries_total{shard=\"0\",replica=\"1\"} 3\n",
            "fsi_resil_hedges_total{shard=\"0\",replica=\"1\"} 2\n",
            "fsi_resil_hedge_wins_total{shard=\"0\",replica=\"1\"} 1\n",
            "fsi_resil_breaker_transitions_total{shard=\"0\",replica=\"1\",into=\"open\"} 1\n",
            "fsi_resil_breaker_transitions_total{shard=\"0\",replica=\"1\",into=\"closed\"} 0\n",
            "fsi_resil_breaker_state{shard=\"0\",replica=\"1\",state=\"open\"} 1\n",
            "fsi_resil_attempt_latency_seconds_count{shard=\"0\",replica=\"1\"} 1\n",
            "fsi_rebuild_phase_seconds_count{phase=\"prepare\"} 1\n",
            "fsi_rebuild_phase_seconds_count{phase=\"abort\"} 0\n",
            "fsi_http_connections_total 2\n",
            "fsi_http_active_connections 1\n",
            "fsi_http_requests_total 9\n",
            "fsi_http_phase_seconds_count{phase=\"write\"} 1\n",
            "fsi_ingest_accepted_total 11\n",
            "fsi_ingest_rejected_total 2\n",
            "fsi_ingest_buffered 6\n",
            "fsi_ingest_drift_score 0.375\n",
            "fsi_maintenance_rebuild_seconds_count 1\n",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_bodies_render_without_optional_families() {
        let text = prometheus_text(&MetricsBody::empty());
        assert!(text.contains("fsi_slow_queries_total 0\n"));
        assert!(!text.contains("fsi_cache_hits_total"));
        assert!(!text.contains("fsi_shard_requests_total"));
        assert!(!text.contains("fsi_http_requests_total"));
        assert!(!text.contains("fsi_ingest_accepted_total"));
        assert!(!text.contains("fsi_resil_attempts_total"));
    }

    #[test]
    fn slow_query_log_emits_structured_records() {
        let seen: Arc<std::sync::Mutex<Vec<SlowQueryRecord>>> = Arc::default();
        let sink_seen = Arc::clone(&seen);
        let log = SlowQueryLog::new(
            Duration::from_micros(1),
            Arc::new(move |r| sink_seen.lock().unwrap().push(r.clone())),
        );
        log.emit("lookup", 5_000);
        let records = seen.lock().unwrap();
        assert_eq!(
            *records,
            vec![SlowQueryRecord {
                kind: "lookup".into(),
                nanos: 5_000,
                threshold_nanos: 1_000,
            }]
        );
    }
}
