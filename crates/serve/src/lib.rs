//! # fsi-serve — online query serving for fair spatial indexes
//!
//! The rest of the workspace *builds* fair KD-trees; this crate *serves*
//! them. A trained `(KdTree, model, grid)` triple is compiled into a
//! [`FrozenIndex`] — a flat, arena-ordered, immutable structure with
//! branchless continuous-point → leaf traversal — and queried online:
//!
//! * [`FrozenIndex::lookup`] maps one [`fsi_geo::Point`] to a
//!   [`Decision`]: leaf id, raw model score, locally calibrated score and
//!   fairness group.
//! * [`FrozenIndex::lookup_batch`] is the slice-in/slice-out path for
//!   request batches.
//! * [`FrozenIndex::range_query`] returns every neighborhood a map-space
//!   rectangle touches.
//!
//! Deployment pieces:
//!
//! * [`QueryService`] — dispatches every typed [`fsi_proto::Request`] to
//!   an [`fsi_proto::Response`]; the one query surface every transport
//!   (REPL, HTTP, future RPC) sits on.
//! * [`Topology`] / [`ShardBackend`] — spatially partitions the served
//!   bounds over a set of shard backends (in-process [`LocalShard`]s
//!   over partial indexes, or remote processes speaking the protocol):
//!   lookups route to one shard, range queries scatter-gather, rebuilds
//!   run a two-phase generation barrier. Built from a validated
//!   [`TopologySpec`] (`rows × cols`, per-shard `local` or
//!   `http://host:port`). The replica-only [`ShardRouter`] is its
//!   deprecated predecessor.
//! * [`IndexHandle`] / [`IndexReader`] — lock-free reads with atomic
//!   snapshot hot-swap (std-only `Arc` + atomics), so a rebuild never
//!   blocks a query.
//! * [`Rebuilder`] — re-runs the `fsi-pipeline` trainer (optionally on a
//!   background thread) and publishes the freshly compiled index.
//! * [`MaintenanceHandle`] — background drift-triggered maintenance for
//!   services built `with_ingest`: polls the delta buffer against a
//!   [`MaintenanceSpec`], and when drift, occupancy or staleness trips,
//!   merges the buffered points into the training set and republishes
//!   through the same two-phase rebuild barrier.
//! * [`driver`] — a multi-threaded throughput harness, also used by the
//!   `serving` benchmark suite in `fsi-bench`.
//!
//! ```
//! use fsi_pipeline::{Method, PipelineSpec, TaskSpec};
//! use fsi_serve::{build_index, IndexHandle};
//!
//! let dataset = fsi_data::synth::city::CityGenerator::new(
//!     fsi_data::synth::city::CityConfig {
//!         n_individuals: 200,
//!         grid_side: 16,
//!         seed: 1,
//!         ..Default::default()
//!     },
//! )
//! .unwrap()
//! .generate()
//! .unwrap();
//! let spec = PipelineSpec::new(TaskSpec::act(), Method::FairKd, 3);
//! let (index, _run) = build_index(&dataset, &spec).unwrap();
//! let handle = IndexHandle::new(index);
//! let decision = handle.load().lookup(&fsi_geo::Point::new(0.5, 0.5)).unwrap();
//! assert!((0.0..=1.0).contains(&decision.calibrated_score));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod error;
pub mod frozen;
pub mod handle;
pub mod maintain;
pub mod obs;
pub mod rebuild;
pub mod service;
pub mod shard;
pub mod topology;

pub use driver::{sweep, ThroughputReport};
pub use error::ServeError;
pub use frozen::{Decision, FrozenIndex};
pub use handle::{IndexHandle, IndexReader};
pub use maintain::MaintenanceHandle;
pub use obs::{prometheus_text, SlowQueryRecord, SlowQuerySink};
pub use rebuild::{build_index, compile_run, RebuildReport, Rebuilder};
pub use service::QueryService;
pub use shard::ShardRouter;
pub use topology::{
    BackendSpec, LocalShard, ShardBackend, ShardDescriptor, SlotConnector, Topology, TopologySpec,
    TransportStats,
};

// The decision-cache vocabulary callers configure services with.
pub use fsi_cache::{CacheError, CacheScope, CacheSpec, CacheStats};

// The streaming-ingestion vocabulary callers configure maintenance with.
pub use fsi_ingest::{IngestError, MaintenanceSpec, MaintenanceTrigger};
