//! Error type for the serving subsystem.
//!
//! [`ServeError`] wraps [`fsi_pipeline::PipelineError`] with
//! source-chaining and is itself wrapped by the workspace-wide
//! `fsi::FsiError` — the one error type the `fsi` facade returns. Match
//! on `FsiError` in application code; match here only when working
//! against this crate directly.

use fsi_pipeline::PipelineError;
use std::fmt;

/// Errors produced while compiling, querying or rebuilding a served index.
#[derive(Debug)]
pub enum ServeError {
    /// The index, snapshot or partition was built over a different grid.
    GridMismatch {
        /// Grid shape `(rows, cols)` the index expects.
        expected: (usize, usize),
        /// Grid shape that was supplied.
        got: (usize, usize),
    },
    /// The model snapshot does not cover the index's leaves.
    SnapshotMismatch {
        /// Number of leaves in the spatial structure.
        leaves: usize,
        /// Number of leaves in the snapshot.
        snapshot: usize,
    },
    /// An index would exceed the compiled leaf-id capacity.
    TooManyLeaves {
        /// Requested number of leaves.
        leaves: usize,
        /// Maximum representable number of leaves.
        max: usize,
    },
    /// A batch lookup hit a point outside the index bounds.
    PointOutOfBounds {
        /// Index of the offending point within the batch.
        index: usize,
        /// The offending coordinates.
        point: (f64, f64),
    },
    /// A shard router was asked for a degenerate shard grid.
    InvalidShards {
        /// Requested shard rows.
        rows: usize,
        /// Requested shard columns.
        cols: usize,
    },
    /// A topology spec (or a clip rectangle derived from one) failed
    /// validation.
    InvalidTopology(String),
    /// A remote shard backend failed to answer.
    Remote {
        /// The remote shard's address.
        addr: String,
        /// What went wrong.
        detail: String,
    },
    /// A rebuild commit arrived with no staged index to publish.
    NotStaged,
    /// A decision-cache spec failed validation.
    Cache(fsi_cache::CacheError),
    /// A streaming-ingestion component (delta buffer, drift detector,
    /// merge, maintenance policy) failed.
    Ingest(fsi_ingest::IngestError),
    /// A maintenance pass was requested on a service built without
    /// streaming ingestion.
    IngestUnavailable,
    /// A drift-triggered maintenance pass failed to publish.
    Maintenance(String),
    /// The underlying pipeline run failed.
    Pipeline(PipelineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::GridMismatch { expected, got } => write!(
                f,
                "grid shape mismatch: index expects {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            ServeError::SnapshotMismatch { leaves, snapshot } => write!(
                f,
                "model snapshot covers {snapshot} leaves but the index has {leaves}"
            ),
            ServeError::TooManyLeaves { leaves, max } => {
                write!(f, "index has {leaves} leaves; at most {max} are supported")
            }
            ServeError::PointOutOfBounds { index, point } => write!(
                f,
                "point #{index} at ({}, {}) is outside the index bounds",
                point.0, point.1
            ),
            ServeError::InvalidShards { rows, cols } => write!(
                f,
                "shard grid must have at least one row and one column, got {rows}x{cols}"
            ),
            ServeError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            ServeError::Remote { addr, detail } => {
                write!(f, "remote shard {addr}: {detail}")
            }
            ServeError::NotStaged => {
                write!(f, "rebuild commit received with no staged index")
            }
            ServeError::Cache(e) => write!(f, "cache error: {e}"),
            ServeError::Ingest(e) => write!(f, "ingest error: {e}"),
            ServeError::IngestUnavailable => write!(
                f,
                "streaming ingestion is not configured on this service; \
                 construct it with a training dataset and `with_ingest`"
            ),
            ServeError::Maintenance(msg) => {
                write!(f, "maintenance rebuild failed: {msg}")
            }
            ServeError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Cache(e) => Some(e),
            ServeError::Ingest(e) => Some(e),
            ServeError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<fsi_cache::CacheError> for ServeError {
    fn from(e: fsi_cache::CacheError) -> Self {
        ServeError::Cache(e)
    }
}

impl From<fsi_ingest::IngestError> for ServeError {
    fn from(e: fsi_ingest::IngestError) -> Self {
        ServeError::Ingest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ServeError::GridMismatch {
            expected: (64, 64),
            got: (16, 16),
        };
        assert!(e.to_string().contains("64x64"));
        let e = ServeError::PointOutOfBounds {
            index: 7,
            point: (2.0, -1.0),
        };
        assert!(e.to_string().contains("#7"));
        let e = ServeError::TooManyLeaves {
            leaves: 70000,
            max: 65535,
        };
        assert!(e.to_string().contains("70000"));
        let e = ServeError::InvalidTopology("shard 3: bad address".into());
        assert!(e.to_string().contains("shard 3"));
        let e = ServeError::Remote {
            addr: "10.0.0.7:7878".into(),
            detail: "connection refused".into(),
        };
        assert!(e.to_string().contains("10.0.0.7:7878"));
        assert!(ServeError::NotStaged.to_string().contains("staged"));
        let e = ServeError::Ingest(fsi_ingest::IngestError::MissingDataset);
        assert!(e.to_string().contains("dataset"));
        assert!(ServeError::IngestUnavailable
            .to_string()
            .contains("with_ingest"));
        let e = ServeError::Maintenance("shard 2 failed to prepare".into());
        assert!(e.to_string().contains("shard 2"));
    }
}
